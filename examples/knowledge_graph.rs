//! Knowledge-graph pattern matching — the paper's motivating application
//! (knowledge bases such as Probase/NAGA): a typed entity graph with
//! person / company / city / product entities, queried for multi-entity
//! patterns.
//!
//! ```text
//! cargo run --release --example knowledge_graph
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stwig_match::prelude::*;

/// Entity-id layout: persons 0.., companies 100_000.., cities 200_000..,
/// products 300_000..
const COMPANY_BASE: u64 = 100_000;
const CITY_BASE: u64 = 200_000;
const PRODUCT_BASE: u64 = 300_000;

fn build_knowledge_graph(persons: u64, companies: u64, cities: u64, products: u64) -> MemoryCloud {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut gb = GraphBuilder::new_undirected();
    for p in 0..persons {
        gb.add_vertex(VertexId(p), "person");
    }
    for c in 0..companies {
        gb.add_vertex(VertexId(COMPANY_BASE + c), "company");
    }
    for c in 0..cities {
        gb.add_vertex(VertexId(CITY_BASE + c), "city");
    }
    for p in 0..products {
        gb.add_vertex(VertexId(PRODUCT_BASE + p), "product");
    }
    // works_at: each person works at one company
    for p in 0..persons {
        gb.add_edge(
            VertexId(p),
            VertexId(COMPANY_BASE + rng.gen_range(0..companies)),
        );
    }
    // lives_in: each person lives in one city
    for p in 0..persons {
        gb.add_edge(VertexId(p), VertexId(CITY_BASE + rng.gen_range(0..cities)));
    }
    // headquartered_in: each company sits in a city
    for c in 0..companies {
        gb.add_edge(
            VertexId(COMPANY_BASE + c),
            VertexId(CITY_BASE + rng.gen_range(0..cities)),
        );
    }
    // makes: each product is made by a company
    for p in 0..products {
        gb.add_edge(
            VertexId(PRODUCT_BASE + p),
            VertexId(COMPANY_BASE + rng.gen_range(0..companies)),
        );
    }
    // knows: a sprinkling of person-person edges
    for _ in 0..persons * 2 {
        let a = rng.gen_range(0..persons);
        let b = rng.gen_range(0..persons);
        gb.add_edge(VertexId(a), VertexId(b));
    }
    gb.build(8, CostModel::default())
}

fn main() {
    let cloud = build_knowledge_graph(20_000, 500, 50, 2_000);
    println!(
        "knowledge graph: {} entities, {} facts, {} entity types over {} machines",
        cloud.num_vertices(),
        cloud.num_edges(),
        cloud.labels().len(),
        cloud.num_machines()
    );

    // Pattern 1: "colleagues in the same city" — two persons who work at the
    // same company and live in the same city.
    let mut qb = QueryGraph::builder();
    let p1 = qb.vertex_by_name(&cloud, "person").unwrap();
    let p2 = qb.vertex_by_name(&cloud, "person").unwrap();
    let company = qb.vertex_by_name(&cloud, "company").unwrap();
    let city = qb.vertex_by_name(&cloud, "city").unwrap();
    qb.edge(p1, company)
        .edge(p2, company)
        .edge(p1, city)
        .edge(p2, city);
    let colleagues = qb.build().unwrap();

    // Pattern 2: "local product" — a product made by a company headquartered
    // in the city where some employee lives.
    let mut qb = QueryGraph::builder();
    let person = qb.vertex_by_name(&cloud, "person").unwrap();
    let company = qb.vertex_by_name(&cloud, "company").unwrap();
    let city = qb.vertex_by_name(&cloud, "city").unwrap();
    let product = qb.vertex_by_name(&cloud, "product").unwrap();
    qb.edge(person, company)
        .edge(company, city)
        .edge(person, city)
        .edge(product, company);
    let local_product = qb.build().unwrap();

    let config = MatchConfig::paper_default();
    for (name, query) in [
        ("colleagues-in-city", colleagues),
        ("local-product", local_product),
    ] {
        // Show the query plan the proxy would broadcast.
        let plan = stwig::plan_query(&cloud, &query).unwrap();
        println!(
            "\npattern `{name}`: {} vertices / {} edges",
            query.num_vertices(),
            query.num_edges()
        );
        println!("  decomposition ({} STwigs):", plan.stwigs.len());
        for (i, t) in plan.stwigs.iter().enumerate() {
            let head = if i == plan.head.head_index {
                "  [head]"
            } else {
                ""
            };
            println!(
                "    {i}: root {} children {:?}{head}",
                query.name(t.root),
                t.children.len()
            );
        }

        let out = stwig::match_query_distributed(&cloud, &query, &config).unwrap();
        println!(
            "  {} matches (capped at 1024), simulated time {:.2} ms, {} messages, {} KiB shipped",
            out.num_matches(),
            out.metrics.simulated_ms(),
            out.metrics.network_messages,
            out.metrics.network_bytes / 1024
        );
    }
}
