//! Protein-interaction motif search — the paper's bioinformatics motivation:
//! find small interaction motifs (triangles, forks, bi-fans) in a power-law
//! protein-protein interaction network whose vertices are annotated with
//! functional categories (GO-term-like labels).
//!
//! ```text
//! cargo run --release --example protein_network
//! ```

use stwig_match::prelude::*;

fn main() {
    // A power-law PPI-like network: 30k proteins, preferential attachment,
    // 12 functional categories with skewed sizes.
    let proteins = 30_000u64;
    let graph = preferential_attachment(proteins, 3, 0xB10);
    let labels = LabelModel::Zipf {
        num_labels: 12,
        exponent: 0.9,
    }
    .assign(proteins, 0x60);
    let cloud = graph
        .with_labels(labels, 12)
        .build_cloud(4, CostModel::default());

    let stats = graph_stats(&cloud);
    println!(
        "PPI network: {} proteins, {} interactions, avg degree {:.1}, max degree {}",
        stats.num_vertices, stats.num_edges, stats.avg_degree, stats.max_degree
    );

    let kinase = "L0"; // the most common category
    let ligase = "L1";
    let receptor = "L2";

    let config = MatchConfig::paper_default();

    // Motif 1: regulatory triangle kinase - ligase - receptor.
    let mut qb = QueryGraph::builder();
    let k = qb.vertex_by_name(&cloud, kinase).unwrap();
    let l = qb.vertex_by_name(&cloud, ligase).unwrap();
    let r = qb.vertex_by_name(&cloud, receptor).unwrap();
    qb.edge(k, l).edge(l, r).edge(r, k);
    let triangle = qb.build().unwrap();

    // Motif 2: bi-fan — two kinases each interacting with the same two receptors.
    let mut qb = QueryGraph::builder();
    let k1 = qb.vertex_by_name(&cloud, kinase).unwrap();
    let k2 = qb.vertex_by_name(&cloud, kinase).unwrap();
    let r1 = qb.vertex_by_name(&cloud, receptor).unwrap();
    let r2 = qb.vertex_by_name(&cloud, receptor).unwrap();
    qb.edge(k1, r1).edge(k1, r2).edge(k2, r1).edge(k2, r2);
    let bifan = qb.build().unwrap();

    // Motif 3: hub fork — a kinase interacting with a ligase, a receptor and
    // another kinase simultaneously.
    let mut qb = QueryGraph::builder();
    let hub = qb.vertex_by_name(&cloud, kinase).unwrap();
    let a = qb.vertex_by_name(&cloud, ligase).unwrap();
    let b = qb.vertex_by_name(&cloud, receptor).unwrap();
    let c = qb.vertex_by_name(&cloud, kinase).unwrap();
    qb.edge(hub, a).edge(hub, b).edge(hub, c);
    let fork = qb.build().unwrap();

    for (name, query) in [
        ("triangle", triangle),
        ("bi-fan", bifan),
        ("hub-fork", fork),
    ] {
        let out = stwig::match_query_distributed(&cloud, &query, &config).unwrap();
        // Cross-check a small sample against the VF2 baseline for confidence.
        let sample_ok = verify_all(&cloud, &query, &out.table).is_ok();
        println!(
            "motif {name:>9}: {:>5} occurrences (capped at 1024), {:>7.2} ms simulated, embeddings valid: {}",
            out.num_matches(),
            out.metrics.simulated_ms(),
            sample_ok
        );
    }
}
