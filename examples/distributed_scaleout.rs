//! Distributed scale-out: the same query executed over 1..8 simulated
//! machines, showing how the head-STwig / load-set optimizer bounds
//! communication and how the simulated makespan falls as machines are added
//! (the paper's Figure 9 experiment in miniature).
//!
//! ```text
//! cargo run --release --example distributed_scaleout
//! ```

use stwig_match::prelude::*;
use trinity_sim::ids::MachineId;

fn main() {
    // A Patents-like citation graph (power-law, 418 labels).
    let graph = patents_like(50_000, 0xA11CE);

    println!("machines | matches | simulated ms | speedup | messages | MiB shipped");
    println!("---------+---------+--------------+---------+----------+------------");
    let mut baseline_ms: Option<f64> = None;
    for machines in 1..=8usize {
        let cloud = graph.build_cloud(machines, CostModel::default());
        // The same DFS query workload on every cluster size.
        let queries = query_batch(&cloud, 10, 6, None, 0x5CA1E);
        let config = MatchConfig::paper_default();

        let mut total_ms = 0.0;
        let mut total_matches = 0usize;
        let mut total_msgs = 0u64;
        let mut total_bytes = 0u64;
        for q in &queries {
            let out = match_query_distributed(&cloud, q, &config).unwrap();
            total_ms += out.metrics.simulated_ms();
            total_matches += out.num_matches();
            total_msgs += out.metrics.network_messages;
            total_bytes += out.metrics.network_bytes;
        }
        let avg_ms = total_ms / queries.len() as f64;
        let base = *baseline_ms.get_or_insert(avg_ms);
        println!(
            "{machines:>8} | {total_matches:>7} | {avg_ms:>12.2} | {:>7.2} | {total_msgs:>8} | {:>10.2}",
            base / avg_ms,
            total_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    // Show the query plan and load sets for one query on the 4-machine cluster.
    let cloud = graph.build_cloud(4, CostModel::default());
    let query = dfs_query(&cloud, 6, 0x5CA1E).expect("graph has edges");
    let plan = plan_query(&cloud, &query).unwrap();
    println!("\nquery plan on 4 machines ({} STwigs):", plan.stwigs.len());
    for (i, t) in plan.stwigs.iter().enumerate() {
        let marker = if i == plan.head.head_index {
            " [head]"
        } else {
            ""
        };
        println!(
            "  STwig {i}: root {} with {} children, d(head root, root) = {}{marker}",
            query.name(t.root),
            t.children.len(),
            plan.head.root_distances[i]
        );
    }
    for k in 0..4u16 {
        let sets: Vec<String> = (0..plan.stwigs.len())
            .map(|t| {
                let f = load_set(&plan.cluster, &plan.head, MachineId(k), t);
                format!("q{t}:{:?}", f.iter().map(|m| m.0).collect::<Vec<_>>())
            })
            .collect();
        println!("  machine {k} load sets: {}", sets.join("  "));
    }
}
