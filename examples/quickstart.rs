//! Quickstart: build a small labeled graph, pose a pattern query, print the
//! embeddings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use stwig_match::prelude::*;

fn main() {
    // --- 1. Build a toy social graph and load it into the memory cloud. ---
    // People know each other and live in cities; companies employ people.
    let mut gb = GraphBuilder::new_undirected();
    let people = ["ada", "bob", "cyd", "dan", "eve"];
    for (i, _) in people.iter().enumerate() {
        gb.add_vertex(VertexId(i as u64), "person");
    }
    gb.add_vertex(VertexId(100), "city"); // metropolis
    gb.add_vertex(VertexId(101), "city"); // smallville
    gb.add_vertex(VertexId(200), "company");

    // friendships
    for &(a, b) in &[(0u64, 1u64), (1, 2), (2, 0), (2, 3), (3, 4)] {
        gb.add_edge(VertexId(a), VertexId(b));
    }
    // residence
    for &(p, c) in &[(0u64, 100u64), (1, 100), (2, 100), (3, 101), (4, 101)] {
        gb.add_edge(VertexId(p), VertexId(c));
    }
    // employment
    for p in [0u64, 1, 3] {
        gb.add_edge(VertexId(p), VertexId(200));
    }

    // Partition over 4 simulated machines with a Gigabit-like cost model.
    let cloud = gb.build(4, CostModel::default());
    println!(
        "loaded graph: {} vertices, {} edges, {} labels, {} machines",
        cloud.num_vertices(),
        cloud.num_edges(),
        cloud.labels().len(),
        cloud.num_machines()
    );

    // --- 2. Query: two friends who live in the same city. ---
    let mut qb = QueryGraph::builder();
    let p1 = qb.vertex_by_name(&cloud, "person").unwrap();
    let p2 = qb.vertex_by_name(&cloud, "person").unwrap();
    let city = qb.vertex_by_name(&cloud, "city").unwrap();
    qb.edge(p1, p2).edge(p1, city).edge(p2, city);
    let query = qb.build().unwrap();

    // --- 3. Run the STwig matcher. ---
    let out = stwig::match_query(&cloud, &query, &MatchConfig::default()).unwrap();
    println!(
        "query: 2 friends in the same city -> {} embeddings",
        out.num_matches()
    );
    for (i, row) in out.table.rows().enumerate() {
        let named: Vec<String> = out
            .table
            .columns()
            .iter()
            .zip(row)
            .map(|(q, v)| format!("{}={}", query.name(*q), v))
            .collect();
        println!("  match {i}: {}", named.join(", "));
    }

    // --- 4. Inspect what the engine did. ---
    let m = &out.metrics;
    println!(
        "decomposed into {} STwigs, rows per STwig: {:?}",
        m.num_stwigs, m.stwig_rows
    );
    println!(
        "exploration: {} cells loaded, {} label probes; join: {} joins, {} intermediate rows",
        m.explore.cells_loaded,
        m.explore.label_probes,
        m.join.joins_performed,
        m.join.intermediate_rows
    );
    println!(
        "cross-machine traffic: {} messages / {} bytes; wall {:.2} ms",
        m.network_messages,
        m.network_bytes,
        m.wall_ms()
    );
}
