//! # stwig-match
//!
//! Umbrella crate of the STwig reproduction (*Efficient Subgraph Matching on
//! Billion Node Graphs*, Sun et al., VLDB 2012). It re-exports the four
//! member crates so the examples and integration tests can use one import,
//! and is the crate documented in the README quick start.
//!
//! * [`trinity_sim`] — the simulated Trinity memory cloud substrate.
//! * [`stwig`] — the STwig matching algorithm (the paper's contribution).
//! * [`graph_gen`] — graph, label and query workload generators.
//! * [`baselines`] — Ullmann / VF2 / edge-join baseline matchers.

#![warn(missing_docs)]

pub use baselines;
pub use graph_gen;
pub use stwig;
pub use trinity_sim;

/// Everything needed to build a graph, pose a query and run the matcher.
pub mod prelude {
    pub use baselines::{edge_join, signature_match, ullmann, vf2, SignatureIndex};
    pub use graph_gen::prelude::*;
    pub use stwig::prelude::*;
    pub use trinity_sim::prelude::*;
}
