//! A VF2-style state-space subgraph-isomorphism matcher (Cordella, Foggia,
//! Sansone, Vento — TPAMI 2004), the second no-index baseline of Table 1.
//!
//! The matcher grows a partial mapping one query vertex at a time along a
//! connected search order; candidates for the next query vertex are drawn
//! from the data neighbors of already-mapped vertices, and the standard
//! look-ahead rule (enough unmapped neighbors remaining) prunes dead states.

use crate::common::{connected_search_order, table_from_assignments};
use stwig::query::{QVid, QueryGraph};
use stwig::table::ResultTable;
use trinity_sim::ids::VertexId;
use trinity_sim::MemoryCloud;

/// Runs the VF2-style matcher, returning up to `max_results` embeddings
/// (`None` = all).
pub fn vf2(cloud: &MemoryCloud, query: &QueryGraph, max_results: Option<usize>) -> ResultTable {
    let order = connected_search_order(query);
    let mut state = State {
        cloud,
        query,
        order: &order,
        assignment: vec![None; query.num_vertices()],
        used: Vec::new(),
        results: Vec::new(),
        max_results,
    };
    state.expand(0);
    table_from_assignments(query, &state.results)
}

struct State<'a> {
    cloud: &'a MemoryCloud,
    query: &'a QueryGraph,
    order: &'a [QVid],
    assignment: Vec<Option<VertexId>>,
    used: Vec<VertexId>,
    results: Vec<Vec<VertexId>>,
    max_results: Option<usize>,
}

impl<'a> State<'a> {
    fn expand(&mut self, depth: usize) {
        if let Some(limit) = self.max_results {
            if self.results.len() >= limit {
                return;
            }
        }
        if depth == self.order.len() {
            self.results.push(
                self.assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect(),
            );
            return;
        }
        let u = self.order[depth];
        let candidates = self.candidates_for(u, depth);
        for c in candidates {
            if self.feasible(u, c) {
                self.assignment[u.index()] = Some(c);
                self.used.push(c);
                self.expand(depth + 1);
                self.used.pop();
                self.assignment[u.index()] = None;
            }
        }
    }

    /// Candidate data vertices for query vertex `u` at search depth `depth`:
    /// neighbors of a mapped query-neighbor's image when one exists (the VF2
    /// "connected" candidate set), otherwise all vertices with the label.
    fn candidates_for(&self, u: QVid, depth: usize) -> Vec<VertexId> {
        let label = self.query.label(u);
        if depth > 0 {
            if let Some(mapped_neighbor) = self
                .query
                .neighbors(u)
                .find_map(|w| self.assignment[w.index()])
            {
                return self
                    .cloud
                    .neighbors_global(mapped_neighbor)
                    .iter()
                    .filter(|&d| self.cloud.label_of_global(d) == Some(label))
                    .collect();
            }
        }
        self.cloud.all_ids_with_label(label)
    }

    /// VF2 feasibility: `c` is unused, has the right label, is adjacent to
    /// every mapped neighbor of `u`, and has enough unmapped neighbors left
    /// to host `u`'s still-unmapped neighbors (1-look-ahead).
    fn feasible(&self, u: QVid, c: VertexId) -> bool {
        if self.used.contains(&c) {
            return false;
        }
        if self.cloud.label_of_global(c) != Some(self.query.label(u)) {
            return false;
        }
        let mut unmapped_query_neighbors = 0usize;
        for w in self.query.neighbors(u) {
            match self.assignment[w.index()] {
                Some(mapped) => {
                    if !self.cloud.has_edge_global(c, mapped) {
                        return false;
                    }
                }
                None => unmapped_query_neighbors += 1,
            }
        }
        // Look-ahead: c must have at least as many unused neighbors as u has
        // unmapped neighbors.
        if unmapped_query_neighbors > 0 {
            let free_neighbors = self
                .cloud
                .neighbors_global(c)
                .iter()
                .filter(|d| !self.used.contains(d))
                .count();
            if free_neighbors < unmapped_query_neighbors {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::ullmann;
    use stwig::verify::{canonical_rows, verify_all};
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn sample_cloud() -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..4 {
            b.add_vertex(v(i), "x");
        }
        b.add_vertex(v(10), "y");
        b.add_vertex(v(11), "y");
        // 4-cycle of x plus two y pendants
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(3));
        b.add_edge(v(3), v(0));
        b.add_edge(v(0), v(10));
        b.add_edge(v(2), v(11));
        b.build(1, CostModel::free())
    }

    #[test]
    fn agrees_with_ullmann() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "x").unwrap();
        let b = qb.vertex_by_name(&cloud, "x").unwrap();
        let c = qb.vertex_by_name(&cloud, "y").unwrap();
        qb.edge(a, b).edge(a, c);
        let q = qb.build().unwrap();
        let r1 = vf2(&cloud, &q, None);
        let r2 = ullmann(&cloud, &q, None);
        assert_eq!(canonical_rows(&q, &r1), canonical_rows(&q, &r2));
        verify_all(&cloud, &q, &r1).unwrap();
        assert!(r1.num_rows() > 0);
    }

    #[test]
    fn cycle_query_on_cycle_graph() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let vs: Vec<QVid> = (0..4)
            .map(|_| qb.vertex_by_name(&cloud, "x").unwrap())
            .collect();
        qb.edge(vs[0], vs[1])
            .edge(vs[1], vs[2])
            .edge(vs[2], vs[3])
            .edge(vs[3], vs[0]);
        let q = qb.build().unwrap();
        let out = vf2(&cloud, &q, None);
        // A labeled 4-cycle has 8 automorphisms.
        assert_eq!(out.num_rows(), 8);
        verify_all(&cloud, &q, &out).unwrap();
    }

    #[test]
    fn result_limit() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "x").unwrap();
        let b = qb.vertex_by_name(&cloud, "x").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        assert_eq!(vf2(&cloud, &q, Some(3)).num_rows(), 3);
    }

    #[test]
    fn no_match_is_empty() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "y").unwrap();
        let b = qb.vertex_by_name(&cloud, "y").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        assert_eq!(vf2(&cloud, &q, None).num_rows(), 0);
    }
}
