//! Shared utilities for the baseline matchers: candidate generation and
//! result assembly compatible with the `stwig` result tables.

use stwig::query::{QVid, QueryGraph};
use stwig::table::ResultTable;
use trinity_sim::ids::VertexId;
use trinity_sim::MemoryCloud;

/// Per-query-vertex candidate lists: all data vertices with the right label
/// and at least the query vertex's degree.
pub fn label_degree_candidates(cloud: &MemoryCloud, query: &QueryGraph) -> Vec<Vec<VertexId>> {
    query
        .vertices()
        .map(|q| {
            let needed_degree = query.degree(q);
            cloud
                .all_ids_with_label(query.label(q))
                .into_iter()
                .filter(|&v| cloud.degree_global(v) >= needed_degree)
                .collect()
        })
        .collect()
}

/// Builds a result table (columns = query vertices in index order) from a
/// list of complete assignments.
pub fn table_from_assignments(query: &QueryGraph, assignments: &[Vec<VertexId>]) -> ResultTable {
    let columns: Vec<QVid> = query.vertices().collect();
    let mut table = ResultTable::with_capacity(columns.clone(), assignments.len());
    for a in assignments {
        debug_assert_eq!(a.len(), columns.len());
        table.push_row(a);
    }
    table
}

/// A search order over query vertices such that every vertex (after the
/// first) is adjacent to an earlier one — keeps backtracking matchers
/// connected so candidates can be drawn from neighbors of mapped vertices.
pub fn connected_search_order(query: &QueryGraph) -> Vec<QVid> {
    let n = query.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Start from the highest-degree vertex.
    let start = query
        .vertices()
        .max_by_key(|&v| query.degree(v))
        .expect("non-empty query");
    order.push(start);
    placed[start.index()] = true;
    while order.len() < n {
        // Pick the unplaced vertex with the most placed neighbors (ties by
        // degree) — the classic "most constrained next" heuristic.
        let next = query
            .vertices()
            .filter(|v| !placed[v.index()])
            .max_by_key(|&v| {
                let placed_neighbors = query.neighbors(v).filter(|u| placed[u.index()]).count();
                (placed_neighbors, query.degree(v))
            })
            .expect("unplaced vertex exists");
        placed[next.index()] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn small_cloud() -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        b.add_vertex(v(2), "a");
        b.add_vertex(v(3), "b");
        b.add_edge(v(1), v(3));
        b.build(1, CostModel::free())
    }

    #[test]
    fn candidates_respect_label_and_degree() {
        let cloud = small_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let c = label_degree_candidates(&cloud, &q);
        // vertex 2 has label a but degree 0 < 1 → filtered out.
        assert_eq!(c[0], vec![v(1)]);
        assert_eq!(c[1], vec![v(3)]);
    }

    #[test]
    fn search_order_is_connected() {
        let cloud = small_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        let c = qb.vertex_by_name(&cloud, "a").unwrap();
        qb.edge(a, b).edge(b, c);
        let q = qb.build().unwrap();
        let order = connected_search_order(&q);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], b, "highest degree first");
        for (i, &x) in order.iter().enumerate().skip(1) {
            assert!(
                order[..i].iter().any(|&y| q.has_edge(x, y)),
                "vertex {x} not adjacent to any earlier vertex"
            );
        }
    }

    #[test]
    fn table_assembly() {
        let cloud = small_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let t = table_from_assignments(&q, &[vec![v(1), v(3)]]);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.width(), 2);
    }
}
