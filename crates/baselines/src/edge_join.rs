//! Edge-index join baseline (the RDF-3X / BitMat strategy of Table 1 row 2):
//! decompose the query into its individual edges, materialize a candidate
//! table per query edge from an edge index, and answer the query with a
//! multi-way join.
//!
//! This is the strategy §3 argues against for general subgraph matching: the
//! per-edge tables are large and the join does all the work. It serves both
//! as a correctness cross-check and as the comparison point for the
//! exploration-vs-join experiments.

use stwig::join::{multiway_join, select_join_order};
use stwig::metrics::JoinCounters;
use stwig::query::QueryGraph;
use stwig::table::ResultTable;
use trinity_sim::ids::LabelId;
use trinity_sim::MemoryCloud;

/// Statistics of an edge-join execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeJoinStats {
    /// Total rows materialized across all per-edge candidate tables.
    pub candidate_rows: u64,
    /// Join counters of the final multi-way join.
    pub joins_performed: u64,
    /// Rows produced by intermediate joins.
    pub intermediate_rows: u64,
}

/// Runs the edge-join baseline, returning up to `max_results` embeddings and
/// the collected statistics.
pub fn edge_join(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    max_results: Option<usize>,
) -> (ResultTable, EdgeJoinStats) {
    let mut stats = EdgeJoinStats::default();

    // One candidate table per query edge.
    let mut tables: Vec<ResultTable> = Vec::with_capacity(query.num_edges());
    for (u, v) in query.edges() {
        let table = edge_candidates(cloud, query.label(u), query.label(v), u, v);
        stats.candidate_rows += table.num_rows() as u64;
        if table.is_empty() {
            // A query edge with no candidate means no match at all.
            let empty = ResultTable::new(query.vertices().collect());
            return (empty, stats);
        }
        tables.push(table);
    }

    let order = select_join_order(&tables, 64);
    let mut counters = JoinCounters::default();
    let result = multiway_join(&tables, &order, max_results, &mut counters);
    stats.joins_performed = counters.joins_performed;
    stats.intermediate_rows = counters.intermediate_rows;
    (result, stats)
}

/// Materializes the candidate table of one query edge: every data edge whose
/// endpoint labels match `(label_u, label_v)` (in that orientation; the
/// reverse orientation is produced as a separate row since the query edge's
/// endpoints are distinct query vertices).
fn edge_candidates(
    cloud: &MemoryCloud,
    label_u: LabelId,
    label_v: LabelId,
    u: stwig::query::QVid,
    v: stwig::query::QVid,
) -> ResultTable {
    let mut table = ResultTable::new(vec![u, v]);
    // Scan from the rarer endpoint label.
    let (scan_label, other_label, swap) =
        if cloud.label_frequency(label_u) <= cloud.label_frequency(label_v) {
            (label_u, label_v, false)
        } else {
            (label_v, label_u, true)
        };
    for x in cloud.all_ids_with_label(scan_label) {
        for y in cloud.neighbors_global(x) {
            if x == y {
                continue;
            }
            if cloud.label_of_global(y) != Some(other_label) {
                continue;
            }
            if swap {
                table.push_row(&[y, x]);
            } else {
                table.push_row(&[x, y]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::ullmann;
    use stwig::verify::{canonical_rows, verify_all};
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::ids::VertexId;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn sample_cloud() -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..5 {
            b.add_vertex(v(i), "a");
        }
        for i in 10..15 {
            b.add_vertex(v(i), "b");
        }
        for i in 20..23 {
            b.add_vertex(v(i), "c");
        }
        // bipartite-ish a-b edges plus b-c edges
        for i in 0..5u64 {
            b.add_edge(v(i), v(10 + i));
            b.add_edge(v(i), v(10 + (i + 1) % 5));
        }
        for i in 0..3u64 {
            b.add_edge(v(10 + i), v(20 + i));
        }
        b.build(2, CostModel::free())
    }

    #[test]
    fn agrees_with_ullmann_on_path_query() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        let c = qb.vertex_by_name(&cloud, "c").unwrap();
        qb.edge(a, b).edge(b, c);
        let q = qb.build().unwrap();
        let (ej, stats) = edge_join(&cloud, &q, None);
        let ull = ullmann(&cloud, &q, None);
        assert_eq!(canonical_rows(&q, &ej), canonical_rows(&q, &ull));
        verify_all(&cloud, &q, &ej).unwrap();
        assert!(stats.candidate_rows > 0);
        assert!(stats.joins_performed >= 1);
    }

    #[test]
    fn candidate_tables_are_larger_than_results() {
        // The motivating observation of §3: per-edge candidates are produced
        // "in vain" when they do not survive the join.
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        let c = qb.vertex_by_name(&cloud, "c").unwrap();
        qb.edge(a, b).edge(b, c);
        let q = qb.build().unwrap();
        let (result, stats) = edge_join(&cloud, &q, None);
        assert!(stats.candidate_rows as usize > result.num_rows());
    }

    #[test]
    fn missing_edge_label_short_circuits() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let c = qb.vertex_by_name(&cloud, "c").unwrap();
        qb.edge(a, c); // no a-c edges exist
        let q = qb.build().unwrap();
        let (result, stats) = edge_join(&cloud, &q, None);
        assert!(result.is_empty());
        assert_eq!(stats.joins_performed, 0);
    }

    #[test]
    fn result_limit_respected() {
        let cloud = sample_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let (result, _) = edge_join(&cloud, &q, Some(3));
        assert_eq!(result.num_rows(), 3);
    }
}
