//! Ullmann's subgraph-isomorphism algorithm (J. ACM 1976), the classic
//! no-index baseline of Table 1 row 1.
//!
//! Backtracking over query vertices with a candidate matrix that is refined
//! before the search (a candidate for query vertex `u` must have, for every
//! neighbor of `u`, at least one adjacent candidate).

use crate::common::{connected_search_order, label_degree_candidates, table_from_assignments};
use stwig::query::QueryGraph;
use stwig::table::ResultTable;
use trinity_sim::ids::VertexId;
use trinity_sim::MemoryCloud;

/// Runs Ullmann's algorithm, returning up to `max_results` embeddings
/// (`None` = all).
pub fn ullmann(cloud: &MemoryCloud, query: &QueryGraph, max_results: Option<usize>) -> ResultTable {
    let mut candidates = label_degree_candidates(cloud, query);
    refine(cloud, query, &mut candidates);

    let order = connected_search_order(query);
    let mut assignment: Vec<Option<VertexId>> = vec![None; query.num_vertices()];
    let mut results: Vec<Vec<VertexId>> = Vec::new();
    search(
        cloud,
        query,
        &order,
        0,
        &candidates,
        &mut assignment,
        &mut results,
        max_results,
    );
    table_from_assignments(query, &results)
}

/// Ullmann's refinement: repeatedly remove a candidate `c` of query vertex
/// `u` if some neighbor `w` of `u` has no candidate adjacent to `c`.
fn refine(cloud: &MemoryCloud, query: &QueryGraph, candidates: &mut [Vec<VertexId>]) {
    let mut changed = true;
    while changed {
        changed = false;
        for u in query.vertices() {
            let neighbors: Vec<_> = query.neighbors(u).collect();
            let before = candidates[u.index()].len();
            let retained: Vec<VertexId> = candidates[u.index()]
                .iter()
                .copied()
                .filter(|&c| {
                    neighbors.iter().all(|&w| {
                        candidates[w.index()]
                            .iter()
                            .any(|&d| cloud.has_edge_global(c, d))
                    })
                })
                .collect();
            if retained.len() != before {
                candidates[u.index()] = retained;
                changed = true;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    order: &[stwig::query::QVid],
    depth: usize,
    candidates: &[Vec<VertexId>],
    assignment: &mut Vec<Option<VertexId>>,
    results: &mut Vec<Vec<VertexId>>,
    max_results: Option<usize>,
) {
    if let Some(limit) = max_results {
        if results.len() >= limit {
            return;
        }
    }
    if depth == order.len() {
        results.push(
            assignment
                .iter()
                .map(|a| a.expect("complete assignment"))
                .collect(),
        );
        return;
    }
    let u = order[depth];
    'cand: for &c in &candidates[u.index()] {
        // Injectivity.
        if assignment.iter().flatten().any(|&used| used == c) {
            continue;
        }
        // Consistency with already-mapped neighbors.
        for w in query.neighbors(u) {
            if let Some(mapped) = assignment[w.index()] {
                if !cloud.has_edge_global(c, mapped) {
                    continue 'cand;
                }
            }
        }
        assignment[u.index()] = Some(c);
        search(
            cloud,
            query,
            order,
            depth + 1,
            candidates,
            assignment,
            results,
            max_results,
        );
        assignment[u.index()] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stwig::verify::verify_all;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn triangle_cloud() -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..3 {
            b.add_vertex(v(i), "x");
        }
        b.add_vertex(v(10), "y");
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(0));
        b.add_edge(v(0), v(10));
        b.build(1, CostModel::free())
    }

    #[test]
    fn finds_all_triangle_automorphisms() {
        let cloud = triangle_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "x").unwrap();
        let b = qb.vertex_by_name(&cloud, "x").unwrap();
        let c = qb.vertex_by_name(&cloud, "x").unwrap();
        qb.edge(a, b).edge(b, c).edge(c, a);
        let q = qb.build().unwrap();
        let out = ullmann(&cloud, &q, None);
        // One data triangle, 3 query vertices with identical labels → 3! = 6
        // embeddings.
        assert_eq!(out.num_rows(), 6);
        verify_all(&cloud, &q, &out).unwrap();
    }

    #[test]
    fn respects_result_limit() {
        let cloud = triangle_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "x").unwrap();
        let b = qb.vertex_by_name(&cloud, "x").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let out = ullmann(&cloud, &q, Some(2));
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn refinement_removes_impossible_candidates() {
        let cloud = triangle_cloud();
        let mut qb = QueryGraph::builder();
        let x = qb.vertex_by_name(&cloud, "x").unwrap();
        let y = qb.vertex_by_name(&cloud, "y").unwrap();
        qb.edge(x, y);
        let q = qb.build().unwrap();
        let mut cands = label_degree_candidates(&cloud, &q);
        refine(&cloud, &q, &mut cands);
        // only x-vertex 0 is adjacent to the y vertex.
        assert_eq!(cands[x.index()], vec![v(0)]);
        assert_eq!(cands[y.index()], vec![v(10)]);
    }

    #[test]
    fn no_match_returns_empty() {
        let cloud = triangle_cloud();
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "y").unwrap();
        let b = qb.vertex_by_name(&cloud, "y").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        assert_eq!(ullmann(&cloud, &q, None).num_rows(), 0);
    }
}
