//! Neighborhood-signature index baseline (Table 1, group 4).
//!
//! GraphQL [He & Singh 2008] and Zhao & Han [2010] index, for every data
//! vertex, a summary of the labels found within radius `r`; query vertices
//! are pruned against these signatures before a backtracking search. The
//! index is effective but its size is `O(n · d^r)` and it must be rebuilt
//! around every updated vertex — exactly the super-linear cost the paper
//! argues makes such approaches infeasible on billion-node graphs.
//!
//! We implement the radius-1 variant: the signature of a vertex is the count
//! of each label among its direct neighbors. This is enough to reproduce the
//! Table-1 trade-off (index cost vs. query speed-up) at laptop scale.

use crate::common::{connected_search_order, table_from_assignments};
use std::collections::HashMap;
use stwig::query::{QVid, QueryGraph};
use stwig::table::ResultTable;
use trinity_sim::ids::{LabelId, VertexId};
use trinity_sim::MemoryCloud;

/// A per-vertex neighborhood signature: label → number of neighbors carrying
/// that label.
pub type Signature = HashMap<LabelId, u32>;

/// The radius-1 neighborhood-signature index.
#[derive(Debug, Clone, Default)]
pub struct SignatureIndex {
    signatures: HashMap<VertexId, Signature>,
}

impl SignatureIndex {
    /// Builds the index with one pass over every vertex's adjacency list
    /// (`O(n + m)` time, `O(n · distinct-neighbor-labels)` space — already
    /// noticeably heavier than the paper's label index, and growing with
    /// `d^r` for larger radii).
    pub fn build(cloud: &MemoryCloud) -> Self {
        let mut signatures = HashMap::new();
        for m in cloud.machines() {
            for cell in cloud.partition(m).iter_cells() {
                let mut sig: Signature = HashMap::new();
                for n in cell.neighbors {
                    if let Some(l) = cloud.label_of_global(n) {
                        *sig.entry(l).or_insert(0) += 1;
                    }
                }
                signatures.insert(cell.id, sig);
            }
        }
        SignatureIndex { signatures }
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let entries: usize = self.signatures.values().map(|s| s.len()).sum();
        self.signatures.len() * (std::mem::size_of::<VertexId>() + 48)
            + entries * (std::mem::size_of::<LabelId>() + std::mem::size_of::<u32>())
    }

    /// The signature of a data vertex (empty if unknown).
    pub fn signature(&self, v: VertexId) -> Option<&Signature> {
        self.signatures.get(&v)
    }

    /// Whether data vertex `v` can host query vertex `u`: `v`'s neighborhood
    /// must contain at least as many vertices of each label as `u`'s query
    /// neighborhood requires.
    pub fn admits(&self, v: VertexId, query_signature: &Signature) -> bool {
        let Some(sig) = self.signatures.get(&v) else {
            return false;
        };
        query_signature
            .iter()
            .all(|(label, need)| sig.get(label).copied().unwrap_or(0) >= *need)
    }
}

/// The query-side signature of a query vertex: required label counts among
/// its query neighbors.
pub fn query_signature(query: &QueryGraph, u: QVid) -> Signature {
    let mut sig = Signature::new();
    for w in query.neighbors(u) {
        *sig.entry(query.label(w)).or_insert(0) += 1;
    }
    sig
}

/// Subgraph matching with signature-based pruning: candidates are label
/// matches whose neighborhood signature dominates the query vertex's
/// signature, followed by the same backtracking search as the other
/// baselines.
pub fn signature_match(
    cloud: &MemoryCloud,
    index: &SignatureIndex,
    query: &QueryGraph,
    max_results: Option<usize>,
) -> ResultTable {
    // Candidate lists with signature pruning.
    let candidates: Vec<Vec<VertexId>> = query
        .vertices()
        .map(|u| {
            let qsig = query_signature(query, u);
            cloud
                .all_ids_with_label(query.label(u))
                .into_iter()
                .filter(|&v| index.admits(v, &qsig))
                .collect()
        })
        .collect();

    let order = connected_search_order(query);
    let mut assignment: Vec<Option<VertexId>> = vec![None; query.num_vertices()];
    let mut results = Vec::new();
    backtrack(
        cloud,
        query,
        &order,
        0,
        &candidates,
        &mut assignment,
        &mut results,
        max_results,
    );
    table_from_assignments(query, &results)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    order: &[QVid],
    depth: usize,
    candidates: &[Vec<VertexId>],
    assignment: &mut Vec<Option<VertexId>>,
    results: &mut Vec<Vec<VertexId>>,
    max_results: Option<usize>,
) {
    if let Some(limit) = max_results {
        if results.len() >= limit {
            return;
        }
    }
    if depth == order.len() {
        results.push(assignment.iter().map(|a| a.unwrap()).collect());
        return;
    }
    let u = order[depth];
    'cand: for &c in &candidates[u.index()] {
        if assignment.iter().flatten().any(|&used| used == c) {
            continue;
        }
        for w in query.neighbors(u) {
            if let Some(mapped) = assignment[w.index()] {
                if !cloud.has_edge_global(c, mapped) {
                    continue 'cand;
                }
            }
        }
        assignment[u.index()] = Some(c);
        backtrack(
            cloud,
            query,
            order,
            depth + 1,
            candidates,
            assignment,
            results,
            max_results,
        );
        assignment[u.index()] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::ullmann;
    use stwig::verify::{canonical_rows, verify_all};
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn sample_cloud() -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..6 {
            b.add_vertex(v(i), "a");
        }
        for i in 10..16 {
            b.add_vertex(v(i), "b");
        }
        b.add_vertex(v(20), "c");
        for i in 0..6u64 {
            b.add_edge(v(i), v(10 + i));
        }
        b.add_edge(v(0), v(11));
        b.add_edge(v(0), v(20));
        b.add_edge(v(10), v(20));
        b.build(3, CostModel::free())
    }

    #[test]
    fn index_builds_for_every_vertex() {
        let cloud = sample_cloud();
        let idx = SignatureIndex::build(&cloud);
        assert_eq!(idx.len() as u64, cloud.num_vertices());
        assert!(!idx.is_empty());
        assert!(idx.memory_bytes() > 0);
        // vertex 0 has neighbors b,b,c
        let lb = cloud.labels().get("b").unwrap();
        let lc = cloud.labels().get("c").unwrap();
        let sig = idx.signature(v(0)).unwrap();
        assert_eq!(sig.get(&lb), Some(&2));
        assert_eq!(sig.get(&lc), Some(&1));
    }

    #[test]
    fn signature_pruning_is_sound_and_agrees_with_ullmann() {
        let cloud = sample_cloud();
        let idx = SignatureIndex::build(&cloud);
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b1 = qb.vertex_by_name(&cloud, "b").unwrap();
        let b2 = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(a, b1).edge(a, b2);
        let q = qb.build().unwrap();
        let ours = signature_match(&cloud, &idx, &q, None);
        let reference = ullmann(&cloud, &q, None);
        assert_eq!(canonical_rows(&q, &ours), canonical_rows(&q, &reference));
        verify_all(&cloud, &q, &ours).unwrap();
        // Only vertex a0 has two b-neighbors, so there are exactly 2 ordered matches.
        assert_eq!(ours.num_rows(), 2);
    }

    #[test]
    fn signature_prunes_candidates() {
        let cloud = sample_cloud();
        let idx = SignatureIndex::build(&cloud);
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b1 = qb.vertex_by_name(&cloud, "b").unwrap();
        let b2 = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(a, b1).edge(a, b2);
        let q = qb.build().unwrap();
        let qsig = query_signature(&q, a);
        // Only a0 has two b-neighbors; the other a-vertices are pruned.
        let admitted: Vec<_> = cloud
            .all_ids_with_label(q.label(a))
            .into_iter()
            .filter(|&x| idx.admits(x, &qsig))
            .collect();
        assert_eq!(admitted, vec![v(0)]);
    }

    #[test]
    fn index_is_heavier_than_the_string_index() {
        // The point of Table 1: the neighborhood index costs strictly more
        // memory than the graph's own label index because it stores per-vertex
        // label multisets.
        let cloud = sample_cloud();
        let idx = SignatureIndex::build(&cloud);
        let string_index_bytes: usize = cloud
            .machines()
            .map(|m| cloud.partition(m).num_vertices() * std::mem::size_of::<VertexId>())
            .sum();
        assert!(idx.memory_bytes() > string_index_bytes);
    }

    #[test]
    fn result_limit_respected() {
        let cloud = sample_cloud();
        let idx = SignatureIndex::build(&cloud);
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let out = signature_match(&cloud, &idx, &q, Some(3));
        assert_eq!(out.num_rows(), 3);
    }
}
