//! # baselines
//!
//! Baseline subgraph-isomorphism matchers used for correctness cross-checks
//! and for the Table-1-style comparison experiments:
//!
//! * [`ullmann`] — Ullmann's 1976 backtracking algorithm with candidate
//!   refinement (Table 1, group 1);
//! * [`vf2`] — a VF2-style state-space matcher (Cordella et al. 2004, also
//!   group 1);
//! * [`edge_join`] — an RDF-3X/BitMat-style edge-index join matcher
//!   (Table 1, group 2), the strategy §3 of the paper argues against;
//! * [`signature`] — a GraphQL/Zhao-Han-style neighborhood-signature index
//!   matcher (Table 1, group 4), whose index is the super-linear structure
//!   the paper rules out at billion-node scale.
//!
//! All baselines operate on the whole memory cloud as if it were a single
//! in-memory graph (they ignore partitioning), which is exactly the setting
//! the paper's Table 1 assumes for the competing approaches.

#![warn(missing_docs)]

pub mod common;
pub mod edge_join;
pub mod signature;
pub mod ullmann;
pub mod vf2;

pub use edge_join::{edge_join, EdgeJoinStats};
pub use signature::{signature_match, SignatureIndex};
pub use ullmann::ullmann;
pub use vf2::vf2;
