//! Peak-memory audit of CSR construction: `Csr::from_lists` must not
//! double-buffer the adjacency. It frees each input list as soon as its run
//! is copied into the exact-sized flat array, so the allocation high-water
//! mark *above the already-live input* is one output copy — not input plus a
//! staged clone plus the output, the way a clone-and-collect implementation
//! peaks. A live-bytes watermark allocator measures exactly that.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use trinity_sim::compact::CompactCsr;
use trinity_sim::csr::Csr;
use trinity_sim::ids::VertexId;

struct PeakAllocator;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: u64) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // The old block is live until the copy completes, so count the new
        // block in full before subtracting the old one.
        note_alloc(new_size as u64);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: PeakAllocator = PeakAllocator;

/// Runs `f` and returns the allocation high-water mark *above* the bytes
/// live at entry, plus the result.
fn peak_above_baseline<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let baseline = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(baseline, Ordering::Relaxed);
    let result = f();
    let peak = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline);
    (peak, result)
}

const N: usize = 10_000;
const DEG: u64 = 16;

/// Exact-capacity adjacency lists: `N` vertices of degree `DEG`.
fn adjacency_lists() -> Vec<Vec<VertexId>> {
    (0..N as u64)
        .map(|v| {
            let mut l = Vec::with_capacity(DEG as usize);
            for k in 0..DEG {
                l.push(VertexId((v + 1 + k * 37) % (10 * N as u64)));
            }
            l
        })
        .collect()
}

#[test]
fn from_lists_does_not_double_buffer() {
    let lists = adjacency_lists();
    let entries: usize = lists.iter().map(|l| l.len()).sum();
    let (peak, csr) = peak_above_baseline(|| Csr::from_lists(lists));
    assert_eq!(csr.num_vertices(), N);
    // Above the live input, from_lists may allocate the offsets array and
    // the exact-sized flat neighbor array — nothing else. A staged second
    // copy of the adjacency would show up as ~2x this bound.
    let output_bytes = (entries * 8 + (N + 1) * 8) as u64;
    assert!(
        peak <= output_bytes + (64 << 10),
        "from_lists peaked {peak} bytes above baseline for {entries} entries \
         (output is {output_bytes} bytes) — the adjacency is being staged twice"
    );
}

#[test]
fn clone_and_collect_reference_exceeds_the_bound() {
    // The contrast proving the watermark measures what it claims: collecting
    // a flat copy while the input is still alive holds input + copy
    // simultaneously, which is exactly the peak from_lists avoids.
    let lists = adjacency_lists();
    let entries: usize = lists.iter().map(|l| l.len()).sum();
    let (peak, flat) = peak_above_baseline(|| {
        let flat: Vec<VertexId> = lists.iter().flatten().copied().collect();
        drop(lists);
        flat
    });
    assert_eq!(flat.len(), entries);
    let output_bytes = (entries * 8) as u64;
    assert!(
        peak >= output_bytes,
        "staged copy must add at least one full output ({output_bytes} bytes), got {peak}"
    );
}

#[test]
fn compact_csr_build_stays_within_the_plain_bound() {
    // The compact encoder consumes the same input and must obey the same
    // no-double-buffering discipline; its transient peak is bounded by the
    // plain output size even though its final footprint is far smaller.
    let lists = adjacency_lists();
    let entries: usize = lists.iter().map(|l| l.len()).sum();
    let (peak, csr) = peak_above_baseline(|| CompactCsr::from_lists(lists));
    let plain_output = (entries * 8 + (N + 1) * 8) as u64;
    assert!(
        peak <= plain_output + (64 << 10),
        "compact build peaked {peak} bytes above baseline (plain output is {plain_output})"
    );
    assert!(
        csr.memory_bytes() < entries * 8 / 2,
        "compact encoding should be well under half the plain 8 B/entry"
    );
}
