//! The per-machine "string index": label → IDs of local vertices.
//!
//! This is the only index the paper's system maintains besides raw adjacency.
//! Its size is linear in the number of local vertices, it is built in one
//! pass, and updates are O(1) amortized — this is what makes the approach
//! feasible on billion-node graphs while structural indices are not.

use crate::ids::{LabelId, VertexId};
use serde::{Deserialize, Serialize};

/// Label → sorted list of local vertex IDs, for one partition.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelIndex {
    /// `posting[l]` is the sorted list of local vertices carrying label `l`.
    /// Indexed by `LabelId::index()`; labels absent from this partition have
    /// an empty posting list.
    postings: Vec<Vec<VertexId>>,
}

impl LabelIndex {
    /// Builds the index from `(vertex, label)` pairs. `num_labels` is the size
    /// of the global label space so lookups for labels not present locally
    /// stay in bounds.
    ///
    /// A label id at or beyond `num_labels` violates the global label space
    /// the caller declared; it used to silently grow `postings`, which let
    /// two partitions built from different streams disagree on
    /// [`LabelIndex::num_labels`] and desynchronized everything keyed on
    /// label-space size (cloud fingerprints, signature widths). Such pairs
    /// are now dropped — the vertex is simply not indexed under the bogus
    /// label — and flagged with a `debug_assert`.
    pub fn build(pairs: impl IntoIterator<Item = (VertexId, LabelId)>, num_labels: usize) -> Self {
        let mut postings = vec![Vec::new(); num_labels];
        for (v, l) in pairs {
            let Some(posting) = postings.get_mut(l.index()) else {
                debug_assert!(
                    false,
                    "label {l:?} for vertex {v:?} is outside the declared label space ({num_labels} labels)"
                );
                continue;
            };
            posting.push(v);
        }
        for p in &mut postings {
            p.sort_unstable();
            p.dedup();
        }
        LabelIndex { postings }
    }

    /// Vertices (local to this machine) carrying `label`, sorted ascending.
    #[inline]
    pub fn get(&self, label: LabelId) -> &[VertexId] {
        self.postings
            .get(label.index())
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// Number of local vertices carrying `label`.
    #[inline]
    pub fn frequency(&self, label: LabelId) -> usize {
        self.get(label).len()
    }

    /// Number of label slots (global label-space size this index was built for).
    pub fn num_labels(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings (equals the number of local labeled vertices
    /// when every vertex has exactly one label).
    pub fn total_postings(&self) -> usize {
        self.postings.iter().map(|p| p.len()).sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.postings.len() * std::mem::size_of::<Vec<VertexId>>()
            + self.total_postings() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn build_and_lookup() {
        let idx = LabelIndex::build(vec![(v(5), l(0)), (v(1), l(0)), (v(2), l(1))], 3);
        assert_eq!(idx.get(l(0)), &[v(1), v(5)]);
        assert_eq!(idx.get(l(1)), &[v(2)]);
        assert_eq!(idx.get(l(2)), &[] as &[VertexId]);
        assert_eq!(idx.frequency(l(0)), 2);
        assert_eq!(idx.num_labels(), 3);
        assert_eq!(idx.total_postings(), 3);
    }

    #[test]
    fn out_of_range_label_is_empty() {
        let idx = LabelIndex::build(vec![(v(1), l(0))], 1);
        assert_eq!(idx.get(l(10)), &[] as &[VertexId]);
        assert_eq!(idx.frequency(l(10)), 0);
    }

    #[test]
    fn out_of_space_labels_are_clamped_not_grown() {
        // Regression: a label id beyond `num_labels` used to silently grow
        // the postings vector, so `num_labels()` depended on the data stream
        // instead of the declared global label space. Debug builds now flag
        // the violation; release builds drop the pair — in neither profile
        // may the label space grow.
        if cfg!(debug_assertions) {
            let panicked =
                std::panic::catch_unwind(|| LabelIndex::build(vec![(v(1), l(5))], 2)).is_err();
            assert!(panicked, "debug builds must flag the label-space violation");
        } else {
            let idx = LabelIndex::build(vec![(v(1), l(5)), (v(2), l(1))], 2);
            assert_eq!(idx.num_labels(), 2, "label space must not grow");
            assert_eq!(idx.get(l(5)), &[] as &[VertexId]);
            assert_eq!(idx.get(l(1)), &[v(2)], "in-range pairs are unaffected");
            assert_eq!(idx.total_postings(), 1);
        }
    }

    #[test]
    fn duplicate_pairs_are_deduplicated() {
        let idx = LabelIndex::build(vec![(v(1), l(0)), (v(1), l(0))], 1);
        assert_eq!(idx.get(l(0)), &[v(1)]);
    }

    #[test]
    fn memory_is_linear_in_postings() {
        let small = LabelIndex::build((0..10u64).map(|i| (v(i), l(0))), 1);
        let large = LabelIndex::build((0..1000u64).map(|i| (v(i), l(0))), 1);
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
