//! The per-machine "string index": label → IDs of local vertices.
//!
//! This is the only index the paper's system maintains besides raw adjacency.
//! Its size is linear in the number of local vertices, it is built in one
//! pass, and updates are O(1) amortized — this is what makes the approach
//! feasible on billion-node graphs while structural indices are not.

use crate::ids::{LabelId, VertexId};
use serde::{Deserialize, Serialize};

/// Label → sorted list of local vertex IDs, for one partition.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelIndex {
    /// `posting[l]` is the sorted list of local vertices carrying label `l`.
    /// Indexed by `LabelId::index()`; labels absent from this partition have
    /// an empty posting list.
    postings: Vec<Vec<VertexId>>,
}

impl LabelIndex {
    /// Builds the index from `(vertex, label)` pairs. `num_labels` is the size
    /// of the global label space so lookups for labels not present locally
    /// stay in bounds.
    pub fn build(pairs: impl IntoIterator<Item = (VertexId, LabelId)>, num_labels: usize) -> Self {
        let mut postings = vec![Vec::new(); num_labels];
        for (v, l) in pairs {
            if l.index() >= postings.len() {
                postings.resize(l.index() + 1, Vec::new());
            }
            postings[l.index()].push(v);
        }
        for p in &mut postings {
            p.sort_unstable();
            p.dedup();
        }
        LabelIndex { postings }
    }

    /// Vertices (local to this machine) carrying `label`, sorted ascending.
    #[inline]
    pub fn get(&self, label: LabelId) -> &[VertexId] {
        self.postings
            .get(label.index())
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// Number of local vertices carrying `label`.
    #[inline]
    pub fn frequency(&self, label: LabelId) -> usize {
        self.get(label).len()
    }

    /// Number of label slots (global label-space size this index was built for).
    pub fn num_labels(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings (equals the number of local labeled vertices
    /// when every vertex has exactly one label).
    pub fn total_postings(&self) -> usize {
        self.postings.iter().map(|p| p.len()).sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.postings.len() * std::mem::size_of::<Vec<VertexId>>()
            + self.total_postings() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn build_and_lookup() {
        let idx = LabelIndex::build(vec![(v(5), l(0)), (v(1), l(0)), (v(2), l(1))], 3);
        assert_eq!(idx.get(l(0)), &[v(1), v(5)]);
        assert_eq!(idx.get(l(1)), &[v(2)]);
        assert_eq!(idx.get(l(2)), &[] as &[VertexId]);
        assert_eq!(idx.frequency(l(0)), 2);
        assert_eq!(idx.num_labels(), 3);
        assert_eq!(idx.total_postings(), 3);
    }

    #[test]
    fn out_of_range_label_is_empty() {
        let idx = LabelIndex::build(vec![(v(1), l(0))], 1);
        assert_eq!(idx.get(l(10)), &[] as &[VertexId]);
        assert_eq!(idx.frequency(l(10)), 0);
    }

    #[test]
    fn grows_for_unexpected_labels() {
        // A label id beyond num_labels still gets stored correctly.
        let idx = LabelIndex::build(vec![(v(1), l(5))], 2);
        assert_eq!(idx.get(l(5)), &[v(1)]);
    }

    #[test]
    fn duplicate_pairs_are_deduplicated() {
        let idx = LabelIndex::build(vec![(v(1), l(0)), (v(1), l(0))], 1);
        assert_eq!(idx.get(l(0)), &[v(1)]);
    }

    #[test]
    fn memory_is_linear_in_postings() {
        let small = LabelIndex::build((0..10u64).map(|i| (v(i), l(0))), 1);
        let large = LabelIndex::build((0..1000u64).map(|i| (v(i), l(0))), 1);
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
