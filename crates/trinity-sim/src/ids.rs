//! Strongly-typed identifiers used throughout the memory cloud.
//!
//! The paper works with three kinds of identifiers:
//!
//! * graph vertex IDs (64-bit, global across the whole cloud),
//! * text labels, which the "string index" maps to vertex IDs — we intern
//!   labels to dense 32-bit [`LabelId`]s once at load time,
//! * machine IDs, identifying a logical machine (partition) of the cloud.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A global vertex identifier, unique across the entire memory cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Returns the raw 64-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

/// An interned label identifier. Dense, starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Returns the raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the label id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for LabelId {
    fn from(v: u32) -> Self {
        LabelId(v)
    }
}

/// Identifier of a logical machine (one partition of the memory cloud).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u16);

impl MachineId {
    /// Returns the machine id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<u16> for MachineId {
    fn from(v: u16) -> Self {
        MachineId(v)
    }
}

/// Bidirectional mapping between label strings and dense [`LabelId`]s.
///
/// This is the only "index" the paper allows itself besides the per-machine
/// label → vertex-ID lists: its size is linear in the number of distinct
/// labels and it is built in a single pass over the input.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelInterner {
    by_name: HashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.by_name.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Looks up a label id by name without interning.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of a label id, if it exists.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_str())
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(LabelId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42u64);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn label_id_display_and_index() {
        let l = LabelId::from(7u32);
        assert_eq!(l.index(), 7);
        assert_eq!(l.to_string(), "l7");
    }

    #[test]
    fn machine_id_display() {
        let m = MachineId::from(3u16);
        assert_eq!(m.index(), 3);
        assert_eq!(m.to_string(), "M3");
    }

    #[test]
    fn interner_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("person");
        let b = i.intern("movie");
        let a2 = i.intern("person");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(a), Some("person"));
        assert_eq!(i.get("movie"), Some(b));
        assert_eq!(i.get("absent"), None);
    }

    #[test]
    fn interner_iteration_order_is_id_order() {
        let mut i = LabelInterner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let collected: Vec<_> = i.iter().map(|(id, n)| (id.raw(), n.to_string())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_string()),
                (1, "b".to_string()),
                (2, "c".to_string())
            ]
        );
    }

    #[test]
    fn empty_interner() {
        let i = LabelInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.name(LabelId(0)), None);
    }
}
