//! Error types for building and loading graphs into the memory cloud.

use crate::ids::VertexId;
use std::fmt;

/// Errors produced while assembling or loading a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrinityError {
    /// An edge references a vertex that was never added.
    UnknownVertex(VertexId),
    /// The requested number of machines is invalid (zero or too large).
    InvalidMachineCount(usize),
    /// The graph contains no vertices.
    EmptyGraph,
    /// A text line could not be parsed while loading an edge list.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what failed to parse.
        message: String,
    },
    /// Underlying I/O failure while reading or writing graph files.
    Io(String),
}

impl fmt::Display for TrinityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrinityError::UnknownVertex(v) => {
                write!(f, "edge references unknown vertex {v}")
            }
            TrinityError::InvalidMachineCount(n) => {
                write!(f, "invalid machine count {n}: must be in 1..=65535")
            }
            TrinityError::EmptyGraph => write!(f, "graph contains no vertices"),
            TrinityError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TrinityError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TrinityError {}

impl From<std::io::Error> for TrinityError {
    fn from(e: std::io::Error) -> Self {
        TrinityError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(TrinityError::UnknownVertex(VertexId(7))
            .to_string()
            .contains("v7"));
        assert!(TrinityError::InvalidMachineCount(0)
            .to_string()
            .contains("0"));
        assert!(TrinityError::EmptyGraph.to_string().contains("no vertices"));
        assert!(TrinityError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: TrinityError = io.into();
        assert!(matches!(e, TrinityError::Io(_)));
    }
}
