//! Compressed-sparse-row adjacency storage for one partition.
//!
//! Trinity stores graph cells in flat memory trunks rather than as heap
//! objects, precisely to avoid per-object metadata overhead on hundreds of
//! millions of small cells. The CSR layout plays the same role here: one
//! offsets array plus one flat neighbor array, no per-vertex allocation.

use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// CSR adjacency over the vertices *local to one partition*.
///
/// Local vertices are addressed by a dense local index in `0..num_vertices`;
/// the mapping between local indices and global [`VertexId`]s is owned by the
/// partition. Neighbor entries are global vertex ids because edges routinely
/// cross partitions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[i]..offsets[i+1]` is the neighbor range of local vertex `i`.
    offsets: Vec<usize>,
    /// Flat neighbor array, each run sorted ascending and deduplicated.
    neighbors: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from per-vertex adjacency lists.
    ///
    /// Each list is sorted and deduplicated. `lists[i]` becomes the neighbor
    /// run of local vertex `i`.
    ///
    /// The input lists are consumed: each inner `Vec` is freed immediately
    /// after its run is copied into the flat array, so the allocation peak
    /// is bounded by one input pass plus the exact-sized output — the
    /// function never holds a second staged copy of the adjacency the way a
    /// clone-and-collect implementation would (pinned by the counting-
    /// allocator test in `tests/alloc_peak.rs`). Bulk loaders that can
    /// stream runs should use [`Csr::from_sorted_flat`] instead and skip the
    /// `Vec<Vec<_>>` staging entirely.
    pub fn from_lists(mut lists: Vec<Vec<VertexId>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for l in &mut lists {
            l.sort_unstable();
            l.dedup();
            total += l.len();
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        for l in lists {
            neighbors.extend_from_slice(&l);
            drop(l); // release each input list as soon as it is copied
        }
        Csr { offsets, neighbors }
    }

    /// Builds a CSR directly from a prebuilt offsets array and flat neighbor
    /// array whose runs are already sorted ascending and deduplicated — the
    /// zero-staging path the streaming bulk loader uses.
    pub fn from_sorted_flat(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain a leading 0");
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..offsets.len() - 1).all(|i| {
            neighbors[offsets[i]..offsets[i + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        Csr { offsets, neighbors }
    }

    /// Number of local vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored neighbor entries (directed edge endpoints).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of local vertex `local`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, local: usize) -> &[VertexId] {
        let start = self.offsets[local];
        let end = self.offsets[local + 1];
        &self.neighbors[start..end]
    }

    /// Degree of local vertex `local`.
    #[inline]
    pub fn degree(&self, local: usize) -> usize {
        self.offsets[local + 1] - self.offsets[local]
    }

    /// Whether local vertex `local` has `target` among its neighbors.
    #[inline]
    pub fn has_neighbor(&self, local: usize, target: VertexId) -> bool {
        self.neighbors(local).binary_search(&target).is_ok()
    }

    /// Approximate memory footprint in bytes (offsets + neighbor array).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// Iterates `(local_index, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[VertexId])> {
        (0..self.num_vertices()).map(move |i| (i, self.neighbors(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn empty_csr() {
        let c = Csr::from_lists(vec![]);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_entries(), 0);
    }

    #[test]
    fn basic_adjacency() {
        let c = Csr::from_lists(vec![vec![v(3), v(1)], vec![], vec![v(0)]]);
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_entries(), 3);
        assert_eq!(c.neighbors(0), &[v(1), v(3)]);
        assert_eq!(c.neighbors(1), &[] as &[VertexId]);
        assert_eq!(c.neighbors(2), &[v(0)]);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(1), 0);
    }

    #[test]
    fn deduplicates_and_sorts() {
        let c = Csr::from_lists(vec![vec![v(5), v(5), v(2), v(9), v(2)]]);
        assert_eq!(c.neighbors(0), &[v(2), v(5), v(9)]);
        assert_eq!(c.degree(0), 3);
    }

    #[test]
    fn has_neighbor_uses_binary_search() {
        let c = Csr::from_lists(vec![vec![v(10), v(20), v(30)]]);
        assert!(c.has_neighbor(0, v(20)));
        assert!(!c.has_neighbor(0, v(25)));
    }

    #[test]
    fn iteration_covers_all_vertices() {
        let c = Csr::from_lists(vec![vec![v(1)], vec![v(2)], vec![v(3)]]);
        let degrees: Vec<usize> = c.iter().map(|(_, ns)| ns.len()).collect();
        assert_eq!(degrees, vec![1, 1, 1]);
    }

    #[test]
    fn from_sorted_flat_matches_from_lists() {
        let a = Csr::from_lists(vec![vec![v(1), v(3)], vec![], vec![v(0)]]);
        let b = Csr::from_sorted_flat(vec![0, 2, 2, 3], vec![v(1), v(3), v(0)]);
        for i in 0..3 {
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
        assert_eq!(b.num_vertices(), 3);
        assert_eq!(b.num_entries(), 3);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let c = Csr::from_lists(vec![vec![v(1), v(2)], vec![v(3)]]);
        assert!(c.memory_bytes() > 0);
    }
}
