//! Text edge-list + label-file persistence.
//!
//! Format (whitespace separated, `#`-prefixed comment lines ignored):
//!
//! * label file: `vertex_id label_string` per line;
//! * edge file:  `src_id dst_id` per line.
//!
//! This mirrors the Pajek-style files the paper's real datasets (US Patents,
//! WordNet) are distributed in, so the same loader can ingest either the real
//! downloads or our synthetic stand-ins.

use crate::builder::GraphBuilder;
use crate::error::TrinityError;
use crate::ids::VertexId;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses a label file from a reader, adding vertices to the builder.
pub fn read_labels<R: BufRead>(
    reader: R,
    builder: &mut GraphBuilder,
) -> Result<usize, TrinityError> {
    let mut count = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let id = parse_id(parts.next(), lineno)?;
        let label = parts.next().ok_or_else(|| TrinityError::Parse {
            line: lineno + 1,
            message: "missing label".to_string(),
        })?;
        builder.add_vertex(VertexId(id), label);
        count += 1;
    }
    Ok(count)
}

/// Parses an edge file from a reader, adding edges to the builder.
pub fn read_edges<R: BufRead>(
    reader: R,
    builder: &mut GraphBuilder,
) -> Result<usize, TrinityError> {
    let mut count = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_id(parts.next(), lineno)?;
        let v = parse_id(parts.next(), lineno)?;
        builder.add_edge(VertexId(u), VertexId(v));
        count += 1;
    }
    Ok(count)
}

fn parse_id(token: Option<&str>, lineno: usize) -> Result<u64, TrinityError> {
    let token = token.ok_or_else(|| TrinityError::Parse {
        line: lineno + 1,
        message: "missing vertex id".to_string(),
    })?;
    token.parse::<u64>().map_err(|e| TrinityError::Parse {
        line: lineno + 1,
        message: format!("invalid vertex id `{token}`: {e}"),
    })
}

/// Loads a graph from a label file and an edge file on disk.
pub fn load_graph_files(
    label_path: &Path,
    edge_path: &Path,
    directed: bool,
) -> Result<GraphBuilder, TrinityError> {
    let mut builder = if directed {
        GraphBuilder::new_directed()
    } else {
        GraphBuilder::new_undirected()
    };
    let labels = std::fs::File::open(label_path)?;
    read_labels(std::io::BufReader::new(labels), &mut builder)?;
    let edges = std::fs::File::open(edge_path)?;
    read_edges(std::io::BufReader::new(edges), &mut builder)?;
    Ok(builder)
}

/// Writes the vertices and edges of a builder back to label/edge files.
/// Primarily used to persist generated synthetic datasets.
pub fn save_graph_files(
    builder_vertices: &[(VertexId, String)],
    builder_edges: &[(VertexId, VertexId)],
    label_path: &Path,
    edge_path: &Path,
) -> Result<(), TrinityError> {
    let mut lw = BufWriter::new(std::fs::File::create(label_path)?);
    writeln!(lw, "# vertex_id label")?;
    for (v, l) in builder_vertices {
        writeln!(lw, "{} {}", v.raw(), l)?;
    }
    let mut ew = BufWriter::new(std::fs::File::create(edge_path)?);
    writeln!(ew, "# src dst")?;
    for (u, v) in builder_edges {
        writeln!(ew, "{} {}", u.raw(), v.raw())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CostModel;
    use std::io::Cursor;

    #[test]
    fn parse_labels_and_edges() {
        let labels = "# comment\n1 a\n2 b\n\n3 c\n";
        let edges = "1 2\n2 3\n# trailing comment\n";
        let mut b = GraphBuilder::new_undirected();
        assert_eq!(read_labels(Cursor::new(labels), &mut b).unwrap(), 3);
        assert_eq!(read_edges(Cursor::new(edges), &mut b).unwrap(), 2);
        let cloud = b.build(1, CostModel::free());
        assert_eq!(cloud.num_vertices(), 3);
        assert_eq!(cloud.num_edges(), 2);
    }

    #[test]
    fn malformed_label_line_is_an_error() {
        let labels = "1\n";
        let mut b = GraphBuilder::new_undirected();
        let err = read_labels(Cursor::new(labels), &mut b).unwrap_err();
        assert!(matches!(err, TrinityError::Parse { line: 1, .. }));
    }

    #[test]
    fn malformed_edge_line_is_an_error() {
        let edges = "1 x\n";
        let mut b = GraphBuilder::new_undirected();
        let err = read_edges(Cursor::new(edges), &mut b).unwrap_err();
        assert!(matches!(err, TrinityError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join("trinity_sim_edge_list_test");
        std::fs::create_dir_all(&dir).unwrap();
        let label_path = dir.join("labels.txt");
        let edge_path = dir.join("edges.txt");
        let vertices = vec![
            (VertexId(1), "a".to_string()),
            (VertexId(2), "b".to_string()),
        ];
        let edges = vec![(VertexId(1), VertexId(2))];
        save_graph_files(&vertices, &edges, &label_path, &edge_path).unwrap();
        let builder = load_graph_files(&label_path, &edge_path, false).unwrap();
        let cloud = builder.build(1, CostModel::free());
        assert_eq!(cloud.num_vertices(), 2);
        assert_eq!(cloud.num_edges(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_graph_files(
            Path::new("/nonexistent/labels.txt"),
            Path::new("/nonexistent/edges.txt"),
            false,
        )
        .unwrap_err();
        assert!(matches!(err, TrinityError::Io(_)));
    }
}
