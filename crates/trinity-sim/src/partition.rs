//! One logical machine of the memory cloud: the vertices assigned to it,
//! their labels, their adjacency, and the local label index — each stored in
//! the physical representation selected by [`StorageTier`].
//!
//! A partition is an immutable base ([`PartitionBase`], behind an `Arc` so
//! epoch snapshots share untouched machines) plus an optional
//! [`PartitionOverlay`]: a materialized delta the epoch manager lays over the
//! base when the graph mutates. Every read method dispatches overlay-first,
//! so static partitions (no overlay) run the exact pre-refactor code path.

use crate::compact::{
    CompactCsr, CompactIdMap, CompactLabelIndex, Neighbors, Postings, StorageTier,
};
use crate::csr::Csr;
use crate::ids::{LabelId, VertexId};
use crate::label_index::LabelIndex;
use crate::neighbor_index::{LabelPairTable, NeighborLabelIndex, FULL_SIGNATURE};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A vertex record as returned by `Cloud.Load`: the vertex's label and the
/// IDs of its neighbors (which may live on any machine). The neighbor run is
/// a zero-copy [`Neighbors`] view into the owning partition — plain-tier
/// partitions hand out the underlying slice, compact-tier partitions hand
/// out the encoded bytes and decode on iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell<'a> {
    /// The vertex this cell describes.
    pub id: VertexId,
    /// The vertex's label.
    pub label: LabelId,
    /// Global IDs of all neighbors, sorted ascending.
    pub neighbors: Neighbors<'a>,
}

impl Cell<'_> {
    /// Copies this cell into an owned [`CellBuf`], detaching it from the
    /// partition it borrows. This is what crosses machine boundaries in a
    /// [`crate::transport::Transport`] reply: the requester receives a copy
    /// of the cell, never a borrow of the remote partition.
    pub fn to_owned(&self) -> CellBuf {
        CellBuf {
            id: self.id,
            label: self.label,
            neighbors: self.neighbors.to_vec(),
        }
    }
}

/// An owned vertex record: the payload of a `Cloud.Load` reply shipped over
/// the transport. Unlike [`Cell`], it borrows nothing from the owning
/// partition, so a machine can keep it across supersteps and the sender's
/// partition stays private.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellBuf {
    /// The vertex this cell describes.
    pub id: VertexId,
    /// The vertex's label.
    pub label: LabelId,
    /// Global IDs of all neighbors, sorted ascending.
    pub neighbors: Vec<VertexId>,
}

impl CellBuf {
    /// Payload size of this cell on the wire, in bytes: the vertex id, the
    /// label, and one id per neighbor.
    pub fn wire_bytes(&self) -> u64 {
        8 + 4 + self.neighbors.len() as u64 * 8
    }
}

/// Per-partition resident bytes, broken down by storage component. Summed
/// over the cloud this is the "index size + graph size" the paper's Table 1
/// reports; the breakdown is what the `storage` experiment CSV emits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBytes {
    /// Adjacency structure (offsets + neighbor entries, plain or encoded).
    pub adjacency: usize,
    /// Per-vertex label array.
    pub labels: usize,
    /// Id mapping both ways: the local-index → global-id array plus the
    /// global-id → local-index map (`HashMap` or open-addressed slots).
    pub id_map: usize,
    /// The label → vertex-id string index.
    pub postings: usize,
    /// Per-vertex neighborhood-label signatures (0 when pruning is off).
    pub signatures: usize,
    /// The label-pair selectivity table.
    pub pair_table: usize,
}

impl StorageBytes {
    /// Total resident bytes across all components.
    pub fn total(&self) -> usize {
        self.adjacency
            + self.labels
            + self.id_map
            + self.postings
            + self.signatures
            + self.pair_table
    }
}

impl std::ops::AddAssign for StorageBytes {
    fn add_assign(&mut self, rhs: StorageBytes) {
        self.adjacency += rhs.adjacency;
        self.labels += rhs.labels;
        self.id_map += rhs.id_map;
        self.postings += rhs.postings;
        self.signatures += rhs.signatures;
        self.pair_table += rhs.pair_table;
    }
}

/// Tier-dispatched adjacency storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Adjacency {
    Plain(Csr),
    Compact(CompactCsr),
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency::Plain(Csr::default())
    }
}

impl Adjacency {
    #[inline]
    fn neighbors(&self, local: usize) -> Neighbors<'_> {
        match self {
            Adjacency::Plain(c) => Neighbors::Slice(c.neighbors(local)),
            Adjacency::Compact(c) => c.neighbors(local),
        }
    }

    #[inline]
    fn degree(&self, local: usize) -> usize {
        match self {
            Adjacency::Plain(c) => c.degree(local),
            Adjacency::Compact(c) => c.degree(local),
        }
    }

    #[inline]
    fn has_neighbor(&self, local: usize, target: VertexId) -> bool {
        match self {
            Adjacency::Plain(c) => c.has_neighbor(local, target),
            Adjacency::Compact(c) => c.has_neighbor(local, target),
        }
    }

    fn num_entries(&self) -> usize {
        match self {
            Adjacency::Plain(c) => c.num_entries(),
            Adjacency::Compact(c) => c.num_entries(),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Adjacency::Plain(c) => c.memory_bytes(),
            Adjacency::Compact(c) => c.memory_bytes(),
        }
    }

    fn tier(&self) -> StorageTier {
        match self {
            Adjacency::Plain(_) => StorageTier::Plain,
            Adjacency::Compact(_) => StorageTier::Compact,
        }
    }
}

/// Tier-dispatched global-id → local-index map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum IdMap {
    Plain(HashMap<VertexId, u32>),
    Compact(CompactIdMap),
}

impl Default for IdMap {
    fn default() -> Self {
        IdMap::Plain(HashMap::new())
    }
}

impl IdMap {
    pub(crate) fn build(tier: StorageTier, ids: &[VertexId]) -> Self {
        match tier {
            StorageTier::Plain => IdMap::Plain(
                ids.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i as u32))
                    .collect(),
            ),
            StorageTier::Compact => IdMap::Compact(CompactIdMap::build(ids)),
        }
    }

    #[inline]
    pub(crate) fn get(&self, ids: &[VertexId], id: VertexId) -> Option<u32> {
        match self {
            IdMap::Plain(m) => m.get(&id).copied(),
            IdMap::Compact(m) => m.get(ids, id),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            // Key + value + per-entry bucket overhead, the honest estimate
            // the plain tier always used.
            IdMap::Plain(m) => {
                m.len() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>() + 8)
            }
            IdMap::Compact(m) => m.memory_bytes(),
        }
    }
}

/// Tier-dispatched label postings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum LabelPostings {
    Plain(LabelIndex),
    Compact(CompactLabelIndex),
}

impl Default for LabelPostings {
    fn default() -> Self {
        LabelPostings::Plain(LabelIndex::default())
    }
}

impl LabelPostings {
    pub(crate) fn build(
        tier: StorageTier,
        ids: &[VertexId],
        labels: &[LabelId],
        num_labels: usize,
    ) -> Self {
        match tier {
            StorageTier::Plain => LabelPostings::Plain(LabelIndex::build(
                ids.iter().copied().zip(labels.iter().copied()),
                num_labels,
            )),
            StorageTier::Compact => {
                LabelPostings::Compact(CompactLabelIndex::build(labels, num_labels))
            }
        }
    }

    #[inline]
    fn get<'a>(&'a self, label: LabelId, ids: &'a [VertexId]) -> Postings<'a> {
        match self {
            LabelPostings::Plain(idx) => Postings::Slice(idx.get(label)),
            LabelPostings::Compact(idx) => idx.get(label, ids),
        }
    }

    #[inline]
    fn frequency(&self, label: LabelId) -> usize {
        match self {
            LabelPostings::Plain(idx) => idx.frequency(label),
            LabelPostings::Compact(idx) => idx.frequency(label),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            LabelPostings::Plain(idx) => idx.memory_bytes(),
            LabelPostings::Compact(idx) => idx.memory_bytes(),
        }
    }
}

/// The immutable storage of one logical machine: vertex ids, labels,
/// adjacency and indexes in their tiered physical representation. Shared via
/// `Arc` between the partitions of successive epoch snapshots; never mutated
/// after construction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PartitionBase {
    /// Global IDs of local vertices, in local-index order (ascending id).
    vertex_ids: Vec<VertexId>,
    /// Label of each local vertex, parallel to `vertex_ids`.
    labels: Vec<LabelId>,
    /// Global → local index map.
    id_map: IdMap,
    /// Adjacency of local vertices.
    adjacency: Adjacency,
    /// Label → local vertex IDs.
    postings: LabelPostings,
    /// Per-vertex neighborhood-label signatures, when built with label
    /// lookup (`None` disables signature pruning for this partition).
    neighbor_index: Option<NeighborLabelIndex>,
    /// Adjacency-entry counts by endpoint-label pair.
    pair_table: LabelPairTable,
}

impl PartitionBase {
    /// Canonicalizes inputs (ascending global id) and builds the tiered
    /// storage. See [`Partition::new_with_tier`].
    fn new_with_tier(
        mut vertex_ids: Vec<VertexId>,
        mut labels: Vec<LabelId>,
        mut adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
        tier: StorageTier,
    ) -> Self {
        assert_eq!(vertex_ids.len(), labels.len());
        assert_eq!(vertex_ids.len(), adjacency_lists.len());
        if !vertex_ids.windows(2).all(|w| w[0] < w[1]) {
            let mut order: Vec<usize> = (0..vertex_ids.len()).collect();
            order.sort_unstable_by_key(|&i| vertex_ids[i]);
            vertex_ids = order.iter().map(|&i| vertex_ids[i]).collect();
            labels = order.iter().map(|&i| labels[i]).collect();
            let mut reordered: Vec<Vec<VertexId>> = Vec::with_capacity(order.len());
            for &i in &order {
                reordered.push(std::mem::take(&mut adjacency_lists[i]));
            }
            adjacency_lists = reordered;
        }
        let id_map = IdMap::build(tier, &vertex_ids);
        let postings = LabelPostings::build(tier, &vertex_ids, &labels, num_labels);
        let adjacency = match tier {
            StorageTier::Plain => Adjacency::Plain(Csr::from_lists(adjacency_lists)),
            StorageTier::Compact => Adjacency::Compact(CompactCsr::from_lists(adjacency_lists)),
        };
        PartitionBase {
            vertex_ids,
            labels,
            id_map,
            adjacency,
            postings,
            neighbor_index: None,
            pair_table: LabelPairTable::default(),
        }
    }

    #[inline]
    fn local_of(&self, id: VertexId) -> Option<usize> {
        self.id_map.get(&self.vertex_ids, id).map(|l| l as usize)
    }

    fn load(&self, id: VertexId) -> Option<Cell<'_>> {
        let local = self.local_of(id)?;
        Some(Cell {
            id,
            label: self.labels[local],
            neighbors: self.adjacency.neighbors(local),
        })
    }

    fn neighbors_of(&self, id: VertexId) -> Option<Neighbors<'_>> {
        self.local_of(id).map(|l| self.adjacency.neighbors(l))
    }

    fn label_of(&self, id: VertexId) -> Option<LabelId> {
        self.local_of(id).map(|l| self.labels[l])
    }

    fn degree_of(&self, id: VertexId) -> Option<usize> {
        self.local_of(id).map(|l| self.adjacency.degree(l))
    }

    fn owns(&self, id: VertexId) -> bool {
        self.local_of(id).is_some()
    }

    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        match self.local_of(from) {
            Some(local) => self.adjacency.has_neighbor(local, to),
            None => false,
        }
    }

    fn signature_of(&self, id: VertexId) -> Option<u64> {
        let index = self.neighbor_index.as_ref()?;
        let local = self.local_of(id)?;
        index.signature(local)
    }
}

/// A materialized delta laid over an immutable [`PartitionBase`] by the
/// epoch manager (`crate::epoch`). Rather than merge lazily at read time,
/// the overlay stores the **fully merged** view of every touched vertex and
/// label: reads stay a single map probe plus base fallthrough, no per-read
/// merge iterators, and the compact tier's encodings are never touched.
///
/// Invariants (maintained by the epoch manager):
/// * `added` is sorted ascending and disjoint from the base's vertex ids.
/// * Every added vertex has entries in `labels` and `adj` (and `signatures`
///   when the base carries a pruning index).
/// * Any vertex whose merged adjacency differs from the base appears in
///   `adj` with its **complete** sorted neighbor list; in particular, if a
///   deleted vertex was a neighbor of `u`, then `u` is in `adj`.
/// * Any label whose merged posting list differs from the base appears in
///   `postings` with its complete sorted id list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct PartitionOverlay {
    /// Base vertices removed in this epoch range.
    pub(crate) deleted: HashSet<VertexId>,
    /// Vertices added since the base was sealed, sorted ascending.
    pub(crate) added: Vec<VertexId>,
    /// Labels of added and relabeled vertices.
    pub(crate) labels: HashMap<VertexId, LabelId>,
    /// Complete merged adjacency of every adjacency-touched vertex.
    pub(crate) adj: HashMap<VertexId, Vec<VertexId>>,
    /// Complete merged posting list of every touched label.
    pub(crate) postings: HashMap<LabelId, Vec<VertexId>>,
    /// Exact recomputed signatures of signature-touched vertices (only
    /// populated when the base carries a pruning index).
    pub(crate) signatures: HashMap<VertexId, u64>,
    /// Merged vertex count for this machine.
    pub(crate) num_vertices: usize,
    /// Merged adjacency-entry count for this machine.
    pub(crate) num_edge_entries: usize,
}

impl PartitionOverlay {
    /// Rough resident bytes of the overlay's maps (hash overhead estimated
    /// at 16 bytes/entry, matching the plain id-map estimate).
    fn approx_bytes(&self) -> (usize, usize, usize, usize, usize) {
        let adj = self
            .adj
            .values()
            .map(|v| 16 + v.len() * std::mem::size_of::<VertexId>())
            .sum::<usize>();
        let labels = self.labels.len() * 24;
        let postings = self
            .postings
            .values()
            .map(|v| 16 + v.len() * std::mem::size_of::<VertexId>())
            .sum::<usize>();
        let signatures = self.signatures.len() * 24;
        let id_map = (self.added.len() + self.deleted.len()) * 16;
        (adj, labels, postings, signatures, id_map)
    }
}

/// The data owned by a single logical machine: an `Arc`-shared immutable
/// base, plus the epoch manager's delta overlay when the graph has mutated
/// since the base was sealed. Cloning a partition clones two `Arc`s, so
/// epoch snapshots share all untouched storage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Partition {
    base: Arc<PartitionBase>,
    overlay: Option<Arc<PartitionOverlay>>,
}

/// Merge-iterates base vertex ids (minus deleted) with overlay-added ids;
/// both runs are sorted ascending and disjoint, so the merged run is too.
struct MergedVertexIter<'a> {
    base: std::iter::Peekable<std::slice::Iter<'a, VertexId>>,
    added: std::iter::Peekable<std::slice::Iter<'a, VertexId>>,
    deleted: Option<&'a HashSet<VertexId>>,
}

impl Iterator for MergedVertexIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            let take_base = match (self.base.peek(), self.added.peek()) {
                (Some(&&b), Some(&&a)) => b < a,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            if take_base {
                let b = *self.base.next().expect("peeked");
                if self.deleted.is_some_and(|d| d.contains(&b)) {
                    continue;
                }
                return Some(b);
            }
            return Some(*self.added.next().expect("peeked"));
        }
    }
}

/// Cell iteration: local-index order on a static partition (no id-map
/// probes), merged-id order plus `load` on an overlaid one. The two orders
/// coincide — local-index order is ascending-id order.
enum CellIter<'a> {
    Base {
        base: &'a PartitionBase,
        range: std::ops::Range<usize>,
    },
    Overlay {
        partition: &'a Partition,
        ids: MergedVertexIter<'a>,
    },
}

impl<'a> Iterator for CellIter<'a> {
    type Item = Cell<'a>;

    fn next(&mut self) -> Option<Cell<'a>> {
        match self {
            CellIter::Base { base, range } => {
                let local = range.next()?;
                Some(Cell {
                    id: base.vertex_ids[local],
                    label: base.labels[local],
                    neighbors: base.adjacency.neighbors(local),
                })
            }
            CellIter::Overlay { partition, ids } => {
                let id = ids.next()?;
                Some(
                    partition
                        .load(id)
                        .expect("merged vertex id must load from overlay or base"),
                )
            }
        }
    }
}

impl Partition {
    /// Assembles a partition from parallel vectors of vertex IDs, labels and
    /// adjacency lists, in the process-default [`StorageTier`]. The three
    /// inputs must have the same length.
    pub fn new(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
    ) -> Self {
        Self::new_with_tier(
            vertex_ids,
            labels,
            adjacency_lists,
            num_labels,
            StorageTier::from_env(),
        )
    }

    /// [`Partition::new`] with an explicit storage tier.
    ///
    /// Local indices are canonicalized to ascending global-id order (a no-op
    /// for the builder, which pre-sorts): the compact posting lists index by
    /// local position and rely on local order agreeing with id order to
    /// return sorted ids, and keeping both tiers in one canonical order
    /// keeps them bit-identical everywhere.
    pub fn new_with_tier(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
        tier: StorageTier,
    ) -> Self {
        Partition {
            base: Arc::new(PartitionBase::new_with_tier(
                vertex_ids,
                labels,
                adjacency_lists,
                num_labels,
                tier,
            )),
            overlay: None,
        }
    }

    /// Like [`Partition::new`], but also builds the candidate-pruning
    /// indexes ([`NeighborLabelIndex`], [`LabelPairTable`]) in the same
    /// construction pass. `neighbor_label` resolves the label of *any*
    /// vertex (neighbors may live on other machines); a neighbor whose label
    /// it cannot resolve contributes the all-ones [`FULL_SIGNATURE`] — the
    /// signature over-approximates, so an unknown label must claim every
    /// bit to keep pruning sound — and is left out of the pair table.
    pub fn with_neighbor_labels(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
        neighbor_label: impl Fn(VertexId) -> Option<LabelId>,
    ) -> Self {
        Self::with_neighbor_labels_tier(
            vertex_ids,
            labels,
            adjacency_lists,
            num_labels,
            StorageTier::from_env(),
            neighbor_label,
        )
    }

    /// [`Partition::with_neighbor_labels`] with an explicit storage tier.
    pub fn with_neighbor_labels_tier(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
        tier: StorageTier,
        neighbor_label: impl Fn(VertexId) -> Option<LabelId>,
    ) -> Self {
        let mut base =
            PartitionBase::new_with_tier(vertex_ids, labels, adjacency_lists, num_labels, tier);
        let mut sigs = Vec::with_capacity(base.vertex_ids.len());
        let mut pair_table = LabelPairTable::new();
        for local in 0..base.vertex_ids.len() {
            let own_label = base.labels[local];
            let mut sig = 0u64;
            for m in base.adjacency.neighbors(local) {
                match neighbor_label(m) {
                    Some(l) => {
                        sig |= crate::neighbor_index::label_bit(l);
                        pair_table.record(own_label, l);
                    }
                    None => sig = FULL_SIGNATURE,
                }
            }
            sigs.push(sig);
        }
        base.neighbor_index = Some(NeighborLabelIndex::from_signatures(sigs));
        base.pair_table = pair_table;
        Partition {
            base: Arc::new(base),
            overlay: None,
        }
    }

    /// Assembles a partition from components the streaming bulk loader has
    /// already built in final form (ids sorted ascending, adjacency encoded,
    /// indexes filled). Crate-internal: invariants are the loader's job.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_encoded_parts(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        id_map: IdMap,
        adjacency: Adjacency,
        postings: LabelPostings,
        neighbor_index: Option<NeighborLabelIndex>,
        pair_table: LabelPairTable,
    ) -> Self {
        debug_assert!(vertex_ids.windows(2).all(|w| w[0] < w[1]));
        Partition {
            base: Arc::new(PartitionBase {
                vertex_ids,
                labels,
                id_map,
                adjacency,
                postings,
                neighbor_index,
                pair_table,
            }),
            overlay: None,
        }
    }

    /// A partition sharing this one's base with `overlay` laid over it
    /// (`None` drops any existing overlay). Crate-internal: overlay
    /// invariants are the epoch manager's job.
    pub(crate) fn with_overlay(&self, overlay: Option<PartitionOverlay>) -> Partition {
        Partition {
            base: Arc::clone(&self.base),
            overlay: overlay.map(Arc::new),
        }
    }

    /// This partition's overlay, when the epoch manager has laid one over
    /// the base (used to build the next cumulative overlay).
    pub(crate) fn overlay(&self) -> Option<&PartitionOverlay> {
        self.overlay.as_deref()
    }

    /// Whether this partition carries an unmerged delta overlay.
    pub fn has_overlay(&self) -> bool {
        self.overlay.is_some()
    }

    /// The storage tier this partition's adjacency is stored in.
    pub fn storage_tier(&self) -> StorageTier {
        self.base.adjacency.tier()
    }

    /// Number of vertices owned by this machine.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        match self.overlay.as_deref() {
            Some(o) => o.num_vertices,
            None => self.base.vertex_ids.len(),
        }
    }

    /// Number of adjacency entries stored locally.
    #[inline]
    pub fn num_edge_entries(&self) -> usize {
        match self.overlay.as_deref() {
            Some(o) => o.num_edge_entries,
            None => self.base.adjacency.num_entries(),
        }
    }

    /// Whether this machine owns vertex `id`.
    #[inline]
    pub fn owns(&self, id: VertexId) -> bool {
        match self.overlay.as_deref() {
            None => self.base.owns(id),
            Some(o) => {
                !o.deleted.contains(&id) && (o.labels.contains_key(&id) || self.base.owns(id))
            }
        }
    }

    /// Loads the cell of a locally-owned vertex. Returns `None` when the
    /// vertex is not owned by this machine.
    pub fn load(&self, id: VertexId) -> Option<Cell<'_>> {
        let Some(o) = self.overlay.as_deref() else {
            return self.base.load(id);
        };
        if o.deleted.contains(&id) {
            return None;
        }
        let label = match o.labels.get(&id) {
            Some(&l) => l,
            None => self.base.label_of(id)?,
        };
        let neighbors = match o.adj.get(&id) {
            Some(list) => Neighbors::Slice(list),
            None => self.base.neighbors_of(id)?,
        };
        Some(Cell {
            id,
            label,
            neighbors,
        })
    }

    /// Label of a locally-owned vertex.
    pub fn label_of(&self, id: VertexId) -> Option<LabelId> {
        match self.overlay.as_deref() {
            None => self.base.label_of(id),
            Some(o) => {
                if o.deleted.contains(&id) {
                    return None;
                }
                o.labels
                    .get(&id)
                    .copied()
                    .or_else(|| self.base.label_of(id))
            }
        }
    }

    /// Degree of a locally-owned vertex.
    pub fn degree_of(&self, id: VertexId) -> Option<usize> {
        match self.overlay.as_deref() {
            None => self.base.degree_of(id),
            Some(o) => {
                if o.deleted.contains(&id) {
                    return None;
                }
                match o.adj.get(&id) {
                    Some(list) => Some(list.len()),
                    None => self.base.degree_of(id),
                }
            }
        }
    }

    /// Local vertices with the given label (the paper's `Index.getID`,
    /// restricted to this machine), sorted ascending. The [`Postings`] view
    /// decodes lazily on the compact tier; labels the overlay touched hand
    /// out their pre-merged list.
    #[inline]
    pub fn vertices_with_label(&self, label: LabelId) -> Postings<'_> {
        match self.overlay.as_deref() {
            None => self.base.postings.get(label, &self.base.vertex_ids),
            Some(o) => match o.postings.get(&label) {
                Some(list) => Postings::Slice(list),
                None => self.base.postings.get(label, &self.base.vertex_ids),
            },
        }
    }

    /// Number of local vertices with the given label.
    #[inline]
    pub fn label_frequency(&self, label: LabelId) -> usize {
        match self.overlay.as_deref() {
            None => self.base.postings.frequency(label),
            Some(o) => match o.postings.get(&label) {
                Some(list) => list.len(),
                None => self.base.postings.frequency(label),
            },
        }
    }

    /// Whether a locally-owned vertex has a given neighbor.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        match self.overlay.as_deref() {
            None => self.base.has_edge(from, to),
            Some(o) => {
                if o.deleted.contains(&from) {
                    return false;
                }
                match o.adj.get(&from) {
                    Some(list) => list.binary_search(&to).is_ok(),
                    // A deleted `to` forces `from` into `adj` (overlay
                    // invariant), so base fallthrough never sees a stale
                    // edge to a removed vertex.
                    None => self.base.has_edge(from, to),
                }
            }
        }
    }

    /// Iterates over all locally-owned vertices in ascending-id order.
    pub fn iter_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        let (added, deleted) = match self.overlay.as_deref() {
            Some(o) => (o.added.as_slice(), Some(&o.deleted)),
            None => (&[][..], None),
        };
        MergedVertexIter {
            base: self.base.vertex_ids.iter().peekable(),
            added: added.iter().peekable(),
            deleted,
        }
    }

    /// Iterates over `(vertex, label, neighbors)` of every local vertex.
    pub fn iter_cells(&self) -> impl Iterator<Item = Cell<'_>> {
        match self.overlay.as_deref() {
            None => CellIter::Base {
                base: &self.base,
                range: 0..self.base.vertex_ids.len(),
            },
            Some(o) => CellIter::Overlay {
                partition: self,
                ids: MergedVertexIter {
                    base: self.base.vertex_ids.iter().peekable(),
                    added: o.added.iter().peekable(),
                    deleted: Some(&o.deleted),
                },
            },
        }
    }

    /// The neighborhood-label signature of a locally-owned vertex, or
    /// `None` when the vertex is not owned here or the partition was built
    /// without the pruning index.
    #[inline]
    pub fn signature_of(&self, id: VertexId) -> Option<u64> {
        match self.overlay.as_deref() {
            None => self.base.signature_of(id),
            Some(o) => {
                if o.deleted.contains(&id) {
                    return None;
                }
                o.signatures
                    .get(&id)
                    .copied()
                    .or_else(|| self.base.signature_of(id))
            }
        }
    }

    /// Signature width in bits when the pruning index is present, `None`
    /// otherwise. Part of the cloud fingerprint: caches keyed on a cloud
    /// must distinguish index configurations.
    pub fn signature_bits(&self) -> Option<u32> {
        self.base
            .neighbor_index
            .as_ref()
            .map(|_| crate::neighbor_index::SIGNATURE_BITS as u32)
    }

    /// This partition's adjacency-entry counts by endpoint-label pair.
    ///
    /// The pair table is a **cost heuristic**, not a correctness surface:
    /// under an overlay it reflects the sealed base (a sound-enough
    /// estimate for join ordering) and is rebuilt exactly at
    /// `seal_epoch()`.
    pub fn pair_table(&self) -> &LabelPairTable {
        &self.base.pair_table
    }

    /// Resident bytes of this partition, broken down by storage component.
    /// An overlay's maps are charged to the components they shadow.
    pub fn storage_bytes(&self) -> StorageBytes {
        let base = &self.base;
        let mut bytes = StorageBytes {
            adjacency: base.adjacency.memory_bytes(),
            labels: base.labels.len() * std::mem::size_of::<LabelId>(),
            id_map: base.vertex_ids.len() * std::mem::size_of::<VertexId>()
                + base.id_map.memory_bytes(),
            postings: base.postings.memory_bytes(),
            signatures: base
                .neighbor_index
                .as_ref()
                .map_or(0, NeighborLabelIndex::memory_bytes),
            pair_table: base.pair_table.memory_bytes(),
        };
        if let Some(o) = self.overlay.as_deref() {
            let (adj, labels, postings, signatures, id_map) = o.approx_bytes();
            bytes.adjacency += adj;
            bytes.labels += labels;
            bytes.postings += postings;
            bytes.signatures += signatures;
            bytes.id_map += id_map;
        }
        bytes
    }

    /// Approximate memory footprint of this partition in bytes (the total
    /// of [`Partition::storage_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.storage_bytes().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    fn sample_partition_tier(tier: StorageTier) -> Partition {
        // vertices 10 (label 0), 20 (label 1), 30 (label 0)
        Partition::new_with_tier(
            vec![v(10), v(20), v(30)],
            vec![l(0), l(1), l(0)],
            vec![vec![v(20), v(99)], vec![v(10)], vec![]],
            2,
            tier,
        )
    }

    fn sample_partition() -> Partition {
        sample_partition_tier(StorageTier::from_env())
    }

    const TIERS: [StorageTier; 2] = [StorageTier::Plain, StorageTier::Compact];

    #[test]
    fn load_local_cell() {
        for tier in TIERS {
            let p = sample_partition_tier(tier);
            let cell = p.load(v(10)).unwrap();
            assert_eq!(cell.label, l(0));
            assert_eq!(cell.neighbors, &[v(20), v(99)]);
            assert!(p.load(v(99)).is_none());
        }
    }

    #[test]
    fn label_lookup() {
        for tier in TIERS {
            let p = sample_partition_tier(tier);
            assert_eq!(p.vertices_with_label(l(0)), &[v(10), v(30)]);
            assert_eq!(p.vertices_with_label(l(1)), &[v(20)]);
            assert_eq!(p.label_frequency(l(0)), 2);
            assert_eq!(p.label_of(v(20)), Some(l(1)));
            assert_eq!(p.label_of(v(77)), None);
        }
    }

    #[test]
    fn edge_and_degree_queries() {
        for tier in TIERS {
            let p = sample_partition_tier(tier);
            assert!(p.has_edge(v(10), v(99)));
            assert!(!p.has_edge(v(10), v(30)));
            assert!(!p.has_edge(v(77), v(10)));
            assert_eq!(p.degree_of(v(10)), Some(2));
            assert_eq!(p.degree_of(v(30)), Some(0));
        }
    }

    #[test]
    fn ownership_and_iteration() {
        let p = sample_partition();
        assert!(p.owns(v(10)));
        assert!(!p.owns(v(11)));
        let ids: Vec<_> = p.iter_vertices().collect();
        assert_eq!(ids, vec![v(10), v(20), v(30)]);
        assert_eq!(p.iter_cells().count(), 3);
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edge_entries(), 3);
    }

    #[test]
    fn unsorted_input_is_canonicalized() {
        // Both tiers canonicalize local order to ascending global id, so a
        // caller that presents vertices out of order still gets sorted
        // postings and identical iteration order on either tier.
        for tier in TIERS {
            let p = Partition::new_with_tier(
                vec![v(30), v(10), v(20)],
                vec![l(0), l(0), l(1)],
                vec![vec![], vec![v(20), v(99)], vec![v(10)]],
                2,
                tier,
            );
            let ids: Vec<_> = p.iter_vertices().collect();
            assert_eq!(ids, vec![v(10), v(20), v(30)]);
            assert_eq!(p.vertices_with_label(l(0)), &[v(10), v(30)]);
            assert_eq!(p.load(v(10)).unwrap().neighbors, &[v(20), v(99)]);
            assert_eq!(p.load(v(30)).unwrap().neighbors.len(), 0);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        Partition::new(vec![v(1)], vec![l(0), l(1)], vec![vec![]], 2);
    }

    #[test]
    fn plain_partition_has_no_pruning_index() {
        let p = sample_partition();
        assert_eq!(p.signature_of(v(10)), None);
        assert_eq!(p.signature_bits(), None);
        assert_eq!(p.pair_table().total_entries(), 0);
    }

    #[test]
    fn storage_tier_is_reported() {
        assert_eq!(
            sample_partition_tier(StorageTier::Plain).storage_tier(),
            StorageTier::Plain
        );
        assert_eq!(
            sample_partition_tier(StorageTier::Compact).storage_tier(),
            StorageTier::Compact
        );
    }

    #[test]
    fn storage_bytes_breakdown_sums_to_total() {
        for tier in TIERS {
            let p = sample_partition_tier(tier);
            let b = p.storage_bytes();
            assert_eq!(b.total(), p.memory_bytes());
            assert!(b.adjacency > 0);
            assert!(b.labels > 0);
            assert!(b.id_map > 0);
            assert_eq!(b.signatures, 0, "no pruning index was built");
        }
    }

    #[test]
    fn compact_tier_shrinks_id_map_at_scale() {
        let n = 4096u64;
        let ids: Vec<VertexId> = (0..n).map(|i| v(i * 3)).collect();
        let labels = vec![l(0); n as usize];
        let adj = vec![Vec::new(); n as usize];
        let plain = Partition::new_with_tier(
            ids.clone(),
            labels.clone(),
            adj.clone(),
            1,
            StorageTier::Plain,
        );
        let compact = Partition::new_with_tier(ids, labels, adj, 1, StorageTier::Compact);
        let plain_map = plain.storage_bytes().id_map - n as usize * 8;
        let compact_map = compact.storage_bytes().id_map - n as usize * 8;
        assert!(
            plain_map >= compact_map * 2,
            "id map: plain {plain_map} vs compact {compact_map}"
        );
    }

    #[test]
    fn neighbor_labels_build_signatures_and_pair_table() {
        use crate::neighbor_index::{label_bit, FULL_SIGNATURE};
        for tier in TIERS {
            // v(99) is a phantom remote neighbor the lookup cannot resolve:
            // its owner's signature must widen to FULL to stay sound.
            let p = Partition::with_neighbor_labels_tier(
                vec![v(10), v(20), v(30)],
                vec![l(0), l(1), l(0)],
                vec![vec![v(20), v(99)], vec![v(10)], vec![]],
                2,
                tier,
                |id| match id {
                    VertexId(10) | VertexId(30) => Some(l(0)),
                    VertexId(20) => Some(l(1)),
                    _ => None,
                },
            );
            assert_eq!(p.signature_of(v(10)), Some(FULL_SIGNATURE));
            assert_eq!(p.signature_of(v(20)), Some(label_bit(l(0))));
            assert_eq!(p.signature_of(v(30)), Some(0), "isolated vertex");
            assert_eq!(p.signature_of(v(77)), None, "unowned vertex");
            assert_eq!(p.signature_bits(), Some(64));
            // Pair table counts only resolvable endpoints: 10-20 seen from
            // both sides; 10-99 skipped.
            assert_eq!(p.pair_table().count(l(0), l(1)), 2);
            assert_eq!(p.pair_table().total_entries(), 2);
            // The indexes are part of the partition's memory accounting.
            let plain = sample_partition_tier(tier);
            assert!(p.memory_bytes() > plain.memory_bytes());
        }
    }

    #[test]
    fn tiers_are_observationally_identical() {
        let a = sample_partition_tier(StorageTier::Plain);
        let b = sample_partition_tier(StorageTier::Compact);
        for id in [v(10), v(20), v(30)] {
            assert_eq!(a.load(id), b.load(id));
            assert_eq!(a.degree_of(id), b.degree_of(id));
        }
        for lab in [l(0), l(1)] {
            assert_eq!(
                a.vertices_with_label(lab).to_vec(),
                b.vertices_with_label(lab).to_vec()
            );
            assert_eq!(a.label_frequency(lab), b.label_frequency(lab));
        }
        // ... at a strictly smaller footprint for the compact tier.
        assert!(b.storage_bytes().id_map < a.storage_bytes().id_map);
    }

    /// A hand-built overlay: delete v(30), add v(40) with label 1 and edge
    /// 20–40, so the merged view is {10: l0 ~ 20,99}, {20: l1 ~ 10,40},
    /// {40: l1 ~ 20}.
    fn overlaid_partition(tier: StorageTier) -> Partition {
        let base = sample_partition_tier(tier);
        let mut overlay = PartitionOverlay {
            num_vertices: 3,
            num_edge_entries: 4,
            ..PartitionOverlay::default()
        };
        overlay.deleted.insert(v(30));
        overlay.added.push(v(40));
        overlay.labels.insert(v(40), l(1));
        overlay.adj.insert(v(40), vec![v(20)]);
        overlay.adj.insert(v(20), vec![v(10), v(40)]);
        overlay.postings.insert(l(0), vec![v(10)]);
        overlay.postings.insert(l(1), vec![v(20), v(40)]);
        base.with_overlay(Some(overlay))
    }

    #[test]
    fn overlay_shadows_base_reads_on_both_tiers() {
        for tier in TIERS {
            let p = overlaid_partition(tier);
            assert!(p.has_overlay());
            // Deleted vertex vanishes from every surface.
            assert!(!p.owns(v(30)));
            assert!(p.load(v(30)).is_none());
            assert_eq!(p.label_of(v(30)), None);
            assert_eq!(p.degree_of(v(30)), None);
            // Added vertex is fully readable.
            assert!(p.owns(v(40)));
            assert_eq!(p.label_of(v(40)), Some(l(1)));
            assert_eq!(p.load(v(40)).unwrap().neighbors, &[v(20)]);
            // Touched vertex serves the merged adjacency; untouched vertex
            // falls through to the base.
            assert_eq!(p.load(v(20)).unwrap().neighbors, &[v(10), v(40)]);
            assert!(p.has_edge(v(20), v(40)));
            assert!(!p.has_edge(v(40), v(99)));
            assert_eq!(p.load(v(10)).unwrap().neighbors, &[v(20), v(99)]);
            // Postings and counts reflect the merge.
            assert_eq!(p.vertices_with_label(l(0)).to_vec(), vec![v(10)]);
            assert_eq!(p.vertices_with_label(l(1)).to_vec(), vec![v(20), v(40)]);
            assert_eq!(p.label_frequency(l(1)), 2);
            assert_eq!(p.num_vertices(), 3);
            assert_eq!(p.num_edge_entries(), 4);
            // Iteration merges deleted-out base ids with added ids, sorted.
            let ids: Vec<_> = p.iter_vertices().collect();
            assert_eq!(ids, vec![v(10), v(20), v(40)]);
            let cells: Vec<_> = p.iter_cells().map(|c| c.id).collect();
            assert_eq!(cells, vec![v(10), v(20), v(40)]);
        }
    }

    #[test]
    fn overlay_shares_base_storage() {
        let base = sample_partition();
        let overlaid = base.with_overlay(Some(PartitionOverlay {
            num_vertices: base.num_vertices(),
            num_edge_entries: base.num_edge_entries(),
            ..PartitionOverlay::default()
        }));
        assert!(Arc::ptr_eq(&base.base, &overlaid.base));
        // Dropping the overlay again restores the exact base view.
        let restored = overlaid.with_overlay(None);
        assert!(!restored.has_overlay());
        assert_eq!(
            restored.iter_vertices().collect::<Vec<_>>(),
            base.iter_vertices().collect::<Vec<_>>()
        );
    }
}
