//! One logical machine of the memory cloud: the vertices assigned to it,
//! their labels, their adjacency (CSR), and the local label index.

use crate::csr::Csr;
use crate::ids::{LabelId, VertexId};
use crate::label_index::LabelIndex;
use crate::neighbor_index::{LabelPairTable, NeighborLabelIndex, FULL_SIGNATURE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A vertex record as returned by `Cloud.Load`: the vertex's label and the
/// IDs of its neighbors (which may live on any machine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell<'a> {
    /// The vertex this cell describes.
    pub id: VertexId,
    /// The vertex's label.
    pub label: LabelId,
    /// Global IDs of all neighbors, sorted ascending.
    pub neighbors: &'a [VertexId],
}

impl Cell<'_> {
    /// Copies this cell into an owned [`CellBuf`], detaching it from the
    /// partition it borrows. This is what crosses machine boundaries in a
    /// [`crate::transport::Transport`] reply: the requester receives a copy
    /// of the cell, never a borrow of the remote partition.
    pub fn to_owned(&self) -> CellBuf {
        CellBuf {
            id: self.id,
            label: self.label,
            neighbors: self.neighbors.to_vec(),
        }
    }
}

/// An owned vertex record: the payload of a `Cloud.Load` reply shipped over
/// the transport. Unlike [`Cell`], it borrows nothing from the owning
/// partition, so a machine can keep it across supersteps and the sender's
/// partition stays private.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellBuf {
    /// The vertex this cell describes.
    pub id: VertexId,
    /// The vertex's label.
    pub label: LabelId,
    /// Global IDs of all neighbors, sorted ascending.
    pub neighbors: Vec<VertexId>,
}

impl CellBuf {
    /// Payload size of this cell on the wire, in bytes: the vertex id, the
    /// label, and one id per neighbor.
    pub fn wire_bytes(&self) -> u64 {
        8 + 4 + self.neighbors.len() as u64 * 8
    }
}

/// The data owned by a single logical machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Partition {
    /// Global IDs of local vertices, in local-index order.
    vertex_ids: Vec<VertexId>,
    /// Label of each local vertex, parallel to `vertex_ids`.
    labels: Vec<LabelId>,
    /// Global → local index map.
    local_of: HashMap<VertexId, u32>,
    /// Adjacency of local vertices.
    adjacency: Csr,
    /// Label → local vertex IDs.
    label_index: LabelIndex,
    /// Per-vertex neighborhood-label signatures, when built with label
    /// lookup (`None` disables signature pruning for this partition).
    neighbor_index: Option<NeighborLabelIndex>,
    /// Adjacency-entry counts by endpoint-label pair.
    pair_table: LabelPairTable,
}

impl Partition {
    /// Assembles a partition from parallel vectors of vertex IDs, labels and
    /// adjacency lists. The three inputs must have the same length.
    pub fn new(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
    ) -> Self {
        assert_eq!(vertex_ids.len(), labels.len());
        assert_eq!(vertex_ids.len(), adjacency_lists.len());
        let local_of: HashMap<VertexId, u32> = vertex_ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let label_index = LabelIndex::build(
            vertex_ids.iter().copied().zip(labels.iter().copied()),
            num_labels,
        );
        let adjacency = Csr::from_lists(adjacency_lists);
        Partition {
            vertex_ids,
            labels,
            local_of,
            adjacency,
            label_index,
            neighbor_index: None,
            pair_table: LabelPairTable::default(),
        }
    }

    /// Like [`Partition::new`], but also builds the candidate-pruning
    /// indexes ([`NeighborLabelIndex`], [`LabelPairTable`]) in the same
    /// construction pass. `neighbor_label` resolves the label of *any*
    /// vertex (neighbors may live on other machines); a neighbor whose label
    /// it cannot resolve contributes the all-ones [`FULL_SIGNATURE`] — the
    /// signature over-approximates, so an unknown label must claim every
    /// bit to keep pruning sound — and is left out of the pair table.
    pub fn with_neighbor_labels(
        vertex_ids: Vec<VertexId>,
        labels: Vec<LabelId>,
        adjacency_lists: Vec<Vec<VertexId>>,
        num_labels: usize,
        neighbor_label: impl Fn(VertexId) -> Option<LabelId>,
    ) -> Self {
        let mut p = Partition::new(vertex_ids, labels, adjacency_lists, num_labels);
        let mut sigs = Vec::with_capacity(p.num_vertices());
        let mut pair_table = LabelPairTable::new();
        for local in 0..p.num_vertices() {
            let own_label = p.labels[local];
            let mut sig = 0u64;
            for &m in p.adjacency.neighbors(local) {
                match neighbor_label(m) {
                    Some(l) => {
                        sig |= crate::neighbor_index::label_bit(l);
                        pair_table.record(own_label, l);
                    }
                    None => sig = FULL_SIGNATURE,
                }
            }
            sigs.push(sig);
        }
        p.neighbor_index = Some(NeighborLabelIndex::from_signatures(sigs));
        p.pair_table = pair_table;
        p
    }

    /// Number of vertices owned by this machine.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of adjacency entries stored locally.
    #[inline]
    pub fn num_edge_entries(&self) -> usize {
        self.adjacency.num_entries()
    }

    /// Whether this machine owns vertex `id`.
    #[inline]
    pub fn owns(&self, id: VertexId) -> bool {
        self.local_of.contains_key(&id)
    }

    /// Loads the cell of a locally-owned vertex. Returns `None` when the
    /// vertex is not owned by this machine.
    pub fn load(&self, id: VertexId) -> Option<Cell<'_>> {
        let &local = self.local_of.get(&id)?;
        let local = local as usize;
        Some(Cell {
            id,
            label: self.labels[local],
            neighbors: self.adjacency.neighbors(local),
        })
    }

    /// Label of a locally-owned vertex.
    pub fn label_of(&self, id: VertexId) -> Option<LabelId> {
        self.local_of
            .get(&id)
            .map(|&local| self.labels[local as usize])
    }

    /// Degree of a locally-owned vertex.
    pub fn degree_of(&self, id: VertexId) -> Option<usize> {
        self.local_of
            .get(&id)
            .map(|&local| self.adjacency.degree(local as usize))
    }

    /// Local vertices with the given label (the paper's `Index.getID`,
    /// restricted to this machine).
    #[inline]
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        self.label_index.get(label)
    }

    /// Number of local vertices with the given label.
    #[inline]
    pub fn label_frequency(&self, label: LabelId) -> usize {
        self.label_index.frequency(label)
    }

    /// Whether a locally-owned vertex has a given neighbor.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        match self.local_of.get(&from) {
            Some(&local) => self.adjacency.has_neighbor(local as usize, to),
            None => false,
        }
    }

    /// Iterates over all locally-owned vertices in local-index order.
    pub fn iter_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_ids.iter().copied()
    }

    /// Iterates over `(vertex, label, neighbors)` of every local vertex.
    pub fn iter_cells(&self) -> impl Iterator<Item = Cell<'_>> {
        (0..self.num_vertices()).map(move |local| Cell {
            id: self.vertex_ids[local],
            label: self.labels[local],
            neighbors: self.adjacency.neighbors(local),
        })
    }

    /// The neighborhood-label signature of a locally-owned vertex, or
    /// `None` when the vertex is not owned here or the partition was built
    /// without the pruning index.
    #[inline]
    pub fn signature_of(&self, id: VertexId) -> Option<u64> {
        let index = self.neighbor_index.as_ref()?;
        let &local = self.local_of.get(&id)?;
        index.signature(local as usize)
    }

    /// Signature width in bits when the pruning index is present, `None`
    /// otherwise. Part of the cloud fingerprint: caches keyed on a cloud
    /// must distinguish index configurations.
    pub fn signature_bits(&self) -> Option<u32> {
        self.neighbor_index
            .as_ref()
            .map(|_| crate::neighbor_index::SIGNATURE_BITS as u32)
    }

    /// This partition's adjacency-entry counts by endpoint-label pair.
    pub fn pair_table(&self) -> &LabelPairTable {
        &self.pair_table
    }

    /// Approximate memory footprint of this partition in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vertex_ids.len() * std::mem::size_of::<VertexId>()
            + self.labels.len() * std::mem::size_of::<LabelId>()
            + self.local_of.len()
                * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>() + 8)
            + self.adjacency.memory_bytes()
            + self.label_index.memory_bytes()
            + self
                .neighbor_index
                .as_ref()
                .map_or(0, NeighborLabelIndex::memory_bytes)
            + self.pair_table.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    fn sample_partition() -> Partition {
        // vertices 10 (label 0), 20 (label 1), 30 (label 0)
        Partition::new(
            vec![v(10), v(20), v(30)],
            vec![l(0), l(1), l(0)],
            vec![vec![v(20), v(99)], vec![v(10)], vec![]],
            2,
        )
    }

    #[test]
    fn load_local_cell() {
        let p = sample_partition();
        let cell = p.load(v(10)).unwrap();
        assert_eq!(cell.label, l(0));
        assert_eq!(cell.neighbors, &[v(20), v(99)]);
        assert!(p.load(v(99)).is_none());
    }

    #[test]
    fn label_lookup() {
        let p = sample_partition();
        assert_eq!(p.vertices_with_label(l(0)), &[v(10), v(30)]);
        assert_eq!(p.vertices_with_label(l(1)), &[v(20)]);
        assert_eq!(p.label_frequency(l(0)), 2);
        assert_eq!(p.label_of(v(20)), Some(l(1)));
        assert_eq!(p.label_of(v(77)), None);
    }

    #[test]
    fn edge_and_degree_queries() {
        let p = sample_partition();
        assert!(p.has_edge(v(10), v(99)));
        assert!(!p.has_edge(v(10), v(30)));
        assert!(!p.has_edge(v(77), v(10)));
        assert_eq!(p.degree_of(v(10)), Some(2));
        assert_eq!(p.degree_of(v(30)), Some(0));
    }

    #[test]
    fn ownership_and_iteration() {
        let p = sample_partition();
        assert!(p.owns(v(10)));
        assert!(!p.owns(v(11)));
        let ids: Vec<_> = p.iter_vertices().collect();
        assert_eq!(ids, vec![v(10), v(20), v(30)]);
        assert_eq!(p.iter_cells().count(), 3);
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edge_entries(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        Partition::new(vec![v(1)], vec![l(0), l(1)], vec![vec![]], 2);
    }

    #[test]
    fn plain_partition_has_no_pruning_index() {
        let p = sample_partition();
        assert_eq!(p.signature_of(v(10)), None);
        assert_eq!(p.signature_bits(), None);
        assert_eq!(p.pair_table().total_entries(), 0);
    }

    #[test]
    fn neighbor_labels_build_signatures_and_pair_table() {
        use crate::neighbor_index::{label_bit, FULL_SIGNATURE};
        // v(99) is a phantom remote neighbor the lookup cannot resolve: its
        // owner's signature must widen to FULL to stay sound.
        let p = Partition::with_neighbor_labels(
            vec![v(10), v(20), v(30)],
            vec![l(0), l(1), l(0)],
            vec![vec![v(20), v(99)], vec![v(10)], vec![]],
            2,
            |id| match id {
                VertexId(10) | VertexId(30) => Some(l(0)),
                VertexId(20) => Some(l(1)),
                _ => None,
            },
        );
        assert_eq!(p.signature_of(v(10)), Some(FULL_SIGNATURE));
        assert_eq!(p.signature_of(v(20)), Some(label_bit(l(0))));
        assert_eq!(p.signature_of(v(30)), Some(0), "isolated vertex");
        assert_eq!(p.signature_of(v(77)), None, "unowned vertex");
        assert_eq!(p.signature_bits(), Some(64));
        // Pair table counts only resolvable endpoints: 10-20 seen from both
        // sides; 10-99 skipped.
        assert_eq!(p.pair_table().count(l(0), l(1)), 2);
        assert_eq!(p.pair_table().total_entries(), 2);
        // The indexes are part of the partition's memory accounting.
        let plain = sample_partition();
        assert!(p.memory_bytes() > plain.memory_bytes());
    }
}
