//! Deterministic, seed-driven fault injection for any [`Transport`].
//!
//! The paper targets commodity clusters where message loss, stragglers and
//! machine failure are the steady state — so the executor's fault tolerance
//! must be testable *without* a flaky network. [`FaultyTransport`] wraps any
//! [`Transport`] and injects faults according to a [`FaultPlan`]: every
//! decision is a pure function of the plan's seed and the operation's
//! identity (link, sequence number, request fingerprint), so the same run
//! injects the same faults every time, and a failing chaos run replays
//! exactly from its seed.
//!
//! ## Fault vocabulary
//!
//! One-way posts can be **dropped** (first copy lost; the sender-side
//! retransmission arrives at the next drain), **duplicated** (two copies of
//! the same envelope delivered; the mailbox suppresses one), **delayed**
//! (held back and flushed at the next drain, after younger envelopes — which
//! is also how *reordering* happens), or **corrupted** (checksum discards
//! the copy; retransmitted like a drop). Request/reply exchanges can hit
//! **transient unavailability**, a **timeout**, or a **corrupt reply** —
//! each bounded to at most [`MAX_TRANSIENT_FAILURES`] consecutive failures
//! per distinct request, so any retry policy with more attempts than that
//! always gets through. A [`MachineCrash`] is the one *permanent* fault:
//! after serving `after_ops` exchanges the machine falls off the network
//! (exchanges fail with [`TransportError::MachineDown`], posts vanish,
//! drains return nothing) while its partition data stays readable — in the
//! simulation a crash kills the message loop, not the memory.
//!
//! ## Eventual delivery
//!
//! Every plan without a crash is *eventually delivering*: each logical post
//! reaches its mailbox exactly once (drops and corruptions are
//! retransmitted, duplicates are suppressed by the `(src, seq)` identity on
//! drain), and each exchange succeeds within a bounded number of attempts.
//! Under such a plan the executor must produce **bit-identical** results to
//! the fault-free run — the chaos differential suite pins exactly that.
//!
//! Set `STWIG_FAULT_PLAN` (e.g.
//! `seed=7,drop=0.1,dup=0.08,delay=0.1,corrupt=0.02,unavail=0.04,timeout=0.02`)
//! to run the whole suite under a plan via `MatchConfig`'s default.

use crate::ids::MachineId;
use crate::transport::{Envelope, Message, Transport, TransportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Upper bound on consecutive injected failures of one distinct exchange.
///
/// A transient fault on an exchange fails it for the first one or two
/// attempts (chosen deterministically from the seed) and then lets it
/// through, so a [`RetryPolicy`] with `max_attempts > MAX_TRANSIENT_FAILURES`
/// always absorbs transient faults. Keeping this below the default retry
/// budget is what makes whole-suite chaos runs deterministic-green instead
/// of probabilistically flaky.
///
/// [`RetryPolicy`]: https://docs.rs/stwig
pub const MAX_TRANSIENT_FAILURES: u32 = 2;

/// A permanent machine loss: after `machine` has served `after_ops`
/// exchanges it drops off the network for good.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineCrash {
    /// The machine that dies.
    pub machine: u16,
    /// Exchanges the machine serves before dying (`0` = dead on arrival).
    pub after_ops: u64,
}

/// A deterministic, seed-driven chaos schedule for a [`FaultyTransport`].
///
/// Probabilities are per-operation in `[0, 1]`; which operations are hit is
/// a pure function of `seed` and the operation's identity, never of wall
/// clock or thread timing. The zero plan (`FaultPlan::default()`) injects
/// nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability a post's first copy is lost (retransmitted next drain).
    pub drop: f64,
    /// Probability a post is delivered twice (suppressed by drain dedup).
    pub duplicate: f64,
    /// Probability a post is delayed past younger envelopes (reordering).
    pub delay: f64,
    /// Probability of payload corruption: a post's copy is discarded by
    /// checksum and retransmitted; an exchange reply fails with
    /// [`TransportError::CorruptPayload`] for 1–2 attempts.
    pub corrupt: f64,
    /// Probability an exchange hits [`TransportError::Unavailable`]
    /// for 1–2 attempts.
    pub unavailable: f64,
    /// Probability an exchange hits [`TransportError::Timeout`]
    /// for 1–2 attempts.
    pub timeout: f64,
    /// Optional permanent machine crash.
    pub crash: Option<MachineCrash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            corrupt: 0.0,
            unavailable: 0.0,
            timeout: 0.0,
            crash: None,
        }
    }
}

impl FaultPlan {
    /// A representative lossy-but-eventually-delivering plan: ≥10% drop,
    /// duplication and reordering plus transient exchange faults, no crash.
    pub fn lossy(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.12,
            duplicate: 0.10,
            delay: 0.12,
            corrupt: 0.03,
            unavailable: 0.05,
            timeout: 0.03,
            crash: None,
        }
    }

    /// Returns the plan with a permanent crash of `machine` after it has
    /// served `after_ops` exchanges.
    pub fn with_crash(mut self, machine: u16, after_ops: u64) -> Self {
        self.crash = Some(MachineCrash { machine, after_ops });
        self
    }

    /// Returns the plan with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether every logical send eventually reaches its destination: true
    /// for any plan without a permanent crash. Only eventually-delivering
    /// plans preserve bit-identical query results.
    pub fn eventually_delivers(&self) -> bool {
        self.crash.is_none()
    }

    /// Parses the `STWIG_FAULT_PLAN` syntax: comma-separated `key=value`
    /// pairs over `seed`, `drop`, `dup`, `delay`, `corrupt`, `unavail`,
    /// `timeout` and `crash=MACHINE@OPS`. Unmentioned keys stay zero.
    ///
    /// ```
    /// use trinity_sim::fault::FaultPlan;
    /// let plan = FaultPlan::parse("seed=7,drop=0.1,dup=0.05,crash=1@0").unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert!(!plan.eventually_delivers());
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{pair}`"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => plan.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?,
                "drop" => plan.drop = prob(value)?,
                "dup" => plan.duplicate = prob(value)?,
                "delay" => plan.delay = prob(value)?,
                "corrupt" => plan.corrupt = prob(value)?,
                "unavail" => plan.unavailable = prob(value)?,
                "timeout" => plan.timeout = prob(value)?,
                "crash" => {
                    let (m, ops) = value
                        .split_once('@')
                        .ok_or_else(|| format!("expected crash=MACHINE@OPS, got `{value}`"))?;
                    plan.crash = Some(MachineCrash {
                        machine: m.parse().map_err(|_| format!("bad machine `{m}`"))?,
                        after_ops: ops.parse().map_err(|_| format!("bad op count `{ops}`"))?,
                    });
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The process-wide plan from `STWIG_FAULT_PLAN`, parsed once. `None`
    /// when the variable is unset or empty; a malformed value panics (a
    /// silently ignored chaos plan would report misleading green runs).
    pub fn from_env() -> Option<FaultPlan> {
        static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
        PLAN.get_or_init(|| {
            let raw = std::env::var("STWIG_FAULT_PLAN").ok()?;
            if raw.trim().is_empty() {
                return None;
            }
            Some(
                FaultPlan::parse(&raw)
                    .unwrap_or_else(|e| panic!("invalid STWIG_FAULT_PLAN `{raw}`: {e}")),
            )
        })
        .clone()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},drop={},dup={},delay={},corrupt={},unavail={},timeout={}",
            self.seed,
            self.drop,
            self.duplicate,
            self.delay,
            self.corrupt,
            self.unavailable,
            self.timeout
        )?;
        if let Some(c) = &self.crash {
            write!(f, ",crash={}@{}", c.machine, c.after_ops)?;
        }
        Ok(())
    }
}

/// What kind of fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A post's first copy was lost (retransmitted at the next drain).
    Drop,
    /// A post was delivered twice.
    Duplicate,
    /// A post was held back past younger envelopes.
    Delay,
    /// A payload was corrupted (post copy discarded, or exchange reply
    /// failed its checksum).
    Corrupt,
    /// An exchange found the destination transiently unavailable.
    Unavailable,
    /// An exchange timed out.
    Timeout,
    /// An operation was swallowed because a crashed machine was involved.
    CrashDrop,
}

/// One injected fault, for the deterministic fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Sending machine of the afflicted operation.
    pub src: u16,
    /// Destination machine of the afflicted operation.
    pub dst: u16,
    /// Operation identity: the envelope sequence number for posts, the
    /// request fingerprint for exchanges.
    pub op: u64,
}

#[derive(Default)]
struct FaultState {
    /// Envelopes held back (drops, delays, corrupted copies) per
    /// destination, flushed at that machine's next drain.
    pending: HashMap<u16, Vec<Envelope>>,
    /// Remaining injected failures per distinct afflicted exchange.
    transient: HashMap<u64, u32>,
    /// Exchanges served per machine, for crash-at-op-N.
    served: HashMap<u16, u64>,
    log: Vec<FaultEvent>,
}

/// A [`Transport`] decorator executing a [`FaultPlan`].
///
/// Wraps any transport; all fault decisions are deterministic functions of
/// the plan seed and the operation identity (see module docs). The injected
/// [`fault_log`] is itself deterministic for a serial caller, which the
/// chaos proptests pin.
///
/// [`fault_log`]: FaultyTransport::fault_log
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault injected so far, in injection order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.state.lock().expect("fault state poisoned").log.clone()
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> usize {
        self.state.lock().expect("fault state poisoned").log.len()
    }

    fn dead(&self, state: &FaultState, m: MachineId) -> bool {
        self.plan.crash.is_some_and(|c| {
            c.machine == m.0 && state.served.get(&m.0).copied().unwrap_or(0) >= c.after_ops
        })
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn exchange(
        &self,
        src: MachineId,
        dst: MachineId,
        msg: Message,
    ) -> Result<Message, TransportError> {
        if !msg.is_request() {
            // Let the inner transport refuse protocol violations unchanged.
            return self.inner.exchange(src, dst, msg);
        }
        {
            let mut state = self.state.lock().expect("fault state poisoned");
            // A crashed endpoint kills the round-trip before any wire work.
            for end in [src, dst] {
                if self.dead(&state, end) {
                    state.log.push(FaultEvent {
                        kind: FaultKind::CrashDrop,
                        src: src.0,
                        dst: dst.0,
                        op: message_fingerprint(&msg),
                    });
                    return Err(TransportError::MachineDown { dst: end });
                }
            }
            *state.served.entry(dst.0).or_insert(0) += 1;
            let op = message_fingerprint(&msg);
            let key = mix(self.plan.seed ^ SALT_EXCHANGE ^ link(src, dst) ^ op);
            let roll = fraction(key);
            let kind = if roll < self.plan.unavailable {
                Some(FaultKind::Unavailable)
            } else if roll < self.plan.unavailable + self.plan.timeout {
                Some(FaultKind::Timeout)
            } else if roll < self.plan.unavailable + self.plan.timeout + self.plan.corrupt {
                Some(FaultKind::Corrupt)
            } else {
                None
            };
            if let Some(kind) = kind {
                // Bounded transience: this distinct exchange fails for its
                // first 1–2 attempts, then succeeds forever after.
                let budget = state
                    .transient
                    .entry(key)
                    .or_insert(1 + (mix(key) & (MAX_TRANSIENT_FAILURES as u64 - 1)) as u32);
                if *budget > 0 {
                    *budget -= 1;
                    state.log.push(FaultEvent {
                        kind,
                        src: src.0,
                        dst: dst.0,
                        op,
                    });
                    return Err(match kind {
                        FaultKind::Unavailable => TransportError::Unavailable { dst },
                        FaultKind::Timeout => TransportError::Timeout {
                            dst,
                            phase: msg.kind(),
                        },
                        _ => TransportError::CorruptPayload { dst },
                    });
                }
            }
        }
        self.inner.exchange(src, dst, msg)
    }

    fn alloc_seq(&self, src: MachineId, dst: MachineId) -> u64 {
        self.inner.alloc_seq(src, dst)
    }

    fn post_envelope(&self, dst: MachineId, env: Envelope) {
        let mut state = self.state.lock().expect("fault state poisoned");
        if self.dead(&state, env.src) || self.dead(&state, dst) {
            state.log.push(FaultEvent {
                kind: FaultKind::CrashDrop,
                src: env.src.0,
                dst: dst.0,
                op: env.seq,
            });
            return;
        }
        let p = &self.plan;
        let roll = fraction(mix(p.seed ^ SALT_POST ^ link(env.src, dst) ^ env.seq));
        let event = |kind| FaultEvent {
            kind,
            src: env.src.0,
            dst: dst.0,
            op: env.seq,
        };
        if roll < p.drop {
            // First copy lost on the wire; the sender-side retransmission
            // is delivered when the destination next drains.
            state.log.push(event(FaultKind::Drop));
            state.pending.entry(dst.0).or_default().push(env);
        } else if roll < p.drop + p.duplicate {
            // The network delivers two copies of the same logical send;
            // drain-side `(src, seq)` dedup keeps effects exactly-once.
            state.log.push(event(FaultKind::Duplicate));
            self.inner.post_envelope(dst, env.clone());
            self.inner.post_envelope(dst, env);
        } else if roll < p.drop + p.duplicate + p.delay {
            // Held back past every younger envelope: reordering.
            state.log.push(event(FaultKind::Delay));
            state.pending.entry(dst.0).or_default().push(env);
        } else if roll < p.drop + p.duplicate + p.delay + p.corrupt {
            // Checksum discards the mangled copy; retransmitted like a drop.
            state.log.push(event(FaultKind::Corrupt));
            state.pending.entry(dst.0).or_default().push(env);
        } else {
            self.inner.post_envelope(dst, env);
        }
    }

    fn drain(&self, dst: MachineId) -> Vec<Envelope> {
        let mut state = self.state.lock().expect("fault state poisoned");
        if self.dead(&state, dst) {
            state.pending.remove(&dst.0);
            return Vec::new();
        }
        // Flush held-back envelopes *after* everything already in the
        // mailbox: retransmissions and delays arrive late, i.e. reordered.
        if let Some(pending) = state.pending.remove(&dst.0) {
            for env in pending {
                self.inner.post_envelope(dst, env);
            }
        }
        drop(state);
        self.inner.drain(dst)
    }
}

const SALT_EXCHANGE: u64 = 0x45c8_7a12_9d3e_f001;
const SALT_POST: u64 = 0xb7e1_5162_8aed_2a6b;

fn link(src: MachineId, dst: MachineId) -> u64 {
    ((src.0 as u64) << 16) | dst.0 as u64
}

/// SplitMix64 finalizer: the deterministic "coin" behind every decision.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A content fingerprint identifying a distinct request, so a *retry* of the
/// same exchange maps to the same transient-fault budget while different
/// requests roll independent coins.
fn message_fingerprint(msg: &Message) -> u64 {
    let mut h: u64 = match msg {
        Message::LoadRequest { .. } => 1,
        Message::GetIdsRequest { .. } => 2,
        _ => 3,
    };
    match msg {
        Message::LoadRequest {
            ids,
            with_neighbors,
        } => {
            h = mix(h ^ *with_neighbors as u64);
            for id in ids {
                h = mix(h ^ id.0);
            }
        }
        Message::GetIdsRequest { label } => {
            h = mix(h ^ label.0 as u64);
        }
        // Only requests are fingerprinted; other variants never reach the
        // exchange fault path.
        _ => {}
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::cost::CostModel;
    use crate::ids::VertexId;
    use crate::transport::ChannelTransport;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn cloud(machines: usize) -> crate::cloud::MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..8 {
            b.add_vertex(v(i), if i % 2 == 0 { "a" } else { "b" });
        }
        for i in 0..7 {
            b.add_edge(v(i), v(i + 1));
        }
        b.build(machines, CostModel::default())
    }

    #[test]
    fn plan_parse_round_trips_through_display() {
        let plan = FaultPlan::lossy(42).with_crash(2, 17);
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("crash=zz@1").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let c = cloud(2);
        let tp = FaultyTransport::new(ChannelTransport::new(&c), FaultPlan::default());
        for i in 0..16 {
            tp.post(
                MachineId(0),
                MachineId(1),
                Message::BindingDelta {
                    cols: vec![(0, vec![v(i)])],
                },
            );
        }
        assert_eq!(tp.drain(MachineId(1)).len(), 16);
        assert_eq!(tp.faults_injected(), 0);
    }

    #[test]
    fn lossy_plan_still_delivers_every_post_exactly_once() {
        let c = cloud(2);
        let tp = FaultyTransport::new(ChannelTransport::new(&c), FaultPlan::lossy(7));
        let sends = 200u64;
        for i in 0..sends {
            tp.post(
                MachineId(0),
                MachineId(1),
                Message::BindingDelta {
                    cols: vec![(0, vec![v(i)])],
                },
            );
        }
        // Two drains: the first flushes nothing pending (posts come first),
        // delivers fresh envelopes; the second delivers retransmissions.
        let mut got: Vec<Envelope> = tp.drain(MachineId(1));
        got.extend(tp.drain(MachineId(1)));
        assert_eq!(got.len() as u64, sends, "exactly-once delivery");
        let mut seqs: Vec<u64> = got.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..sends).collect::<Vec<_>>());
        // With 200 sends at ≥10% rates some of every post fault fired.
        let log = tp.fault_log();
        assert!(log.iter().any(|e| e.kind == FaultKind::Drop));
        assert!(log.iter().any(|e| e.kind == FaultKind::Duplicate));
        assert!(log.iter().any(|e| e.kind == FaultKind::Delay));
        assert!(tp.inner().duplicates_suppressed() > 0);
    }

    #[test]
    fn transient_exchange_faults_are_bounded_per_request() {
        let c = cloud(2);
        let plan = FaultPlan {
            seed: 3,
            unavailable: 1.0, // every exchange afflicted …
            ..FaultPlan::default()
        };
        let tp = FaultyTransport::new(ChannelTransport::new(&c), plan);
        let owner = c.machine_of(v(0));
        let src = c.machines().find(|&m| m != owner).unwrap();
        let req = || Message::LoadRequest {
            ids: vec![v(0)],
            with_neighbors: false,
        };
        let mut failures = 0;
        let reply = loop {
            match tp.exchange(src, owner, req()) {
                Ok(r) => break r,
                Err(e) => {
                    assert!(e.is_transient());
                    failures += 1;
                    assert!(failures <= MAX_TRANSIENT_FAILURES, "… but boundedly");
                }
            }
        };
        assert!(matches!(reply, Message::LoadReply { .. }));
        assert!(failures >= 1);
    }

    #[test]
    fn crashed_machine_is_down_for_exchanges_posts_and_drains() {
        let c = cloud(2);
        let plan = FaultPlan::default().with_crash(1, 0);
        let tp = FaultyTransport::new(ChannelTransport::new(&c), plan);
        let (m0, m1) = (MachineId(0), MachineId(1));
        let err = tp
            .exchange(
                m0,
                m1,
                Message::LoadRequest {
                    ids: vec![v(1)],
                    with_neighbors: false,
                },
            )
            .unwrap_err();
        assert_eq!(err, TransportError::MachineDown { dst: m1 });
        assert!(!err.is_transient());
        tp.post(m0, m1, Message::BindingDelta { cols: vec![] });
        assert!(tp.drain(m1).is_empty());
        // The dead machine cannot send either.
        tp.post(m1, m0, Message::BindingDelta { cols: vec![] });
        assert!(tp.drain(m0).is_empty());
        assert!(tp
            .fault_log()
            .iter()
            .all(|e| e.kind == FaultKind::CrashDrop));
    }

    #[test]
    fn crash_after_n_ops_serves_n_then_dies() {
        let c = cloud(2);
        let plan = FaultPlan::default().with_crash(1, 3);
        let tp = FaultyTransport::new(ChannelTransport::new(&c), plan);
        let (m0, m1) = (MachineId(0), MachineId(1));
        let req = |i: u64| Message::LoadRequest {
            ids: vec![v(i)],
            with_neighbors: false,
        };
        for i in 0..3 {
            assert!(tp.exchange(m0, m1, req(i)).is_ok());
        }
        assert_eq!(
            tp.exchange(m0, m1, req(3)).unwrap_err(),
            TransportError::MachineDown { dst: m1 }
        );
    }

    #[test]
    fn same_seed_same_fault_log() {
        let c = cloud(2);
        let run = |seed: u64| {
            let tp = FaultyTransport::new(ChannelTransport::new(&c), FaultPlan::lossy(seed));
            for i in 0..64 {
                tp.post(
                    MachineId(0),
                    MachineId(1),
                    Message::BindingDelta {
                        cols: vec![(0, vec![v(i)])],
                    },
                );
                let _ = tp.exchange(
                    MachineId(1),
                    MachineId(0),
                    Message::LoadRequest {
                        ids: vec![v(i % 8)],
                        with_neighbors: false,
                    },
                );
            }
            tp.drain(MachineId(1));
            tp.fault_log()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds make different weather");
    }
}
