//! Streaming bulk loader: builds a [`MemoryCloud`] from an *edge iterator*
//! in bounded memory, without ever staging per-vertex `Vec<Vec<VertexId>>`
//! adjacency the way [`crate::builder::GraphBuilder`] does.
//!
//! The paper loads billion-edge graphs into Trinity by streaming the input
//! through a fixed loading pipeline (Table 2 reports the times); holding the
//! whole edge list — let alone a per-vertex nested structure — in memory is
//! exactly what a 10M+-vertex load cannot afford. The loader instead makes
//! `1 + M` passes over the edge stream (`M` = machine count):
//!
//! 1. **Vertex pass**: hash-partition `(id, label)` pairs, sort each
//!    machine's vertices, build the id maps and label frequencies.
//! 2. **Degree pass**: one pass over the edges counting, per machine, each
//!    local vertex's entry count (duplicates included — they are cheap to
//!    count and removed at encode time).
//! 3. **Per-machine fill passes**: for one machine at a time, scatter that
//!    machine's neighbor entries into an exact-size flat array, then sort,
//!    deduplicate and encode each run in place — building the partition's
//!    adjacency, pruning signatures, pair table and catalog contributions in
//!    the same sweep. Peak staging is the *largest single machine's* entry
//!    count, not the whole graph's.
//!
//! The edge stream is supplied as a factory (`Fn() -> IntoIterator`) so the
//! loader can re-iterate it; generators like `graph-gen`'s streaming R-MAT
//! recompute edges from a counter instead of storing them.

use crate::cloud::{machine_for, MemoryCloud};
use crate::cluster_graph::LabelPairCatalog;
use crate::compact::{CompactCsrBuilder, StorageTier};
use crate::csr::Csr;
use crate::error::TrinityError;
use crate::ids::{LabelId, LabelInterner, MachineId, VertexId};
use crate::neighbor_index::{label_bit, LabelPairTable, NeighborLabelIndex};
use crate::network::CostModel;
use crate::partition::{Adjacency, IdMap, LabelPostings, Partition};

/// Builds a [`MemoryCloud`] from vertex and edge streams in bounded memory.
///
/// Produces exactly the same cloud as [`crate::builder::GraphBuilder`] over
/// the same graph (same partitions, indexes, signatures, catalog and edge
/// count) — pinned by the loader tests — while never materializing the edge
/// list or nested adjacency.
#[derive(Debug, Clone)]
pub struct StreamLoader {
    num_machines: usize,
    cost: CostModel,
    tier: Option<StorageTier>,
    directed: bool,
}

impl StreamLoader {
    /// A loader targeting `num_machines` logical machines.
    pub fn new(num_machines: usize, cost: CostModel) -> Self {
        StreamLoader {
            num_machines,
            cost,
            tier: None,
            directed: false,
        }
    }

    /// Overrides the storage tier (default: [`StorageTier::from_env`]).
    pub fn with_storage_tier(mut self, tier: StorageTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Marks the input as a directed graph. Adjacency is still symmetrized,
    /// matching [`crate::builder::GraphBuilder::new_directed`].
    pub fn with_directed(mut self, directed: bool) -> Self {
        self.directed = directed;
        self
    }

    /// Streams the graph into a cloud.
    ///
    /// * `interner` — the label alphabet; every streamed [`LabelId`] must
    ///   come from it.
    /// * `vertices` — one `(id, label)` pair per vertex; a repeated id
    ///   keeps its *last* label (same overwrite semantics as
    ///   [`crate::builder::GraphBuilder::add_vertex`]).
    /// * `edges` — a factory returning a fresh edge iterator each call; it
    ///   is invoked `1 + num_machines` times. Self loops are ignored,
    ///   duplicate edges deduplicated, and an edge endpoint that never
    ///   appeared in `vertices` fails with
    ///   [`TrinityError::UnknownVertex`].
    pub fn load<V, F, E>(
        &self,
        interner: LabelInterner,
        vertices: V,
        edges: F,
    ) -> Result<MemoryCloud, TrinityError>
    where
        V: IntoIterator<Item = (VertexId, LabelId)>,
        F: Fn() -> E,
        E: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let m = self.num_machines;
        if m == 0 || m > u16::MAX as usize {
            return Err(TrinityError::InvalidMachineCount(m));
        }
        let tier = self.tier.unwrap_or_else(StorageTier::from_env);
        let num_labels = interner.len();

        // ------------------------------------------------------------------
        // Pass 1: vertices → per-machine sorted (id, label), id maps,
        // label frequencies.
        // ------------------------------------------------------------------
        let mut per_machine: Vec<Vec<(VertexId, LabelId)>> = vec![Vec::new(); m];
        for (id, label) in vertices {
            per_machine[machine_for(id, m).index()].push((id, label));
        }
        let mut machine_ids: Vec<Vec<VertexId>> = Vec::with_capacity(m);
        let mut machine_labels: Vec<Vec<LabelId>> = Vec::with_capacity(m);
        let mut label_frequency = vec![0u64; num_labels];
        let mut num_vertices = 0u64;
        for list in &mut per_machine {
            // Stable sort keeps duplicate ids in stream order; the compaction
            // below keeps the *last* pair of each run of equal ids, matching
            // the builder's insert-overwrites semantics.
            list.sort_by_key(|&(id, _)| id);
            let mut w = 0usize;
            for r in 0..list.len() {
                if r + 1 < list.len() && list[r + 1].0 == list[r].0 {
                    continue;
                }
                list[w] = list[r];
                w += 1;
            }
            list.truncate(w);
            num_vertices += w as u64;
            let mut ids = Vec::with_capacity(w);
            let mut labels = Vec::with_capacity(w);
            for &(id, label) in list.iter() {
                ids.push(id);
                labels.push(label);
                if let Some(f) = label_frequency.get_mut(label.index()) {
                    *f += 1;
                }
            }
            list.clear();
            list.shrink_to_fit();
            machine_ids.push(ids);
            machine_labels.push(labels);
        }
        drop(per_machine);
        if num_vertices == 0 {
            return Err(TrinityError::EmptyGraph);
        }
        let id_maps: Vec<IdMap> = machine_ids
            .iter()
            .map(|ids| IdMap::build(tier, ids))
            .collect();
        let locate = |id: VertexId| -> Result<(usize, u32), TrinityError> {
            let mach = machine_for(id, m).index();
            id_maps[mach]
                .get(&machine_ids[mach], id)
                .map(|local| (mach, local))
                .ok_or(TrinityError::UnknownVertex(id))
        };

        // ------------------------------------------------------------------
        // Pass 2: count per-local-vertex entries (duplicates included),
        // validating endpoints once.
        // ------------------------------------------------------------------
        let mut degrees: Vec<Vec<u32>> = machine_ids
            .iter()
            .map(|ids| vec![0u32; ids.len()])
            .collect();
        for (u, v) in edges() {
            if u == v {
                continue;
            }
            let (mu, lu) = locate(u)?;
            let (mv, lv) = locate(v)?;
            degrees[mu][lu as usize] += 1;
            degrees[mv][lv as usize] += 1;
        }

        // ------------------------------------------------------------------
        // Passes 3..: per machine, scatter → sort/dedup in place → encode.
        // ------------------------------------------------------------------
        let mut catalog = LabelPairCatalog::new(m);
        let mut adjacencies: Vec<Adjacency> = Vec::with_capacity(m);
        let mut neighbor_indexes: Vec<NeighborLabelIndex> = Vec::with_capacity(m);
        let mut pair_tables: Vec<LabelPairTable> = Vec::with_capacity(m);
        let mut total_entries = 0u64;
        for mach in 0..m {
            let n_local = machine_ids[mach].len();
            let counts = std::mem::take(&mut degrees[mach]);
            let mut starts = Vec::with_capacity(n_local + 1);
            let mut running = 0usize;
            starts.push(0);
            for &d in &counts {
                running += d as usize;
                starts.push(running);
            }
            drop(counts);
            // Exact-size flat staging for this machine only: the loader's
            // peak is max over machines, not the sum.
            let mut staging = vec![VertexId(0); running];
            let mut cursor: Vec<usize> = starts[..n_local].to_vec();
            for (u, v) in edges() {
                if u == v {
                    continue;
                }
                if machine_for(u, m).index() == mach {
                    let (_, local) = locate(u)?;
                    staging[cursor[local as usize]] = v;
                    cursor[local as usize] += 1;
                }
                if machine_for(v, m).index() == mach {
                    let (_, local) = locate(v)?;
                    staging[cursor[local as usize]] = u;
                    cursor[local as usize] += 1;
                }
            }
            drop(cursor);
            // Sort and deduplicate each run in place, compacting the flat
            // array towards the front; build the pruning indexes and the
            // catalog contribution over the deduplicated runs. Every unique
            // edge appears in exactly two runs cloud-wide (one per
            // endpoint), so recording one catalog edge per deduplicated
            // entry reproduces the builder's symmetric `record_edge` pairs.
            let mut sigs = Vec::with_capacity(n_local);
            let mut pair_table = LabelPairTable::new();
            let mut compact_builder = match tier {
                StorageTier::Compact => Some(CompactCsrBuilder::with_capacity(n_local)),
                StorageTier::Plain => None,
            };
            let mut final_offsets: Vec<usize> = Vec::with_capacity(n_local + 1);
            final_offsets.push(0);
            let mut write = 0usize;
            for local in 0..n_local {
                let (start, end) = (starts[local], starts[local + 1]);
                staging[start..end].sort_unstable();
                let mut run_len = 0usize;
                for r in start..end {
                    if run_len > 0 && staging[r] == staging[write + run_len - 1] {
                        continue;
                    }
                    staging[write + run_len] = staging[r];
                    run_len += 1;
                }
                let own_label = machine_labels[mach][local];
                let mut sig = 0u64;
                for &nbr in &staging[write..write + run_len] {
                    let (mn, ln) = locate(nbr)?;
                    let nbr_label = machine_labels[mn][ln as usize];
                    sig |= label_bit(nbr_label);
                    pair_table.record(own_label, nbr_label);
                    catalog.record_edge(
                        MachineId(mach as u16),
                        own_label,
                        MachineId(mn as u16),
                        nbr_label,
                    );
                }
                sigs.push(sig);
                if let Some(b) = compact_builder.as_mut() {
                    b.push_run(&staging[write..write + run_len]);
                }
                write += run_len;
                final_offsets.push(write);
            }
            total_entries += write as u64;
            adjacencies.push(match compact_builder {
                Some(b) => {
                    drop(staging);
                    Adjacency::Compact(b.finish())
                }
                None => {
                    staging.truncate(write);
                    staging.shrink_to_fit();
                    Adjacency::Plain(Csr::from_sorted_flat(final_offsets, staging))
                }
            });
            neighbor_indexes.push(NeighborLabelIndex::from_signatures(sigs));
            pair_tables.push(pair_table);
        }
        drop(degrees);

        // ------------------------------------------------------------------
        // Assembly.
        // ------------------------------------------------------------------
        let mut partitions = Vec::with_capacity(m);
        for (((((ids, labels), id_map), adjacency), neighbor_index), pair_table) in machine_ids
            .into_iter()
            .zip(machine_labels)
            .zip(id_maps)
            .zip(adjacencies)
            .zip(neighbor_indexes)
            .zip(pair_tables)
        {
            let postings = LabelPostings::build(tier, &ids, &labels, num_labels);
            partitions.push(Partition::from_encoded_parts(
                ids,
                labels,
                id_map,
                adjacency,
                postings,
                Some(neighbor_index),
                pair_table,
            ));
        }
        Ok(MemoryCloud::from_parts(
            partitions,
            interner,
            self.cost,
            label_frequency,
            catalog,
            num_vertices,
            total_entries / 2,
            self.directed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// A deterministic pseudo-random labeled graph, available both as
    /// builder input and as streams.
    #[allow(clippy::type_complexity)]
    fn test_graph(
        n: u64,
        edges_per_vertex: u64,
    ) -> (Vec<(VertexId, &'static str)>, Vec<(VertexId, VertexId)>) {
        let names = ["a", "b", "c"];
        let vertices: Vec<(VertexId, &'static str)> =
            (0..n).map(|i| (v(i), names[(i % 3) as usize])).collect();
        let mut edges = Vec::new();
        let mut x = 0x5EEDu64;
        for i in 0..n {
            for _ in 0..edges_per_vertex {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                edges.push((v(i), v(x % n)));
            }
        }
        (vertices, edges)
    }

    fn build_via_builder(
        vertices: &[(VertexId, &'static str)],
        edges: &[(VertexId, VertexId)],
        tier: StorageTier,
    ) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected().with_storage_tier(tier);
        for &(id, name) in vertices {
            b.add_vertex(id, name);
        }
        for &(u, w) in edges {
            b.add_edge(u, w);
        }
        b.build(4, CostModel::free())
    }

    fn build_via_loader(
        vertices: &[(VertexId, &'static str)],
        edges: &[(VertexId, VertexId)],
        tier: StorageTier,
    ) -> MemoryCloud {
        let mut interner = LabelInterner::default();
        for name in ["a", "b", "c"] {
            interner.intern(name);
        }
        let vs: Vec<(VertexId, LabelId)> = vertices
            .iter()
            .map(|&(id, name)| (id, interner.get(name).unwrap()))
            .collect();
        StreamLoader::new(4, CostModel::free())
            .with_storage_tier(tier)
            .load(interner, vs, || edges.iter().copied())
            .unwrap()
    }

    fn assert_clouds_equal(a: &MemoryCloud, b: &MemoryCloud) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_machines(), b.num_machines());
        let mut ids: Vec<VertexId> = a.iter_vertices().collect();
        ids.sort_unstable();
        let mut ids_b: Vec<VertexId> = b.iter_vertices().collect();
        ids_b.sort_unstable();
        assert_eq!(ids, ids_b);
        for &id in &ids {
            assert_eq!(a.label_of_global(id), b.label_of_global(id), "label {id}");
            assert_eq!(
                a.neighbors_global(id).to_vec(),
                b.neighbors_global(id).to_vec(),
                "adjacency {id}"
            );
            assert_eq!(a.signature_of(id), b.signature_of(id), "signature {id}");
        }
        for l in 0..a.labels().len() as u32 {
            let l = LabelId(l);
            assert_eq!(a.label_frequency(l), b.label_frequency(l));
            assert_eq!(a.all_ids_with_label(l), b.all_ids_with_label(l));
            for l2 in 0..a.labels().len() as u32 {
                let l2 = LabelId(l2);
                assert_eq!(a.label_pair_count(l, l2), b.label_pair_count(l, l2));
            }
        }
        assert_eq!(a.label_pair_total(), b.label_pair_total());
    }

    #[test]
    fn loader_matches_builder_on_both_tiers() {
        let (vertices, edges) = test_graph(500, 4);
        for tier in [StorageTier::Plain, StorageTier::Compact] {
            let from_builder = build_via_builder(&vertices, &edges, tier);
            let from_loader = build_via_loader(&vertices, &edges, tier);
            assert_clouds_equal(&from_builder, &from_loader);
            assert_eq!(from_loader.storage_configuration(), vec![tier; 4]);
        }
    }

    #[test]
    fn loader_tiers_are_equivalent_to_each_other() {
        let (vertices, edges) = test_graph(300, 3);
        let plain = build_via_loader(&vertices, &edges, StorageTier::Plain);
        let compact = build_via_loader(&vertices, &edges, StorageTier::Compact);
        assert_clouds_equal(&plain, &compact);
        assert!(compact.memory_bytes() < plain.memory_bytes());
    }

    #[test]
    fn self_loops_and_duplicate_edges_are_dropped() {
        let vertices = vec![(v(1), "a"), (v(2), "b")];
        let edges = vec![(v(1), v(2)), (v(2), v(1)), (v(1), v(1))];
        let cloud = build_via_loader(&vertices, &edges, StorageTier::Compact);
        assert_eq!(cloud.num_edges(), 1);
        assert_eq!(cloud.neighbors_global(v(1)), &[v(2)]);
        assert_eq!(cloud.neighbors_global(v(2)), &[v(1)]);
    }

    #[test]
    fn duplicate_vertex_keeps_last_label() {
        let mut interner = LabelInterner::default();
        let la = interner.intern("a");
        let lb = interner.intern("b");
        let cloud = StreamLoader::new(2, CostModel::free())
            .load(interner, vec![(v(1), la), (v(1), lb)], || {
                std::iter::empty()
            })
            .unwrap();
        assert_eq!(cloud.num_vertices(), 1);
        assert_eq!(cloud.label_of_global(v(1)), Some(lb));
        assert_eq!(cloud.label_frequency(lb), 1);
        assert_eq!(cloud.label_frequency(la), 0);
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let mut interner = LabelInterner::default();
        let la = interner.intern("a");
        let err = StreamLoader::new(2, CostModel::free())
            .load(interner, vec![(v(1), la)], || [(v(1), v(9))].into_iter())
            .unwrap_err();
        assert_eq!(err, TrinityError::UnknownVertex(v(9)));
    }

    #[test]
    fn empty_vertex_stream_is_an_error() {
        let err = StreamLoader::new(2, CostModel::free())
            .load(LabelInterner::default(), Vec::new(), std::iter::empty)
            .unwrap_err();
        assert_eq!(err, TrinityError::EmptyGraph);
    }

    #[test]
    fn invalid_machine_count_is_an_error() {
        let mut interner = LabelInterner::default();
        let la = interner.intern("a");
        let err = StreamLoader::new(0, CostModel::free())
            .load(interner, vec![(v(1), la)], std::iter::empty)
            .unwrap_err();
        assert_eq!(err, TrinityError::InvalidMachineCount(0));
    }

    #[test]
    fn directed_flag_is_preserved() {
        let mut interner = LabelInterner::default();
        let la = interner.intern("a");
        let cloud = StreamLoader::new(1, CostModel::free())
            .with_directed(true)
            .load(interner, vec![(v(1), la), (v(2), la)], || {
                [(v(1), v(2))].into_iter()
            })
            .unwrap();
        assert!(cloud.is_directed());
        assert_eq!(cloud.neighbors_global(v(2)), &[v(1)]);
    }
}
