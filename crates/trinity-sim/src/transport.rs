//! Explicit batched message passing between logical machines.
//!
//! The paper's execution model (§4.2, §6.2) is partition-local: a machine
//! only dereferences its *own* partition, and anything it needs from another
//! machine travels as a message — with Trinity merging many small messages
//! into batches. This module is that boundary made explicit:
//!
//! * [`Message`] is the typed vocabulary: batched `Cloud.Load` requests
//!   answered with **owned** [`CellBuf`] replies, `Index.getID` posting
//!   requests, binding-exchange deltas, and shipped join rows;
//! * [`Transport`] is the pluggable carrier: synchronous request/reply
//!   round-trips ([`Transport::exchange`]) plus one-way posts into
//!   per-machine mailboxes ([`Transport::post`] / [`Transport::drain`]);
//! * [`ChannelTransport`] is the in-process backend: requests are served
//!   against the owner's partition (the handler only ever touches the
//!   destination machine's data), posts go through mutex-guarded mailboxes,
//!   and **every envelope is charged to the traffic matrix with its actual
//!   payload size** — the cost model then prices what was really sent,
//!   rather than a per-access estimate.
//!
//! A socket- or process-based backend would implement [`Transport`] by
//! serializing [`Message`] (all payload types are plain-old-data); the
//! executor in the `stwig` crate is written against the trait only.
//!
//! ## Determinism
//!
//! `exchange` is synchronous and self-contained: concurrent callers on
//! different machines never observe each other. `drain` returns a mailbox's
//! envelopes in the order they were posted; the distributed executor only
//! posts from its coordinating thread (in machine order) and each machine
//! drains only its own mailbox, so delivery order is a pure function of the
//! program, not of thread scheduling.

use crate::cloud::MemoryCloud;
use crate::ids::{LabelId, MachineId, VertexId};
use crate::partition::CellBuf;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A failure observed on the transport: a protocol violation (malformed
/// peer) or a delivery fault (timeout, transient unavailability, corrupted
/// payload, dead machine).
///
/// A real cluster must expect malformed peers and lossy links: a machine
/// answering a request with the wrong variant, a wedged handler, or a crashed
/// destination must degrade *that query* — never crash the serving process.
/// Every failure is therefore a typed error the executor surfaces as a
/// per-query failure (`stwig::StwigError::Transport` or
/// `stwig::StwigError::MachineUnavailable`), not a `panic!`. Delivery faults
/// report [`TransportError::is_transient`] so the retry layer knows which
/// errors a fresh attempt can fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// [`Transport::exchange`] was called with a message that is not a
    /// request (nothing to reply to).
    NotARequest {
        /// Variant name of the offending message.
        got: &'static str,
    },
    /// A request was answered with an unexpected reply variant.
    UnexpectedReply {
        /// Variant name the caller expected.
        expected: &'static str,
        /// Variant name that actually arrived.
        got: &'static str,
    },
    /// A mailbox drain surfaced a variant the current phase cannot consume.
    UnexpectedMessage {
        /// The phase doing the drain (e.g. `"binding sync"`).
        phase: &'static str,
        /// Variant name that was found in the mailbox.
        got: &'static str,
    },
    /// A message's payload is internally inconsistent (e.g. shipped join
    /// rows whose length is not a multiple of the column count).
    MalformedPayload {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An exchange did not complete within the per-exchange timeout
    /// (wedged or overloaded peer). Transient: retry may succeed.
    Timeout {
        /// The destination machine that failed to answer in time.
        dst: MachineId,
        /// The request variant that timed out (e.g. `"LoadRequest"`).
        phase: &'static str,
    },
    /// The destination refused service for this attempt (message loop busy,
    /// connection reset, …). Transient: retry may succeed.
    Unavailable {
        /// The destination machine that was unavailable.
        dst: MachineId,
    },
    /// A reply arrived but failed its payload checksum. Transient: the
    /// request is a pure read, so re-asking gets a fresh copy.
    CorruptPayload {
        /// The destination machine whose reply was corrupted.
        dst: MachineId,
    },
    /// The destination machine has permanently crashed. Not transient:
    /// no number of retries will revive it.
    MachineDown {
        /// The machine that is gone.
        dst: MachineId,
    },
}

impl TransportError {
    /// Whether a fresh attempt of the same operation can plausibly succeed.
    ///
    /// Protocol violations ([`TransportError::NotARequest`],
    /// [`TransportError::UnexpectedReply`], …) are deterministic bugs —
    /// retrying replays them. Delivery faults (timeout, unavailability,
    /// corruption) are properties of one attempt; [`MachineDown`]
    /// (permanent loss) is the one delivery fault retries cannot fix.
    ///
    /// [`MachineDown`]: TransportError::MachineDown
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransportError::Timeout { .. }
                | TransportError::Unavailable { .. }
                | TransportError::CorruptPayload { .. }
        )
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NotARequest { got } => {
                write!(f, "exchange called with non-request message {got}")
            }
            TransportError::UnexpectedReply { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            TransportError::UnexpectedMessage { phase, got } => {
                write!(f, "unexpected {got} message during {phase}")
            }
            TransportError::MalformedPayload { detail } => {
                write!(f, "malformed message payload: {detail}")
            }
            TransportError::Timeout { dst, phase } => {
                write!(f, "{phase} exchange with {dst} timed out")
            }
            TransportError::Unavailable { dst } => {
                write!(f, "machine {dst} temporarily unavailable")
            }
            TransportError::CorruptPayload { dst } => {
                write!(f, "reply from {dst} failed its payload checksum")
            }
            TransportError::MachineDown { dst } => {
                write!(f, "machine {dst} is down")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Size, in bytes, charged for one vertex id on the wire.
const ID_BYTES: u64 = 8;
/// Fixed per-envelope header charge (source, destination, type tag, length).
const HEADER_BYTES: u64 = 16;

/// A typed message between two logical machines.
///
/// Requests (`*Request`) are answered synchronously through
/// [`Transport::exchange`]; the remaining variants are one-way posts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Batched `Cloud.Load`: "send me the cells of these vertices you own".
    /// Ids are expected sorted and deduplicated (one batch per destination
    /// per superstep).
    LoadRequest {
        /// Vertices to load, all owned by the destination.
        ids: Vec<VertexId>,
        /// Whether reply cells should carry their adjacency. STwig
        /// exploration is depth-1 — it consumes only the *labels* of
        /// frontier vertices — so the executor requests projected cells and
        /// the owner keeps hub adjacency lists at home (shipping them would
        /// dominate traffic on skewed graphs for data nobody reads). A
        /// multi-hop explorer would request full cells.
        with_neighbors: bool,
    },
    /// Reply to [`Message::LoadRequest`]: owned cells, in request order.
    /// Ids the destination does not own are silently skipped.
    LoadReply {
        /// The loaded cells (label + copied neighbor list).
        cells: Vec<CellBuf>,
    },
    /// `Index.getID` forwarded to another machine: "send me your local
    /// postings for this label".
    GetIdsRequest {
        /// The label to look up in the destination's string index.
        label: LabelId,
    },
    /// Reply to [`Message::GetIdsRequest`]: the destination's local postings.
    GetIdsReply {
        /// Locally-owned vertices with the requested label, sorted.
        ids: Vec<VertexId>,
    },
    /// Binding-exchange delta: the distinct data vertices the sender newly
    /// bound per synchronized query-vertex column (raw `QVid` values — the
    /// cloud layer does not know query types).
    BindingDelta {
        /// `(query vertex, distinct matched data vertices)` per column.
        cols: Vec<(u16, Vec<VertexId>)>,
    },
    /// Shipped STwig result rows for the distributed join (Theorem 4 load
    /// sets): one machine's table for one STwig, flattened row-major.
    JoinRows {
        /// Index of the STwig (in plan order) these rows match.
        stwig: u32,
        /// Raw query-vertex ids of the table's columns.
        columns: Vec<u16>,
        /// Row-major vertex data; `columns.len()` ids per row.
        rows: Vec<VertexId>,
    },
}

impl Message {
    /// The payload size this message is charged on the wire, in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES
            + match self {
                Message::LoadRequest { ids, .. } => 1 + ids.len() as u64 * ID_BYTES,
                Message::LoadReply { cells } => cells.iter().map(CellBuf::wire_bytes).sum(),
                Message::GetIdsRequest { .. } => 4,
                Message::GetIdsReply { ids } => ids.len() as u64 * ID_BYTES,
                Message::BindingDelta { cols } => cols
                    .iter()
                    .map(|(_, ids)| 2 + ids.len() as u64 * ID_BYTES)
                    .sum(),
                Message::JoinRows { columns, rows, .. } => {
                    4 + columns.len() as u64 * 2 + rows.len() as u64 * ID_BYTES
                }
            }
    }

    /// Whether this message is a request expecting a synchronous reply.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::LoadRequest { .. } | Message::GetIdsRequest { .. }
        )
    }

    /// The variant name, for protocol-violation diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::LoadRequest { .. } => "LoadRequest",
            Message::LoadReply { .. } => "LoadReply",
            Message::GetIdsRequest { .. } => "GetIdsRequest",
            Message::GetIdsReply { .. } => "GetIdsReply",
            Message::BindingDelta { .. } => "BindingDelta",
            Message::JoinRows { .. } => "JoinRows",
        }
    }
}

/// A one-way [`Message`] in flight, stamped with its sender and a per-link
/// sequence number.
///
/// The `(src, seq)` pair identifies a *logical* send: every retransmission
/// or network-duplicated copy of the same post carries the same pair, which
/// is what lets the receiving mailbox suppress duplicates on drain and turn
/// at-least-once delivery into exactly-once consumption.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The machine that sent this message.
    pub src: MachineId,
    /// Sequence number, unique per `(src, dst)` link for each logical send.
    pub seq: u64,
    /// The payload.
    pub msg: Message,
}

/// The carrier moving [`Message`]s between logical machines.
///
/// Implementations must be `Send + Sync`: logical machines run on a worker
/// pool and use the transport concurrently (each machine only exchanges on
/// its own behalf and drains its own mailbox).
///
/// One-way sends are split into [`alloc_seq`] (assign the logical send its
/// `(src, seq)` identity) and [`post_envelope`] (put one physical copy on
/// the wire) so that decorators — fault injectors, retransmitters — can
/// deliver *additional copies of the same logical send* without minting new
/// identities; [`post`] is the convenience composition of the two.
///
/// [`alloc_seq`]: Transport::alloc_seq
/// [`post_envelope`]: Transport::post_envelope
/// [`post`]: Transport::post
pub trait Transport: Send + Sync {
    /// Sends a request from `src` to `dst` and returns the destination
    /// machine's reply (one request/reply round-trip; both envelopes are
    /// charged). Calling it with a non-request message is a protocol
    /// violation reported as [`TransportError::NotARequest`].
    fn exchange(
        &self,
        src: MachineId,
        dst: MachineId,
        msg: Message,
    ) -> Result<Message, TransportError>;

    /// Allocates the next sequence number for the `src → dst` link.
    fn alloc_seq(&self, src: MachineId, dst: MachineId) -> u64;

    /// Puts one physical copy of `env` into `dst`'s mailbox (charged as one
    /// envelope). Posting the same envelope twice models network
    /// duplication; the drain side suppresses the second copy.
    fn post_envelope(&self, dst: MachineId, env: Envelope);

    /// Posts a one-way message from `src` into `dst`'s mailbox (charged as
    /// one envelope): allocates a fresh sequence number and sends one copy.
    fn post(&self, src: MachineId, dst: MachineId, msg: Message) {
        let seq = self.alloc_seq(src, dst);
        self.post_envelope(dst, Envelope { src, seq, msg });
    }

    /// Removes and returns every message posted to `dst`, in arrival order,
    /// with duplicate `(src, seq)` deliveries suppressed.
    fn drain(&self, dst: MachineId) -> Vec<Envelope>;
}

/// In-process [`Transport`] over a shared [`MemoryCloud`].
///
/// Requests are served inline against the **destination's** partition only —
/// the handler plays the role of the remote machine's message loop, so the
/// requester never touches foreign memory; it gets owned [`CellBuf`]s /
/// id vectors back. One-way messages go through per-machine mailboxes
/// (mutex-guarded vectors). All envelopes are recorded on the cloud's
/// traffic matrix with their actual [`Message::wire_bytes`] size; envelopes
/// between co-located endpoints are recorded on the diagonal and therefore
/// free, like every other local access.
pub struct ChannelTransport<'c> {
    cloud: &'c MemoryCloud,
    mailboxes: Vec<Mutex<Mailbox>>,
    /// Next sequence number per `src → dst` link, row-major `src * n + dst`.
    seqs: Vec<AtomicU64>,
    /// Cooperative per-exchange deadline; `None` waits forever.
    exchange_timeout: Option<Duration>,
    /// Injected handler stalls per machine (chaos/test instrumentation).
    stalls: Mutex<Vec<Option<Duration>>>,
    duplicates_suppressed: AtomicU64,
}

/// One machine's inbox: queued envelopes plus every `(src, seq)` identity it
/// has ever accepted, so re-deliveries are suppressed even across drains.
#[derive(Default)]
struct Mailbox {
    queue: Vec<Envelope>,
    seen: HashSet<(u16, u64)>,
}

impl std::fmt::Debug for ChannelTransport<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("machines", &self.mailboxes.len())
            .finish()
    }
}

impl<'c> ChannelTransport<'c> {
    /// Creates a transport connecting the machines of `cloud`.
    pub fn new(cloud: &'c MemoryCloud) -> Self {
        let n = cloud.num_machines();
        ChannelTransport {
            cloud,
            mailboxes: (0..n).map(|_| Mutex::new(Mailbox::default())).collect(),
            seqs: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            exchange_timeout: None,
            stalls: Mutex::new(vec![None; n]),
            duplicates_suppressed: AtomicU64::new(0),
        }
    }

    /// Bounds every [`Transport::exchange`] through this transport: a
    /// handler that has not answered within `timeout` fails with
    /// [`TransportError::Timeout`] instead of blocking its caller forever.
    pub fn with_exchange_timeout(mut self, timeout: Duration) -> Self {
        self.exchange_timeout = Some(timeout);
        self
    }

    /// Makes machine `m`'s request handler sit idle for `stall` before
    /// serving each exchange — a wedged peer, for timeout tests and chaos
    /// runs. The stall is cooperative: with an exchange timeout configured
    /// the caller gets [`TransportError::Timeout`] at the deadline instead
    /// of waiting out the full stall.
    pub fn stall_machine(&self, m: MachineId, stall: Duration) {
        self.stalls.lock().expect("stalls poisoned")[m.index()] = Some(stall);
    }

    /// Number of duplicate envelope deliveries suppressed on drain.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed.load(Ordering::Relaxed)
    }

    /// Serves a request against machine `dst`'s own partition.
    fn handle(&self, dst: MachineId, msg: &Message) -> Result<Message, TransportError> {
        let partition = self.cloud.partition(dst);
        match msg {
            Message::LoadRequest {
                ids,
                with_neighbors,
            } => Ok(Message::LoadReply {
                cells: ids
                    .iter()
                    .filter_map(|&id| partition.load(id))
                    .map(|c| {
                        if *with_neighbors {
                            c.to_owned()
                        } else {
                            CellBuf {
                                id: c.id,
                                label: c.label,
                                neighbors: Vec::new(),
                            }
                        }
                    })
                    .collect(),
            }),
            Message::GetIdsRequest { label } => Ok(Message::GetIdsReply {
                ids: partition.vertices_with_label(*label).to_vec(),
            }),
            other => Err(TransportError::NotARequest { got: other.kind() }),
        }
    }

    fn record(&self, src: MachineId, dst: MachineId, msg: &Message) {
        self.cloud.network().record(src, dst, msg.wire_bytes());
    }
}

impl Transport for ChannelTransport<'_> {
    fn exchange(
        &self,
        src: MachineId,
        dst: MachineId,
        msg: Message,
    ) -> Result<Message, TransportError> {
        if !msg.is_request() {
            // A non-request has no reply; refuse before charging the wire.
            return Err(TransportError::NotARequest { got: msg.kind() });
        }
        self.record(src, dst, &msg);
        let started = Instant::now();
        let stall = self.stalls.lock().expect("stalls poisoned")[dst.index()];
        if let Some(stall) = stall {
            // Simulate the wedged handler in bounded slices so a configured
            // timeout aborts the wait instead of sleeping out the stall.
            let mut served = Duration::ZERO;
            while served < stall {
                if let Some(limit) = self.exchange_timeout {
                    if started.elapsed() >= limit {
                        return Err(TransportError::Timeout {
                            dst,
                            phase: msg.kind(),
                        });
                    }
                }
                let slice = (stall - served).min(Duration::from_micros(500));
                std::thread::sleep(slice);
                served += slice;
            }
        }
        let reply = self.handle(dst, &msg)?;
        if let Some(limit) = self.exchange_timeout {
            if started.elapsed() >= limit {
                // The reply exists but arrived past the deadline; the caller
                // has already given up on this attempt.
                return Err(TransportError::Timeout {
                    dst,
                    phase: msg.kind(),
                });
            }
        }
        self.record(dst, src, &reply);
        Ok(reply)
    }

    fn alloc_seq(&self, src: MachineId, dst: MachineId) -> u64 {
        let n = self.mailboxes.len();
        self.seqs[src.index() * n + dst.index()].fetch_add(1, Ordering::Relaxed)
    }

    fn post_envelope(&self, dst: MachineId, env: Envelope) {
        self.record(env.src, dst, &env.msg);
        self.mailboxes[dst.index()]
            .lock()
            .expect("mailbox poisoned")
            .queue
            .push(env);
    }

    fn drain(&self, dst: MachineId) -> Vec<Envelope> {
        let mut box_ = self.mailboxes[dst.index()]
            .lock()
            .expect("mailbox poisoned");
        let queue = std::mem::take(&mut box_.queue);
        let mut out = Vec::with_capacity(queue.len());
        for env in queue {
            if box_.seen.insert((env.src.0, env.seq)) {
                out.push(env);
            } else {
                self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }
}

// The executor shares one transport across worker threads (one logical
// machine per work item); pin thread safety at compile time like the cloud
// does.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<ChannelTransport<'static>>();
    assert_send_sync::<Message>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::cost::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// Triangle a(0)-b(1)-c(2)-a(0) plus a pendant d(3) on c, over `machines`.
    fn small_cloud(machines: usize) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(0), "a");
        b.add_vertex(v(1), "b");
        b.add_vertex(v(2), "c");
        b.add_vertex(v(3), "d");
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(0));
        b.add_edge(v(2), v(3));
        b.build(machines, CostModel::default())
    }

    #[test]
    fn load_exchange_returns_owned_cells_in_request_order() {
        let cloud = small_cloud(3);
        let transport = ChannelTransport::new(&cloud);
        let owner = cloud.machine_of(v(2));
        let src = cloud.machines().find(|&m| m != owner).unwrap();
        cloud.reset_traffic();
        let reply = transport
            .exchange(
                src,
                owner,
                Message::LoadRequest {
                    ids: vec![v(2), v(999)],
                    with_neighbors: true,
                },
            )
            .unwrap();
        let Message::LoadReply { cells } = reply else {
            panic!("expected LoadReply");
        };
        // v(999) does not exist; v(2) comes back owned with its 3 neighbors.
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].id, v(2));
        assert_eq!(cells[0].neighbors, vec![v(0), v(1), v(3)]);
        // Request + reply were both charged as one envelope each.
        assert_eq!(cloud.traffic().total_messages(), 2);
        assert!(cloud.traffic().total_bytes() >= cells[0].wire_bytes());
        // No direct remote read happened: the handler served its own
        // partition.
        assert_eq!(cloud.network().direct_remote_reads(), 0);
    }

    #[test]
    fn get_ids_exchange_returns_remote_postings() {
        let cloud = small_cloud(4);
        let transport = ChannelTransport::new(&cloud);
        let label = cloud.labels().get("d").unwrap();
        let owner = cloud.machine_of(v(3));
        let src = cloud.machines().find(|&m| m != owner).unwrap();
        let reply = transport
            .exchange(src, owner, Message::GetIdsRequest { label })
            .unwrap();
        assert_eq!(reply, Message::GetIdsReply { ids: vec![v(3)] });
    }

    #[test]
    fn non_request_exchange_is_a_typed_error_not_a_panic() {
        let cloud = small_cloud(2);
        let transport = ChannelTransport::new(&cloud);
        cloud.reset_traffic();
        let err = transport
            .exchange(
                MachineId(0),
                MachineId(1),
                Message::BindingDelta { cols: vec![] },
            )
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::NotARequest {
                got: "BindingDelta"
            }
        );
        assert!(err.to_string().contains("BindingDelta"));
        // The refused envelope was never charged to the wire.
        assert_eq!(cloud.traffic().total_messages(), 0);
        let err = transport
            .exchange(
                MachineId(0),
                MachineId(1),
                Message::LoadReply { cells: vec![] },
            )
            .unwrap_err();
        assert_eq!(err, TransportError::NotARequest { got: "LoadReply" });
    }

    #[test]
    fn transport_error_displays_are_informative() {
        let e = TransportError::UnexpectedReply {
            expected: "LoadReply",
            got: "GetIdsReply",
        };
        assert!(e.to_string().contains("LoadReply"));
        assert!(e.to_string().contains("GetIdsReply"));
        let e = TransportError::UnexpectedMessage {
            phase: "binding sync",
            got: "JoinRows",
        };
        assert!(e.to_string().contains("binding sync"));
        let e = TransportError::MalformedPayload {
            detail: "rows not a multiple of columns".into(),
        };
        assert!(e.to_string().contains("multiple"));
    }

    #[test]
    fn mailboxes_preserve_posting_order_and_drain_empties() {
        let cloud = small_cloud(2);
        let transport = ChannelTransport::new(&cloud);
        let (m0, m1) = (MachineId(0), MachineId(1));
        transport.post(
            m1,
            m0,
            Message::BindingDelta {
                cols: vec![(0, vec![v(1)])],
            },
        );
        transport.post(
            m1,
            m0,
            Message::JoinRows {
                stwig: 0,
                columns: vec![0, 1],
                rows: vec![v(1), v(2)],
            },
        );
        let drained = transport.drain(m0);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].src, m1);
        assert!(matches!(drained[0].msg, Message::BindingDelta { .. }));
        assert!(matches!(drained[1].msg, Message::JoinRows { .. }));
        // Sequence numbers are per-link and consecutive.
        assert_eq!(drained[0].seq, 0);
        assert_eq!(drained[1].seq, 1);
        assert!(transport.drain(m0).is_empty());
        // The other mailbox was untouched.
        assert!(transport.drain(m1).is_empty());
    }

    #[test]
    fn duplicate_envelopes_are_suppressed_on_drain() {
        let cloud = small_cloud(2);
        let transport = ChannelTransport::new(&cloud);
        let (m0, m1) = (MachineId(0), MachineId(1));
        let msg = Message::BindingDelta {
            cols: vec![(0, vec![v(1)])],
        };
        let seq = transport.alloc_seq(m1, m0);
        let env = Envelope {
            src: m1,
            seq,
            msg: msg.clone(),
        };
        // The network delivered the same logical send twice …
        transport.post_envelope(m0, env.clone());
        transport.post_envelope(m0, env.clone());
        let drained = transport.drain(m0);
        // … but the consumer observes it exactly once.
        assert_eq!(drained.len(), 1);
        assert_eq!(transport.duplicates_suppressed(), 1);
        // Even a late re-delivery after the drain stays suppressed.
        transport.post_envelope(m0, env);
        assert!(transport.drain(m0).is_empty());
        assert_eq!(transport.duplicates_suppressed(), 2);
        // A genuinely new send is delivered.
        transport.post(m1, m0, msg);
        assert_eq!(transport.drain(m0).len(), 1);
    }

    #[test]
    fn stalled_handler_times_out_with_typed_error() {
        let cloud = small_cloud(2);
        let transport =
            ChannelTransport::new(&cloud).with_exchange_timeout(Duration::from_millis(20));
        let owner = cloud.machine_of(v(0));
        let src = cloud.machines().find(|&m| m != owner).unwrap();
        // The peer wedges for far longer than the timeout.
        transport.stall_machine(owner, Duration::from_secs(5));
        let started = Instant::now();
        let err = transport
            .exchange(
                src,
                owner,
                Message::LoadRequest {
                    ids: vec![v(0)],
                    with_neighbors: false,
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Timeout {
                dst: owner,
                phase: "LoadRequest"
            }
        );
        assert!(err.is_transient());
        // The caller got its answer at the deadline, not after the stall.
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn short_stall_within_timeout_still_answers() {
        let cloud = small_cloud(2);
        let transport = ChannelTransport::new(&cloud).with_exchange_timeout(Duration::from_secs(5));
        let owner = cloud.machine_of(v(0));
        let src = cloud.machines().find(|&m| m != owner).unwrap();
        transport.stall_machine(owner, Duration::from_millis(2));
        let reply = transport
            .exchange(
                src,
                owner,
                Message::LoadRequest {
                    ids: vec![v(0)],
                    with_neighbors: false,
                },
            )
            .unwrap();
        assert!(matches!(reply, Message::LoadReply { .. }));
    }

    #[test]
    fn transient_classification_of_errors() {
        let m = MachineId(1);
        assert!(TransportError::Unavailable { dst: m }.is_transient());
        assert!(TransportError::CorruptPayload { dst: m }.is_transient());
        assert!(!TransportError::MachineDown { dst: m }.is_transient());
        assert!(!TransportError::NotARequest { got: "LoadReply" }.is_transient());
        assert!(TransportError::MachineDown { dst: m }
            .to_string()
            .contains("M1"));
        assert!(TransportError::Unavailable { dst: m }
            .to_string()
            .contains("unavailable"));
    }

    #[test]
    fn every_envelope_is_charged_with_actual_payload() {
        let cloud = small_cloud(2);
        let transport = ChannelTransport::new(&cloud);
        cloud.reset_traffic();
        let msg = Message::JoinRows {
            stwig: 1,
            columns: vec![0, 1, 2],
            rows: vec![v(1); 9],
        };
        let bytes = msg.wire_bytes();
        transport.post(MachineId(0), MachineId(1), msg);
        assert_eq!(cloud.traffic().total_messages(), 1);
        assert_eq!(cloud.traffic().total_bytes(), bytes);
        // Local posts land on the diagonal: recorded, but free.
        cloud.reset_traffic();
        transport.post(
            MachineId(0),
            MachineId(0),
            Message::GetIdsRequest { label: LabelId(0) },
        );
        assert_eq!(cloud.traffic().total_messages(), 0);
        assert_eq!(transport.drain(MachineId(0)).len(), 1);
    }

    #[test]
    fn projected_load_keeps_adjacency_at_home() {
        let cloud = small_cloud(3);
        let transport = ChannelTransport::new(&cloud);
        let owner = cloud.machine_of(v(2));
        let src = cloud.machines().find(|&m| m != owner).unwrap();
        let reply = transport
            .exchange(
                src,
                owner,
                Message::LoadRequest {
                    ids: vec![v(2)],
                    with_neighbors: false,
                },
            )
            .unwrap();
        let Message::LoadReply { cells } = &reply else {
            panic!("expected LoadReply");
        };
        assert_eq!(cells[0].label, cloud.labels().get("c").unwrap());
        assert!(
            cells[0].neighbors.is_empty(),
            "projected cells must not ship adjacency"
        );
        // The projection is what the wire is charged for.
        let full = transport
            .exchange(
                src,
                owner,
                Message::LoadRequest {
                    ids: vec![v(2)],
                    with_neighbors: true,
                },
            )
            .unwrap();
        assert!(full.wire_bytes() > reply.wire_bytes());
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = Message::LoadRequest {
            ids: vec![v(1)],
            with_neighbors: false,
        };
        let large = Message::LoadRequest {
            ids: vec![v(1); 100],
            with_neighbors: false,
        };
        assert!(large.wire_bytes() > small.wire_bytes());
        assert!(small.is_request());
        assert!(!Message::LoadReply { cells: vec![] }.is_request());
        let delta = Message::BindingDelta {
            cols: vec![(3, vec![v(1), v(2)])],
        };
        assert_eq!(delta.wire_bytes(), HEADER_BYTES + 2 + 16);
    }

    #[test]
    fn concurrent_exchanges_are_isolated_per_caller() {
        // Four threads, each playing a different machine, all exchanging with
        // every owner concurrently: replies must always match the serial
        // answer and the traffic matrix must not lose envelopes.
        let cloud = small_cloud(4);
        let transport = ChannelTransport::new(&cloud);
        cloud.reset_traffic();
        // Machine 0 sends: its own requests to remote owners, plus replies to
        // the three other callers for every vertex machine 0 owns.
        let remote_owners: u64 = (0..4u64)
            .filter(|&i| cloud.machine_of(v(i)) != MachineId(0))
            .count() as u64;
        let owned_by_zero: u64 = (0..4u64)
            .filter(|&i| cloud.machine_of(v(i)) == MachineId(0))
            .count() as u64;
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let transport = &transport;
                let cloud = &cloud;
                scope.spawn(move || {
                    let caller = MachineId(t);
                    for _ in 0..32 {
                        for i in 0..4u64 {
                            let owner = cloud.machine_of(v(i));
                            let reply = transport
                                .exchange(
                                    caller,
                                    owner,
                                    Message::LoadRequest {
                                        ids: vec![v(i)],
                                        with_neighbors: true,
                                    },
                                )
                                .unwrap();
                            let Message::LoadReply { cells } = reply else {
                                panic!("expected LoadReply");
                            };
                            assert_eq!(cells.len(), 1);
                            assert_eq!(cells[0].id, v(i));
                        }
                    }
                });
            }
        });
        let snap = cloud.traffic();
        let m0_traffic = snap.messages_from(MachineId(0));
        assert_eq!(m0_traffic, 32 * (remote_owners + 3 * owned_by_zero));
    }
}
