//! Cluster-graph machinery of §5.3.
//!
//! At load time we record, for every ordered machine pair `(i, j)`, the set of
//! label pairs `(A, B)` such that some edge `u → v` exists with `u` on machine
//! `i` labeled `A` and `v` on machine `j` labeled `B`. Given a query, the
//! *cluster graph* has an edge `i → j` iff the catalog contains a label pair
//! matching some query edge; shortest distances on it bound the distance of
//! joinable partial matches (Theorem 3) and therefore define the load sets
//! (Theorem 4).

use crate::ids::{LabelId, MachineId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Distance value for unreachable machine pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Label-pair catalog: for each ordered machine pair, the set of (source
/// label, destination label) pairs realised by at least one edge.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelPairCatalog {
    num_machines: usize,
    /// `pairs[i * num_machines + j]` = label pairs observed from machine i to j.
    pairs: Vec<HashSet<(LabelId, LabelId)>>,
}

impl LabelPairCatalog {
    /// Creates an empty catalog over `num_machines` machines.
    pub fn new(num_machines: usize) -> Self {
        LabelPairCatalog {
            num_machines,
            pairs: vec![HashSet::new(); num_machines * num_machines],
        }
    }

    /// Number of machines this catalog covers.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    #[inline]
    fn cell(&self, src: MachineId, dst: MachineId) -> usize {
        src.index() * self.num_machines + dst.index()
    }

    /// Records that an edge from a vertex labeled `src_label` on `src` to a
    /// vertex labeled `dst_label` on `dst` exists.
    pub fn record_edge(
        &mut self,
        src: MachineId,
        src_label: LabelId,
        dst: MachineId,
        dst_label: LabelId,
    ) {
        let cell = self.cell(src, dst);
        self.pairs[cell].insert((src_label, dst_label));
    }

    /// Whether any edge with the given label pair exists from `src` to `dst`.
    pub fn has_pair(
        &self,
        src: MachineId,
        src_label: LabelId,
        dst: MachineId,
        dst_label: LabelId,
    ) -> bool {
        self.pairs[self.cell(src, dst)].contains(&(src_label, dst_label))
    }

    /// Number of distinct label pairs recorded between `src` and `dst`.
    pub fn pair_count(&self, src: MachineId, dst: MachineId) -> usize {
        self.pairs[self.cell(src, dst)].len()
    }

    /// Total number of catalog entries (a linear-size preprocessing structure).
    pub fn total_entries(&self) -> usize {
        self.pairs.iter().map(|s| s.len()).sum()
    }
}

/// The query-specific cluster graph: vertices are machines, an (undirected)
/// edge `i – j` exists iff some query edge's label pair is realised between
/// machines `i` and `j` in either direction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterGraph {
    num_machines: usize,
    /// Adjacency lists over machine indices.
    adjacency: Vec<Vec<u16>>,
    /// All-pairs shortest distances (in hops); `UNREACHABLE` when disconnected.
    distances: Vec<u32>,
}

impl ClusterGraph {
    /// Builds the cluster graph for a query described by its set of label
    /// edges (unordered label pairs appearing as query edges).
    pub fn build(catalog: &LabelPairCatalog, query_label_edges: &[(LabelId, LabelId)]) -> Self {
        let n = catalog.num_machines();
        let mut adjacency: Vec<HashSet<u16>> = vec![HashSet::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (mi, mj) = (MachineId(i as u16), MachineId(j as u16));
                let connected = query_label_edges.iter().any(|&(a, b)| {
                    catalog.has_pair(mi, a, mj, b) || catalog.has_pair(mi, b, mj, a)
                });
                if connected {
                    adjacency[i].insert(j as u16);
                    adjacency[j].insert(i as u16);
                }
            }
        }
        let adjacency: Vec<Vec<u16>> = adjacency
            .into_iter()
            .map(|s| {
                let mut v: Vec<u16> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        let distances = all_pairs_bfs(&adjacency);
        ClusterGraph {
            num_machines: n,
            adjacency,
            distances,
        }
    }

    /// Builds a fully-connected cluster graph (every pair of distinct machines
    /// at distance 1). Useful as the conservative fallback when no catalog is
    /// available.
    pub fn complete(num_machines: usize) -> Self {
        let adjacency: Vec<Vec<u16>> = (0..num_machines)
            .map(|i| {
                (0..num_machines as u16)
                    .filter(|&j| j as usize != i)
                    .collect()
            })
            .collect();
        let distances = all_pairs_bfs(&adjacency);
        ClusterGraph {
            num_machines,
            adjacency,
            distances,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Neighbors of machine `m` in the cluster graph.
    pub fn neighbors(&self, m: MachineId) -> &[u16] {
        &self.adjacency[m.index()]
    }

    /// Shortest distance `D_C(i, j)` in hops; `UNREACHABLE` if disconnected,
    /// 0 on the diagonal.
    #[inline]
    pub fn distance(&self, i: MachineId, j: MachineId) -> u32 {
        self.distances[i.index() * self.num_machines + j.index()]
    }

    /// Machines within distance `d` of machine `k` (excluding `k` itself):
    /// this is the load set `F_{k,t}` of Theorem 4 for `d = d(r_s, r_t)`.
    pub fn machines_within(&self, k: MachineId, d: u32) -> Vec<MachineId> {
        (0..self.num_machines as u16)
            .map(MachineId)
            .filter(|&j| j != k && self.distance(k, j) <= d)
            .collect()
    }

    /// Number of edges in the cluster graph.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum::<usize>() / 2
    }
}

/// All-pairs shortest paths by BFS from every vertex (the cluster graph is
/// tiny — one vertex per machine — so this is cheaper than Floyd–Warshall).
fn all_pairs_bfs(adjacency: &[Vec<u16>]) -> Vec<u32> {
    let n = adjacency.len();
    let mut dist = vec![UNREACHABLE; n * n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        dist[start * n + start] = 0;
        queue.clear();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = dist[start * n + u];
            for &w in &adjacency[u] {
                let w = w as usize;
                if dist[start * n + w] == UNREACHABLE {
                    dist[start * n + w] = du + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    dist
}

/// Communication cost `T(s)` of Eq. 2 for a candidate head STwig whose maximal
/// query-distance to any other STwig root is `d_s`: the total number of
/// machines each machine would need to contact.
pub fn communication_cost(cluster: &ClusterGraph, d_s: u32) -> u64 {
    let mut total = 0u64;
    for k in 0..cluster.num_machines() as u16 {
        total += cluster.machines_within(MachineId(k), d_s).len() as u64;
    }
    total
}

/// Convenience: a map from unordered machine pairs to whether they are
/// adjacent in the cluster graph (used in tests and diagnostics).
pub fn adjacency_map(cluster: &ClusterGraph) -> HashMap<(u16, u16), bool> {
    let mut out = HashMap::new();
    let n = cluster.num_machines() as u16;
    for i in 0..n {
        for j in (i + 1)..n {
            out.insert((i, j), cluster.distance(MachineId(i), MachineId(j)) == 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> LabelId {
        LabelId(x)
    }
    fn m(x: u16) -> MachineId {
        MachineId(x)
    }

    fn chain_catalog() -> LabelPairCatalog {
        // 4 machines in a chain 0-1-2-3 realised only by label pair (0,1).
        let mut c = LabelPairCatalog::new(4);
        c.record_edge(m(0), l(0), m(1), l(1));
        c.record_edge(m(1), l(0), m(2), l(1));
        c.record_edge(m(2), l(0), m(3), l(1));
        c
    }

    #[test]
    fn catalog_records_and_answers() {
        let c = chain_catalog();
        assert!(c.has_pair(m(0), l(0), m(1), l(1)));
        assert!(!c.has_pair(m(1), l(0), m(0), l(1)));
        assert!(!c.has_pair(m(0), l(1), m(1), l(0)));
        assert_eq!(c.pair_count(m(0), m(1)), 1);
        assert_eq!(c.total_entries(), 3);
    }

    #[test]
    fn cluster_graph_respects_query_labels() {
        let c = chain_catalog();
        // Query uses the label pair that exists → chain topology.
        let cg = ClusterGraph::build(&c, &[(l(0), l(1))]);
        assert_eq!(cg.distance(m(0), m(1)), 1);
        assert_eq!(cg.distance(m(0), m(2)), 2);
        assert_eq!(cg.distance(m(0), m(3)), 3);
        assert_eq!(cg.num_edges(), 3);
        // Query uses a label pair that never occurs → empty cluster graph.
        let cg2 = ClusterGraph::build(&c, &[(l(5), l(6))]);
        assert_eq!(cg2.distance(m(0), m(1)), UNREACHABLE);
        assert_eq!(cg2.num_edges(), 0);
    }

    #[test]
    fn cluster_graph_is_symmetric_for_reversed_label_pair() {
        let c = chain_catalog();
        // (l1, l0) reversed should still connect because we check both directions.
        let cg = ClusterGraph::build(&c, &[(l(1), l(0))]);
        assert_eq!(cg.distance(m(0), m(1)), 1);
    }

    #[test]
    fn complete_graph_distances() {
        let cg = ClusterGraph::complete(5);
        for i in 0..5u16 {
            for j in 0..5u16 {
                let expected = if i == j { 0 } else { 1 };
                assert_eq!(cg.distance(m(i), m(j)), expected);
            }
        }
        assert_eq!(cg.num_edges(), 10);
    }

    #[test]
    fn machines_within_matches_distances() {
        let c = chain_catalog();
        let cg = ClusterGraph::build(&c, &[(l(0), l(1))]);
        assert_eq!(cg.machines_within(m(0), 0), vec![]);
        assert_eq!(cg.machines_within(m(0), 1), vec![m(1)]);
        assert_eq!(cg.machines_within(m(0), 2), vec![m(1), m(2)]);
        assert_eq!(cg.machines_within(m(1), 1), vec![m(0), m(2)]);
    }

    #[test]
    fn communication_cost_grows_with_radius() {
        let c = chain_catalog();
        let cg = ClusterGraph::build(&c, &[(l(0), l(1))]);
        let c0 = communication_cost(&cg, 0);
        let c1 = communication_cost(&cg, 1);
        let c3 = communication_cost(&cg, 3);
        assert_eq!(c0, 0);
        assert!(c1 < c3);
        // chain of 4: radius 3 reaches everyone from everyone = 4*3
        assert_eq!(c3, 12);
    }

    #[test]
    fn adjacency_map_reports_edges() {
        let c = chain_catalog();
        let cg = ClusterGraph::build(&c, &[(l(0), l(1))]);
        let map = adjacency_map(&cg);
        assert!(map[&(0, 1)]);
        assert!(!map[&(0, 3)]);
    }

    #[test]
    fn single_machine_cluster() {
        let c = LabelPairCatalog::new(1);
        let cg = ClusterGraph::build(&c, &[(l(0), l(1))]);
        assert_eq!(cg.num_machines(), 1);
        assert_eq!(cg.distance(m(0), m(0)), 0);
        assert_eq!(cg.machines_within(m(0), 10), vec![]);
    }
}
