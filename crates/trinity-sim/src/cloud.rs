//! The memory cloud: a labeled graph hash-partitioned across logical
//! machines, exposing the paper's three atomic operators
//! (`Cloud.Load`, `Index.getID`, `Index.hasLabel`) plus traffic accounting.

use crate::cluster_graph::LabelPairCatalog;
use crate::compact::{Neighbors, Postings, StorageTier};
use crate::ids::{LabelId, LabelInterner, MachineId, VertexId};
use crate::network::{CostModel, Network, TrafficSnapshot};
use crate::partition::{Cell, Partition, StorageBytes};

/// Size, in bytes, charged for shipping one vertex id over the network.
pub const VERTEX_ID_BYTES: u64 = 8;
/// Size, in bytes, charged for a small control message (e.g. a label probe).
pub const PROBE_BYTES: u64 = 16;

/// Deterministic vertex → machine assignment.
///
/// The paper randomly partitions the graph by hashing node ids; we use a
/// Fibonacci-style multiplicative hash so that consecutive ids spread evenly.
#[inline]
pub fn machine_for(id: VertexId, num_machines: usize) -> MachineId {
    debug_assert!(num_machines > 0 && num_machines <= u16::MAX as usize);
    let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    MachineId((h % num_machines as u64) as u16)
}

/// A labeled graph stored across `P` logical machines.
///
/// All reads go through methods that take the *calling* machine so that
/// cross-partition accesses can be charged to the simulated [`Network`].
///
/// # Ownership invariant
///
/// Data crosses a partition boundary **by value only**: a machine that needs
/// another machine's cells or postings sends a batched request over a
/// [`crate::transport::Transport`] and receives owned
/// [`crate::partition::CellBuf`]s / id vectors back. The remaining access
/// surfaces fall into three tiers:
///
/// * **Partition-local** (`load_local`, `label_of_local`, `owns_local`,
///   `get_ids`): only ever touch the calling machine's own partition — the
///   operators a message-passing executor is allowed to use.
/// * **Direct-read** (`load`, `has_label`): may dereference a *remote*
///   partition in place, handing out borrows of foreign memory
///   (`Cell<'_>` borrowing the owner's adjacency). They model Trinity's
///   one-sided reads for the legacy `DirectRead` execution mode, charge
///   estimated traffic, and tally every remote dereference via
///   [`Network::direct_remote_reads`] so tests can prove an execution
///   performed none.
/// * **Global** (`*_global`, `all_ids_with_label`, `iter_vertices`,
///   `contains_vertex`): bypass both accounting and ownership. They exist
///   solely for graph construction, statistics, result verification and the
///   single-machine baselines (Ullmann/VF2/edge-join assume a fully
///   addressable graph); distributed execution must not call them.
///
/// Fields are crate-visible so the epoch manager ([`crate::epoch`]) can
/// assemble successor snapshots directly; everything outside the crate goes
/// through the accessors. Cloning is cheap by construction — partitions are
/// `Arc`-backed and the network/catalog are shared — so an epoch snapshot is
/// a handful of `Arc` bumps plus the frequency table.
#[derive(Debug, Clone)]
pub struct MemoryCloud {
    pub(crate) partitions: Vec<Partition>,
    pub(crate) interner: LabelInterner,
    /// Shared across every snapshot of a lineage: traffic accounting spans
    /// epochs, and queries pinned to different epochs charge one ledger.
    pub(crate) network: std::sync::Arc<Network>,
    /// Global number of vertices carrying each label, indexed by `LabelId`.
    pub(crate) label_frequency: Vec<u64>,
    /// Catalog of label pairs observed between each machine pair; feeds the
    /// query-specific cluster graph of §5.3. `Arc`-shared between snapshots
    /// and replaced copy-on-write when an update adds pairs.
    pub(crate) catalog: std::sync::Arc<LabelPairCatalog>,
    pub(crate) num_vertices: u64,
    pub(crate) num_edges: u64,
    pub(crate) directed: bool,
    /// Epoch this snapshot observes: 0 for a freshly built (static) cloud,
    /// bumped by every effective [`crate::epoch::GraphEpochs::apply`].
    pub(crate) epoch: u64,
    /// Nonzero id tying every snapshot of one [`crate::epoch::GraphEpochs`]
    /// together (0 for static clouds never handed to an epoch manager).
    /// Snapshots of the same lineage differ only by their epoch's deltas.
    pub(crate) lineage: u64,
    /// Per-epoch touched-label log of this lineage, when managed.
    pub(crate) epoch_labels: Option<std::sync::Arc<crate::epoch::EpochLabelLog>>,
}

// The distributed executor — and, one level up, the multi-query engine's
// worker pool — shares one `&MemoryCloud` across worker threads: every
// component is either plain owned data (partitions, interner, catalog,
// frequency table) or atomics (the network counters), so the cloud is
// `Send + Sync` by construction. These assertions turn an accidental
// introduction of non-thread-safe interior mutability (`Cell`, `Rc`, ...)
// into a compile error instead of a runtime surprise. `Cell<'_>` (the value
// `Cloud.Load` hands out, borrowing a partition's adjacency) is asserted
// too: concurrent queries hold cells across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<MemoryCloud>();
    assert_send_sync::<Partition>();
    assert_send_sync::<Network>();
    assert_send_sync::<LabelInterner>();
    assert_send_sync::<LabelPairCatalog>();
    assert_send_sync::<Cell<'static>>();
};

impl MemoryCloud {
    /// Assembles a cloud from already-partitioned data. Intended to be called
    /// by [`crate::builder::GraphBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        partitions: Vec<Partition>,
        interner: LabelInterner,
        cost: CostModel,
        label_frequency: Vec<u64>,
        catalog: LabelPairCatalog,
        num_vertices: u64,
        num_edges: u64,
        directed: bool,
    ) -> Self {
        let network = std::sync::Arc::new(Network::new(partitions.len(), cost));
        MemoryCloud {
            partitions,
            interner,
            network,
            label_frequency,
            catalog: std::sync::Arc::new(catalog),
            num_vertices,
            num_edges,
            directed,
            epoch: 0,
            lineage: 0,
            epoch_labels: None,
        }
    }

    // ------------------------------------------------------------------
    // Epoch metadata (see `crate::epoch`)
    // ------------------------------------------------------------------

    /// The epoch this snapshot observes. A freshly built cloud is epoch 0;
    /// every effective update batch applied through a
    /// [`crate::epoch::GraphEpochs`] advances it by one. Sealing merges
    /// overlays without changing observable content, so it keeps the epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nonzero lineage id shared by every snapshot of one
    /// [`crate::epoch::GraphEpochs`]; 0 for static clouds. Two clouds with
    /// the same nonzero lineage hold the same graph *history* — only their
    /// [`MemoryCloud::epoch`] distinguishes them.
    #[inline]
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// The lineage's per-epoch touched-label log, when this snapshot is
    /// managed by a [`crate::epoch::GraphEpochs`]. Caches use it to prove a
    /// stale entry's labels were untouched and revalidate it in place.
    pub fn epoch_label_log(&self) -> Option<&crate::epoch::EpochLabelLog> {
        self.epoch_labels.as_deref()
    }

    // ------------------------------------------------------------------
    // Topology & metadata
    // ------------------------------------------------------------------

    /// Number of logical machines the graph is partitioned over.
    pub fn num_machines(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of vertices in the cloud.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Total number of (undirected) edges in the cloud.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Whether the graph was built as a directed graph (adjacency is still
    /// symmetrized for exploration; see `GraphBuilder`).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The label interner (string ⇄ id mapping).
    pub fn labels(&self) -> &LabelInterner {
        &self.interner
    }

    /// The machine that owns `id`.
    #[inline]
    pub fn machine_of(&self, id: VertexId) -> MachineId {
        machine_for(id, self.partitions.len())
    }

    /// The partition owned by `machine`.
    pub fn partition(&self, machine: MachineId) -> &Partition {
        &self.partitions[machine.index()]
    }

    /// All machine ids.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> {
        (0..self.partitions.len() as u16).map(MachineId)
    }

    /// The traffic-accounting network layer.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The label-pair catalog used to build query-specific cluster graphs.
    pub fn catalog(&self) -> &LabelPairCatalog {
        &self.catalog
    }

    /// Number of vertices in the whole cloud carrying `label` (the `freq(l)`
    /// statistic used by the f-value ranking in §5.2).
    pub fn label_frequency(&self, label: LabelId) -> u64 {
        self.label_frequency
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// The neighborhood-label signature of vertex `id`, looked up in its
    /// owner's [`crate::neighbor_index::NeighborLabelIndex`]. Returns `None`
    /// when the vertex does not exist or its partition was built without
    /// the pruning index (pruning is then simply disabled for it).
    ///
    /// Like the global statistics, signature probes are *not* charged to the
    /// network: the distributed executor only ever prunes roots owned by the
    /// executing machine, so the lookup is partition-local there; the
    /// single-coordinator path treats the 8-byte-per-vertex signature tier
    /// as replicated index metadata.
    #[inline]
    pub fn signature_of(&self, id: VertexId) -> Option<u64> {
        self.partitions[self.machine_of(id).index()].signature_of(id)
    }

    /// Cloud-wide count of adjacency entries whose endpoint labels are
    /// `(a, b)` in either order — the selectivity statistic behind the
    /// label-pair-aware cost models. Every (symmetrized) edge with resolved
    /// endpoint labels is counted once per endpoint.
    pub fn label_pair_count(&self, a: LabelId, b: LabelId) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.pair_table().count(a, b))
            .sum()
    }

    /// Total adjacency entries recorded in the label-pair tables (the
    /// normalizer for [`MemoryCloud::label_pair_count`] selectivities).
    pub fn label_pair_total(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.pair_table().total_entries())
            .sum()
    }

    /// Per-partition signature widths in bits (`None` for partitions built
    /// without the pruning index). Part of the cloud fingerprint: result
    /// tables computed with and without pruning indexes must never alias in
    /// a cache.
    pub fn signature_configuration(&self) -> Vec<Option<u32>> {
        self.partitions.iter().map(|p| p.signature_bits()).collect()
    }

    /// Signature bytes per vertex paid by the pruning index (0 when no
    /// partition carries one).
    pub fn signature_bytes_per_vertex(&self) -> usize {
        if self.partitions.iter().any(|p| p.signature_bits().is_some()) {
            crate::neighbor_index::SIGNATURE_BYTES_PER_VERTEX
        } else {
            0
        }
    }

    /// Per-partition storage tiers. Like
    /// [`MemoryCloud::signature_configuration`], this is part of the cloud
    /// fingerprint: compact and plain clouds produce bit-identical tables by
    /// construction, but the fingerprint must still distinguish physical
    /// configurations so a representation bug can never silently serve a
    /// stale cached table across tiers.
    pub fn storage_configuration(&self) -> Vec<StorageTier> {
        self.partitions.iter().map(|p| p.storage_tier()).collect()
    }

    /// Cloud-wide resident bytes broken down by storage component (summed
    /// over all partitions).
    pub fn storage_bytes(&self) -> StorageBytes {
        let mut total = StorageBytes::default();
        for p in &self.partitions {
            total += p.storage_bytes();
        }
        total
    }

    /// Approximate total memory footprint of the stored graph (all partitions
    /// plus the label frequency table), in bytes. This is the quantity the
    /// paper's Table 1 reports as "index size + graph size" for STwig.
    pub fn memory_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.memory_bytes())
            .sum::<usize>()
            + self.label_frequency.len() * std::mem::size_of::<u64>()
    }

    // ------------------------------------------------------------------
    // The paper's atomic operators (traffic-accounted)
    // ------------------------------------------------------------------

    /// `Cloud.Load(id)`: locate the vertex `id` and return its cell (label +
    /// neighbor ids). `caller` is the machine performing the access; if the
    /// vertex lives on another machine a round-trip is charged **and the
    /// access is tallied as a direct remote read** (see the ownership
    /// invariant in the type docs) — message-passing execution uses
    /// [`MemoryCloud::load_local`] plus transport batches instead.
    pub fn load(&self, caller: MachineId, id: VertexId) -> Option<Cell<'_>> {
        let owner = self.machine_of(id);
        let cell = self.partitions[owner.index()].load(id)?;
        if owner != caller {
            // Request + reply carrying the neighbor list.
            self.network.record_direct_remote_read();
            self.network.record(caller, owner, PROBE_BYTES);
            self.network
                .record(owner, caller, cell.neighbors.len() as u64 * VERTEX_ID_BYTES);
        }
        Some(cell)
    }

    // ------------------------------------------------------------------
    // Partition-local operators (the message-passing executor's surface)
    // ------------------------------------------------------------------

    /// Loads the cell of a vertex **owned by `machine`**. Returns `None` when
    /// the vertex lives elsewhere (or nowhere): a partition-local executor
    /// must then request it over the transport rather than dereference the
    /// remote partition.
    #[inline]
    pub fn load_local(&self, machine: MachineId, id: VertexId) -> Option<Cell<'_>> {
        self.partitions[machine.index()].load(id)
    }

    /// Label of a vertex owned by `machine`; `None` when it lives elsewhere.
    #[inline]
    pub fn label_of_local(&self, machine: MachineId, id: VertexId) -> Option<LabelId> {
        self.partitions[machine.index()].label_of(id)
    }

    /// Whether `machine` owns vertex `id` (a pure hash computation — owning
    /// machines can answer this for any id without communication).
    #[inline]
    pub fn owns_local(&self, machine: MachineId, id: VertexId) -> bool {
        self.machine_of(id) == machine
    }

    /// `Index.getID(label)`: ids of vertices with `label` that are local to
    /// `caller`. Never touches the network — each machine's string index only
    /// covers its own vertices.
    #[inline]
    pub fn get_ids(&self, caller: MachineId, label: LabelId) -> Postings<'_> {
        self.partitions[caller.index()].vertices_with_label(label)
    }

    /// `Index.hasLabel(id, label)`: whether vertex `id` carries `label`.
    /// Charged as a small probe — and tallied as a direct remote read — when
    /// `id` is remote to `caller`.
    pub fn has_label(&self, caller: MachineId, id: VertexId, label: LabelId) -> bool {
        let owner = self.machine_of(id);
        if owner != caller {
            self.network.record_direct_remote_read();
            self.network.record(caller, owner, PROBE_BYTES);
            self.network.record(owner, caller, 1);
        }
        self.partitions[owner.index()].label_of(id) == Some(label)
    }

    /// Ships `rows` result rows of `row_width` vertex ids each from machine
    /// `src` to machine `dst` (used when exchanging intermediate STwig results
    /// for the distributed join).
    pub fn ship_rows(&self, src: MachineId, dst: MachineId, rows: u64, row_width: u64) {
        if src == dst || rows == 0 {
            return;
        }
        self.network
            .record_bulk(src, dst, 1, rows * row_width * VERTEX_ID_BYTES);
    }

    /// Snapshot of the traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.network.snapshot()
    }

    /// Number of accesses since the last [`MemoryCloud::reset_traffic`] that
    /// dereferenced a remote partition in place instead of going through a
    /// transport (see the ownership invariant in the type docs).
    pub fn direct_remote_reads(&self) -> u64 {
        self.network.direct_remote_reads()
    }

    /// Resets the traffic counters (between queries).
    pub fn reset_traffic(&self) {
        self.network.reset();
    }

    // ------------------------------------------------------------------
    // Accounting-free global accessors. Per the ownership invariant (type
    // docs): construction, statistics, verification and the single-machine
    // baselines only — never distributed execution.
    // ------------------------------------------------------------------

    /// Label of `id`, bypassing traffic accounting.
    pub fn label_of_global(&self, id: VertexId) -> Option<LabelId> {
        self.partitions[self.machine_of(id).index()].label_of(id)
    }

    /// Neighbors of `id`, bypassing traffic accounting.
    pub fn neighbors_global(&self, id: VertexId) -> Neighbors<'_> {
        self.partitions[self.machine_of(id).index()]
            .load(id)
            .map(|c| c.neighbors)
            .unwrap_or_default()
    }

    /// Degree of `id`, bypassing traffic accounting.
    pub fn degree_global(&self, id: VertexId) -> usize {
        self.neighbors_global(id).len()
    }

    /// Whether the edge `(u, v)` exists, bypassing traffic accounting.
    pub fn has_edge_global(&self, u: VertexId, v: VertexId) -> bool {
        self.partitions[self.machine_of(u).index()].has_edge(u, v)
    }

    /// All vertex ids with `label` across every machine (sorted by machine,
    /// then id), bypassing traffic accounting.
    pub fn all_ids_with_label(&self, label: LabelId) -> Vec<VertexId> {
        let mut out = Vec::new();
        for p in &self.partitions {
            out.extend(p.vertices_with_label(label));
        }
        out
    }

    /// Iterates every vertex id in the cloud.
    pub fn iter_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.partitions.iter().flat_map(|p| p.iter_vertices())
    }

    /// Checks whether a vertex exists anywhere in the cloud.
    pub fn contains_vertex(&self, id: VertexId) -> bool {
        self.partitions[self.machine_of(id).index()].owns(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// Builds a small test cloud over `machines` machines:
    /// a triangle a(0)-b(1)-c(2)-a(0) plus a pendant d(3) attached to c.
    fn small_cloud(machines: usize) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(0), "a");
        b.add_vertex(v(1), "b");
        b.add_vertex(v(2), "c");
        b.add_vertex(v(3), "d");
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(0));
        b.add_edge(v(2), v(3));
        b.build(machines, CostModel::default())
    }

    #[test]
    fn machine_assignment_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 12] {
            for id in 0..1000u64 {
                let m = machine_for(v(id), n);
                assert!(m.index() < n);
                assert_eq!(m, machine_for(v(id), n));
            }
        }
    }

    #[test]
    fn machine_assignment_balances_partitions() {
        // Partition-balance property: over both a consecutive and a
        // pseudo-random id universe, the largest partition stays within 5%
        // of the smallest for every machine count we deploy with. An
        // unbalanced hash would skew per-machine exploration load and break
        // the speed-up experiments' scaling assumption.
        let universes: [(&str, Vec<u64>); 2] = [
            ("consecutive", (0..100_000u64).collect()),
            ("lcg", {
                let mut x = 0x1234_5678_9ABC_DEF0u64;
                (0..100_000)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        x
                    })
                    .collect()
            }),
        ];
        for (name, ids) in &universes {
            for n in [2usize, 4, 7, 16] {
                let mut counts = vec![0u64; n];
                for &id in ids {
                    counts[machine_for(v(id), n).index()] += 1;
                }
                let max = *counts.iter().max().unwrap();
                let min = *counts.iter().min().unwrap();
                assert!(min > 0, "empty partition ({name}, {n} machines)");
                let ratio = max as f64 / min as f64;
                assert!(
                    ratio <= 1.05,
                    "partition imbalance {ratio:.4} ({name}, {n} machines)"
                );
            }
        }
    }

    #[test]
    fn machine_assignment_is_pinned() {
        // Regression pin: `machine_for` is part of the on-disk/persistent
        // contract — partition layouts, cached cloud fingerprints and the
        // cache's per-machine canonical tables all assume this exact
        // assignment. If the hash constant or reduction ever changes, this
        // test must fail loudly rather than silently invalidating them.
        let pins: [(u64, usize, u16); 12] = [
            (0, 4, 0),
            (1, 4, 1),
            (2, 4, 2),
            (42, 4, 2),
            (1_000_000, 4, 0),
            (0, 7, 0),
            (1, 7, 4),
            (12_345, 7, 4),
            (987_654_321, 7, 2),
            (1, 16, 5),
            (255, 16, 11),
            (1_000_000_007, 16, 3),
        ];
        for (id, machines, expected) in pins {
            assert_eq!(
                machine_for(v(id), machines),
                MachineId(expected),
                "machine_for({id}, {machines}) changed — cached fingerprints \
                 and partition layouts would silently go stale"
            );
        }
    }

    #[test]
    fn load_returns_cell_and_charges_remote_access() {
        let cloud = small_cloud(4);
        let id = v(2);
        let owner = cloud.machine_of(id);
        let other = cloud
            .machines()
            .find(|&m| m != owner)
            .expect("at least two machines");
        cloud.reset_traffic();
        let cell = cloud.load(other, id).unwrap();
        assert_eq!(cloud.labels().name(cell.label), Some("c"));
        assert_eq!(cell.neighbors.len(), 3);
        assert!(cloud.traffic().total_messages() >= 2);

        cloud.reset_traffic();
        let _ = cloud.load(owner, id).unwrap();
        assert_eq!(cloud.traffic().total_messages(), 0);
    }

    #[test]
    fn get_ids_is_local_only() {
        let cloud = small_cloud(2);
        let label = cloud.labels().get("a").unwrap();
        cloud.reset_traffic();
        let mut found = 0;
        for m in cloud.machines() {
            found += cloud.get_ids(m, label).len();
        }
        assert_eq!(found, 1);
        assert_eq!(cloud.traffic().total_messages(), 0);
    }

    #[test]
    fn has_label_answers_correctly() {
        let cloud = small_cloud(3);
        let la = cloud.labels().get("a").unwrap();
        let lb = cloud.labels().get("b").unwrap();
        let caller = MachineId(0);
        assert!(cloud.has_label(caller, v(0), la));
        assert!(!cloud.has_label(caller, v(0), lb));
        assert!(!cloud.has_label(caller, v(999), la));
    }

    #[test]
    fn global_accessors_bypass_network() {
        let cloud = small_cloud(4);
        cloud.reset_traffic();
        assert_eq!(cloud.neighbors_global(v(2)).len(), 3);
        assert_eq!(cloud.degree_global(v(3)), 1);
        assert!(cloud.has_edge_global(v(0), v(1)));
        assert!(!cloud.has_edge_global(v(0), v(3)));
        assert_eq!(
            cloud.label_of_global(v(1)),
            Some(cloud.labels().get("b").unwrap())
        );
        assert_eq!(cloud.traffic().total_messages(), 0);
    }

    #[test]
    fn label_frequency_counts_all_machines() {
        let cloud = small_cloud(4);
        for name in ["a", "b", "c", "d"] {
            let l = cloud.labels().get(name).unwrap();
            assert_eq!(cloud.label_frequency(l), 1, "label {name}");
        }
    }

    #[test]
    fn all_ids_with_label_unions_machines() {
        let cloud = small_cloud(4);
        let l = cloud.labels().get("d").unwrap();
        assert_eq!(cloud.all_ids_with_label(l), vec![v(3)]);
    }

    #[test]
    fn ship_rows_records_bytes() {
        let cloud = small_cloud(2);
        cloud.reset_traffic();
        cloud.ship_rows(MachineId(0), MachineId(1), 10, 3);
        assert_eq!(cloud.traffic().total_bytes(), 10 * 3 * VERTEX_ID_BYTES);
        // local shipping is free
        cloud.ship_rows(MachineId(0), MachineId(0), 10, 3);
        assert_eq!(cloud.traffic().total_bytes(), 10 * 3 * VERTEX_ID_BYTES);
    }

    #[test]
    fn concurrent_readers_see_consistent_data() {
        // The multi-query engine drives many queries over one `&MemoryCloud`
        // at once: every read operator must return the same answers under
        // concurrent access as serially, and the traffic counters (atomics)
        // must account every charged access without losing updates.
        let cloud = small_cloud(4);
        let labels: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| cloud.labels().get(n).unwrap())
            .collect();
        // Serial baseline: per-vertex (label, degree) plus local posting counts.
        let baseline: Vec<(Option<crate::ids::LabelId>, usize)> = (0..4u64)
            .map(|i| (cloud.label_of_global(v(i)), cloud.degree_global(v(i))))
            .collect();
        cloud.reset_traffic();
        let rounds = 64usize;
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let cloud = &cloud;
                let labels = &labels;
                let baseline = &baseline;
                scope.spawn(move || {
                    let caller = MachineId(t % 4);
                    for _ in 0..rounds {
                        for i in 0..4u64 {
                            let id = v(i);
                            assert_eq!(cloud.label_of_global(id), baseline[i as usize].0);
                            if let Some(cell) = cloud.load(caller, id) {
                                assert_eq!(cell.neighbors.len(), baseline[i as usize].1);
                            }
                            assert!(cloud.has_label(caller, id, baseline[i as usize].0.unwrap()));
                        }
                        let mut found = 0;
                        for m in cloud.machines() {
                            for &l in labels.iter() {
                                found += cloud.get_ids(m, l).len();
                            }
                        }
                        assert_eq!(found, 4);
                    }
                });
            }
        });
        // Each thread charges a deterministic number of remote accesses per
        // round; the atomic counters must have lost none of them.
        let per_round: u64 = {
            cloud.reset_traffic();
            let caller = MachineId(0);
            for i in 0..4u64 {
                let id = v(i);
                let _ = cloud.load(caller, id);
                let _ = cloud.has_label(caller, id, cloud.label_of_global(id).unwrap());
            }
            cloud.traffic().total_messages()
        };
        cloud.reset_traffic();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cloud = &cloud;
                scope.spawn(move || {
                    let caller = MachineId(0);
                    for _ in 0..rounds {
                        for i in 0..4u64 {
                            let id = v(i);
                            let _ = cloud.load(caller, id);
                            let _ = cloud.has_label(caller, id, cloud.label_of_global(id).unwrap());
                        }
                    }
                });
            }
        });
        assert_eq!(
            cloud.traffic().total_messages(),
            per_round * 4 * rounds as u64,
            "traffic accounting dropped updates under concurrency"
        );
    }

    #[test]
    fn vertex_iteration_and_containment() {
        let cloud = small_cloud(3);
        let mut ids: Vec<_> = cloud.iter_vertices().collect();
        ids.sort();
        assert_eq!(ids, vec![v(0), v(1), v(2), v(3)]);
        assert!(cloud.contains_vertex(v(0)));
        assert!(!cloud.contains_vertex(v(17)));
        assert_eq!(cloud.num_vertices(), 4);
        assert_eq!(cloud.num_edges(), 4);
    }
}
