//! # trinity-sim
//!
//! A simulated **Trinity memory cloud**: the substrate the STwig subgraph
//! matching algorithm of *Efficient Subgraph Matching on Billion Node Graphs*
//! (Sun et al., VLDB 2012) runs on.
//!
//! The original Trinity is a distributed in-memory key/value + graph store
//! spanning a cluster of commodity machines. This crate reproduces the parts
//! of it the paper relies on, in-process:
//!
//! * a labeled graph **hash-partitioned** over `P` logical machines
//!   ([`cloud::MemoryCloud`], [`partition::Partition`], [`csr::Csr`]);
//! * the per-machine **string index** mapping labels to local vertex IDs
//!   ([`label_index::LabelIndex`]) — the only index the approach uses;
//! * optional **candidate-pruning indexes**: per-vertex neighborhood-label
//!   signatures and a label-pair selectivity table
//!   ([`neighbor_index::NeighborLabelIndex`],
//!   [`neighbor_index::LabelPairTable`]), built in the same pass;
//! * the paper's three atomic operators `Cloud.Load`, `Index.getID`,
//!   `Index.hasLabel` with **cross-machine traffic accounting**
//!   ([`network::Network`], [`cost::CostModel`]);
//! * an explicit **batched message transport** between machines
//!   ([`transport::Transport`], [`transport::ChannelTransport`]) carrying
//!   typed messages — batched `Load` requests answered with owned
//!   [`partition::CellBuf`]s, posting requests, binding deltas and shipped
//!   join rows — so partition-local execution never dereferences foreign
//!   memory (§4.2, §6.2);
//! * the **label-pair catalog** and query-specific **cluster graph** of §5.3
//!   used for head-STwig and load-set selection
//!   ([`cluster_graph::LabelPairCatalog`], [`cluster_graph::ClusterGraph`]);
//! * linear-time graph loading ([`builder::GraphBuilder`]), statistics
//!   ([`stats`]) and edge-list persistence ([`edge_list`]).
//!
//! ## Example
//!
//! ```
//! use trinity_sim::prelude::*;
//!
//! let mut b = GraphBuilder::new_undirected();
//! b.add_vertex(VertexId(0), "a");
//! b.add_vertex(VertexId(1), "b");
//! b.add_edge(VertexId(0), VertexId(1));
//! let cloud = b.build(4, CostModel::default());
//!
//! let label_a = cloud.labels().get("a").unwrap();
//! assert_eq!(cloud.label_frequency(label_a), 1);
//! let owner = cloud.machine_of(VertexId(0));
//! let cell = cloud.load(owner, VertexId(0)).unwrap();
//! assert_eq!(cell.neighbors, &[VertexId(1)]);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cloud;
pub mod cluster_graph;
pub mod compact;
pub mod cost;
pub mod csr;
pub mod edge_list;
pub mod epoch;
pub mod error;
pub mod fault;
pub mod ids;
pub mod label_index;
pub mod loader;
pub mod neighbor_index;
pub mod network;
pub mod partition;
pub mod stats;
pub mod transport;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::cloud::{machine_for, MemoryCloud};
    pub use crate::cluster_graph::{ClusterGraph, LabelPairCatalog};
    pub use crate::compact::{CompactCsr, NeighborScratch, Neighbors, Postings, StorageTier};
    pub use crate::epoch::{EpochLabelLog, GraphEpochs, SnapshotRef, UpdateBatch, UpdateOp};
    pub use crate::error::TrinityError;
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultyTransport, MachineCrash};
    pub use crate::ids::{LabelId, LabelInterner, MachineId, VertexId};
    pub use crate::loader::StreamLoader;
    pub use crate::neighbor_index::{LabelPairTable, NeighborLabelIndex};
    pub use crate::network::{CostModel, Network, TrafficSnapshot};
    pub use crate::partition::{Cell, CellBuf, Partition, StorageBytes};
    pub use crate::stats::{graph_stats, GraphStats};
    pub use crate::transport::{ChannelTransport, Envelope, Message, Transport, TransportError};
}

pub use builder::GraphBuilder;
pub use cloud::MemoryCloud;
pub use epoch::{GraphEpochs, SnapshotRef, UpdateBatch, UpdateOp};
pub use error::TrinityError;
pub use fault::{FaultPlan, FaultyTransport};
pub use ids::{LabelId, MachineId, VertexId};
pub use network::CostModel;
pub use transport::{ChannelTransport, Envelope, Message, Transport, TransportError};
