//! Simulated cluster interconnect.
//!
//! The paper runs on a real Gigabit / InfiniBand cluster; here the "network"
//! is an accounting layer: every cross-machine access performed through the
//! [`crate::cloud::MemoryCloud`] records a message (and its payload size) in a
//! per-machine-pair counter matrix. A configurable [`CostModel`] converts
//! these counters into simulated communication time, which the distributed
//! executor combines with per-machine compute time to produce the
//! simulated-wall-clock numbers reported by the speed-up experiments.

use crate::ids::MachineId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Latency/bandwidth model used to convert message counts into simulated time.
///
/// Defaults approximate the paper's cluster 1 (Gigabit Ethernet): 0.1 ms
/// per-message latency and 1 Gbit/s ≈ 125 MB/s bandwidth, with messages
/// between co-located endpoints free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-message latency in microseconds.
    pub latency_us: f64,
    /// Bandwidth in bytes per microsecond (i.e. MB/s).
    pub bytes_per_us: f64,
    /// Messages smaller than this are merged into batches of this size before
    /// the latency charge is applied (Trinity merges and batches messages).
    pub batch_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency_us: 100.0,
            bytes_per_us: 125.0,
            batch_bytes: 64 * 1024,
        }
    }
}

impl CostModel {
    /// An idealized infinitely-fast network (zero communication cost).
    pub fn free() -> Self {
        CostModel {
            latency_us: 0.0,
            bytes_per_us: f64::INFINITY,
            batch_bytes: 1,
        }
    }

    /// A model approximating the paper's 40 Gbps InfiniBand adapter on
    /// cluster 2.
    pub fn infiniband() -> Self {
        CostModel {
            latency_us: 2.0,
            bytes_per_us: 5000.0,
            batch_bytes: 64 * 1024,
        }
    }

    /// Simulated time in microseconds to ship `bytes` in `messages` messages.
    pub fn time_us(&self, messages: u64, bytes: u64) -> f64 {
        if messages == 0 && bytes == 0 {
            return 0.0;
        }
        // Message merging: latency is charged per batch, not per tiny message.
        let batches = if self.batch_bytes <= 1 {
            messages
        } else {
            let by_bytes = bytes.div_ceil(self.batch_bytes);
            by_bytes.max(1).min(messages.max(1))
        };
        let transfer = if self.bytes_per_us.is_finite() && self.bytes_per_us > 0.0 {
            bytes as f64 / self.bytes_per_us
        } else {
            0.0
        };
        batches as f64 * self.latency_us + transfer
    }
}

/// Per-machine-pair traffic counters.
///
/// Counters are atomic so that logical machines can run concurrently on a
/// thread pool while sharing one `Network`.
#[derive(Debug)]
pub struct Network {
    machines: usize,
    /// messages[src * machines + dst]
    messages: Vec<AtomicU64>,
    /// bytes[src * machines + dst]
    bytes: Vec<AtomicU64>,
    cost: CostModel,
}

/// A snapshot of the traffic counters, suitable for reporting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Number of logical machines.
    pub machines: usize,
    /// Row-major `machines x machines` message counts.
    pub messages: Vec<u64>,
    /// Row-major `machines x machines` byte counts.
    pub bytes: Vec<u64>,
}

impl TrafficSnapshot {
    /// Total number of cross-machine messages (diagonal excluded).
    pub fn total_messages(&self) -> u64 {
        self.iter_offdiag().map(|(_, _, m, _)| m).sum()
    }

    /// Total number of cross-machine bytes (diagonal excluded).
    pub fn total_bytes(&self) -> u64 {
        self.iter_offdiag().map(|(_, _, _, b)| b).sum()
    }

    /// Messages sent by machine `src` to remote machines.
    pub fn messages_from(&self, src: MachineId) -> u64 {
        (0..self.machines)
            .filter(|&d| d != src.index())
            .map(|d| self.messages[src.index() * self.machines + d])
            .sum()
    }

    /// Bytes sent by machine `src` to remote machines.
    pub fn bytes_from(&self, src: MachineId) -> u64 {
        (0..self.machines)
            .filter(|&d| d != src.index())
            .map(|d| self.bytes[src.index() * self.machines + d])
            .sum()
    }

    fn iter_offdiag(&self) -> impl Iterator<Item = (usize, usize, u64, u64)> + '_ {
        let n = self.machines;
        (0..n).flat_map(move |s| {
            (0..n).filter_map(move |d| {
                if s == d {
                    None
                } else {
                    Some((s, d, self.messages[s * n + d], self.bytes[s * n + d]))
                }
            })
        })
    }
}

impl Network {
    /// Creates a network connecting `machines` logical machines with the given
    /// cost model.
    pub fn new(machines: usize, cost: CostModel) -> Self {
        let cells = machines * machines;
        Network {
            machines,
            messages: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            cost,
        }
    }

    /// Number of logical machines.
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    #[inline]
    fn cell(&self, src: MachineId, dst: MachineId) -> usize {
        src.index() * self.machines + dst.index()
    }

    /// Records one message of `payload_bytes` from `src` to `dst`.
    ///
    /// Messages from a machine to itself are recorded (on the diagonal) but do
    /// not contribute to cross-machine traffic totals or simulated time.
    #[inline]
    pub fn record(&self, src: MachineId, dst: MachineId, payload_bytes: u64) {
        let cell = self.cell(src, dst);
        self.messages[cell].fetch_add(1, Ordering::Relaxed);
        self.bytes[cell].fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Records `count` messages totalling `payload_bytes` from `src` to `dst`.
    #[inline]
    pub fn record_bulk(&self, src: MachineId, dst: MachineId, count: u64, payload_bytes: u64) {
        let cell = self.cell(src, dst);
        self.messages[cell].fetch_add(count, Ordering::Relaxed);
        self.bytes[cell].fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        for c in &self.messages {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.bytes {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            machines: self.machines,
            messages: self
                .messages
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            bytes: self
                .bytes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Simulated communication time, in microseconds, charged to machine
    /// `src`: the time to push all its outbound cross-machine traffic through
    /// the cost model.
    pub fn simulated_send_time_us(&self, src: MachineId) -> f64 {
        let snap = self.snapshot();
        let msgs = snap.messages_from(src);
        let bytes = snap.bytes_from(src);
        self.cost.time_us(msgs, bytes)
    }

    /// Total simulated communication time across the cluster in microseconds.
    pub fn simulated_total_time_us(&self) -> f64 {
        let snap = self.snapshot();
        self.cost.time_us(snap.total_messages(), snap.total_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(x: u16) -> MachineId {
        MachineId(x)
    }

    #[test]
    fn record_and_snapshot() {
        let net = Network::new(3, CostModel::default());
        net.record(m(0), m(1), 100);
        net.record(m(0), m(1), 50);
        net.record(m(1), m(2), 10);
        net.record(m(2), m(2), 999); // local, excluded from totals
        let snap = net.snapshot();
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_bytes(), 160);
        assert_eq!(snap.messages_from(m(0)), 2);
        assert_eq!(snap.bytes_from(m(0)), 150);
        assert_eq!(snap.messages_from(m(2)), 0);
    }

    #[test]
    fn bulk_record() {
        let net = Network::new(2, CostModel::default());
        net.record_bulk(m(0), m(1), 10, 1000);
        let snap = net.snapshot();
        assert_eq!(snap.total_messages(), 10);
        assert_eq!(snap.total_bytes(), 1000);
    }

    #[test]
    fn reset_clears_counters() {
        let net = Network::new(2, CostModel::default());
        net.record(m(0), m(1), 10);
        net.reset();
        assert_eq!(net.snapshot().total_messages(), 0);
    }

    #[test]
    fn free_model_costs_nothing() {
        let model = CostModel::free();
        assert_eq!(model.time_us(100, 1_000_000), 0.0);
    }

    #[test]
    fn default_model_charges_latency_and_transfer() {
        let model = CostModel::default();
        // one batch of 64 KiB: 100us latency + 65536/125 us transfer
        let t = model.time_us(1, 64 * 1024);
        assert!(t > 100.0);
        assert!(t < 1000.0);
        // zero traffic is free
        assert_eq!(model.time_us(0, 0), 0.0);
    }

    #[test]
    fn batching_reduces_latency_charges() {
        let model = CostModel {
            latency_us: 100.0,
            bytes_per_us: f64::INFINITY,
            batch_bytes: 1000,
        };
        // 100 messages of 10 bytes each merge into one 1000-byte batch.
        let merged = model.time_us(100, 1000);
        let unmerged = CostModel {
            batch_bytes: 1,
            ..model
        }
        .time_us(100, 1000);
        assert!(merged < unmerged);
        assert_eq!(merged, 100.0);
    }

    #[test]
    fn simulated_times_scale_with_traffic() {
        let net = Network::new(2, CostModel::default());
        net.record_bulk(m(0), m(1), 100, 10_000_000);
        let t1 = net.simulated_send_time_us(m(0));
        net.record_bulk(m(0), m(1), 100, 10_000_000);
        let t2 = net.simulated_send_time_us(m(0));
        assert!(t2 > t1);
        assert!(net.simulated_total_time_us() >= t2);
        assert_eq!(net.simulated_send_time_us(m(1)), 0.0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let net = Arc::new(Network::new(2, CostModel::default()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        net.record(m(0), m(1), 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.snapshot().total_messages(), 4000);
        assert_eq!(net.snapshot().total_bytes(), 32000);
    }
}
