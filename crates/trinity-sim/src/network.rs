//! Simulated cluster interconnect: per-machine-pair traffic counters.
//!
//! The paper runs on a real Gigabit / InfiniBand cluster; here the "network"
//! is an accounting layer: every cross-machine access performed through the
//! [`crate::cloud::MemoryCloud`] — and every envelope sent over a
//! [`crate::transport::Transport`] — records a message (and its payload size)
//! in a per-machine-pair counter matrix. The [`CostModel`] (see
//! [`crate::cost`]) converts these counters into simulated communication
//! time, which the distributed executor combines with per-machine compute
//! time to produce the simulated-wall-clock numbers reported by the speed-up
//! experiments.
//!
//! The matrix additionally tallies **direct remote reads**: accesses where a
//! caller dereferenced another machine's partition in place (`Cloud.Load` /
//! `Index.hasLabel` with a remote owner) instead of going through a
//! transport. Message-passing execution must keep this counter at zero — the
//! distributed executor's tests enforce it.

use crate::ids::MachineId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::cost::CostModel;

/// Per-machine-pair traffic counters.
///
/// Counters are atomic so that logical machines can run concurrently on a
/// thread pool while sharing one `Network`.
#[derive(Debug)]
pub struct Network {
    machines: usize,
    /// messages[src * machines + dst]
    messages: Vec<AtomicU64>,
    /// bytes[src * machines + dst]
    bytes: Vec<AtomicU64>,
    /// Cross-partition accesses that bypassed the transport (see module docs).
    direct_remote_reads: AtomicU64,
    cost: CostModel,
}

/// A snapshot of the traffic counters, suitable for reporting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Number of logical machines.
    pub machines: usize,
    /// Row-major `machines x machines` message counts.
    pub messages: Vec<u64>,
    /// Row-major `machines x machines` byte counts.
    pub bytes: Vec<u64>,
}

impl TrafficSnapshot {
    /// Total number of cross-machine messages (diagonal excluded).
    pub fn total_messages(&self) -> u64 {
        self.iter_offdiag().map(|(_, _, m, _)| m).sum()
    }

    /// Total number of cross-machine bytes (diagonal excluded).
    pub fn total_bytes(&self) -> u64 {
        self.iter_offdiag().map(|(_, _, _, b)| b).sum()
    }

    /// Messages sent by machine `src` to remote machines.
    pub fn messages_from(&self, src: MachineId) -> u64 {
        (0..self.machines)
            .filter(|&d| d != src.index())
            .map(|d| self.messages[src.index() * self.machines + d])
            .sum()
    }

    /// Bytes sent by machine `src` to remote machines.
    pub fn bytes_from(&self, src: MachineId) -> u64 {
        (0..self.machines)
            .filter(|&d| d != src.index())
            .map(|d| self.bytes[src.index() * self.machines + d])
            .sum()
    }

    fn iter_offdiag(&self) -> impl Iterator<Item = (usize, usize, u64, u64)> + '_ {
        let n = self.machines;
        (0..n).flat_map(move |s| {
            (0..n).filter_map(move |d| {
                if s == d {
                    None
                } else {
                    Some((s, d, self.messages[s * n + d], self.bytes[s * n + d]))
                }
            })
        })
    }
}

impl Network {
    /// Creates a network connecting `machines` logical machines with the given
    /// cost model.
    pub fn new(machines: usize, cost: CostModel) -> Self {
        let cells = machines * machines;
        Network {
            machines,
            messages: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            direct_remote_reads: AtomicU64::new(0),
            cost,
        }
    }

    /// Number of logical machines.
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    #[inline]
    fn cell(&self, src: MachineId, dst: MachineId) -> usize {
        src.index() * self.machines + dst.index()
    }

    /// Records one message of `payload_bytes` from `src` to `dst`.
    ///
    /// Messages from a machine to itself are recorded (on the diagonal) but do
    /// not contribute to cross-machine traffic totals or simulated time.
    #[inline]
    pub fn record(&self, src: MachineId, dst: MachineId, payload_bytes: u64) {
        let cell = self.cell(src, dst);
        self.messages[cell].fetch_add(1, Ordering::Relaxed);
        self.bytes[cell].fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Records `count` messages totalling `payload_bytes` from `src` to `dst`.
    #[inline]
    pub fn record_bulk(&self, src: MachineId, dst: MachineId, count: u64, payload_bytes: u64) {
        let cell = self.cell(src, dst);
        self.messages[cell].fetch_add(count, Ordering::Relaxed);
        self.bytes[cell].fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Tallies one access that dereferenced a remote partition in place
    /// (without a transport round-trip). Called by the cloud's
    /// `DirectRead`-style operators; message-passing execution must never
    /// trigger it.
    #[inline]
    pub fn record_direct_remote_read(&self) {
        self.direct_remote_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of direct remote reads since the last [`Network::reset`].
    pub fn direct_remote_reads(&self) -> u64 {
        self.direct_remote_reads.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        for c in &self.messages {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.bytes {
            c.store(0, Ordering::Relaxed);
        }
        self.direct_remote_reads.store(0, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            machines: self.machines,
            messages: self
                .messages
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            bytes: self
                .bytes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Simulated communication time, in microseconds, charged to machine
    /// `src`: the time to push all its outbound cross-machine traffic through
    /// the cost model.
    pub fn simulated_send_time_us(&self, src: MachineId) -> f64 {
        let snap = self.snapshot();
        let msgs = snap.messages_from(src);
        let bytes = snap.bytes_from(src);
        self.cost.time_us(msgs, bytes)
    }

    /// Total simulated communication time across the cluster in microseconds.
    pub fn simulated_total_time_us(&self) -> f64 {
        let snap = self.snapshot();
        self.cost.time_us(snap.total_messages(), snap.total_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(x: u16) -> MachineId {
        MachineId(x)
    }

    #[test]
    fn record_and_snapshot() {
        let net = Network::new(3, CostModel::default());
        net.record(m(0), m(1), 100);
        net.record(m(0), m(1), 50);
        net.record(m(1), m(2), 10);
        net.record(m(2), m(2), 999); // local, excluded from totals
        let snap = net.snapshot();
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_bytes(), 160);
        assert_eq!(snap.messages_from(m(0)), 2);
        assert_eq!(snap.bytes_from(m(0)), 150);
        assert_eq!(snap.messages_from(m(2)), 0);
    }

    #[test]
    fn bulk_record() {
        let net = Network::new(2, CostModel::default());
        net.record_bulk(m(0), m(1), 10, 1000);
        let snap = net.snapshot();
        assert_eq!(snap.total_messages(), 10);
        assert_eq!(snap.total_bytes(), 1000);
    }

    #[test]
    fn reset_clears_counters() {
        let net = Network::new(2, CostModel::default());
        net.record(m(0), m(1), 10);
        net.record_direct_remote_read();
        net.reset();
        assert_eq!(net.snapshot().total_messages(), 0);
        assert_eq!(net.direct_remote_reads(), 0);
    }

    #[test]
    fn direct_remote_reads_tally() {
        let net = Network::new(2, CostModel::default());
        assert_eq!(net.direct_remote_reads(), 0);
        net.record_direct_remote_read();
        net.record_direct_remote_read();
        assert_eq!(net.direct_remote_reads(), 2);
        // The tally is separate from the message matrix.
        assert_eq!(net.snapshot().total_messages(), 0);
    }

    #[test]
    fn simulated_times_scale_with_traffic() {
        let net = Network::new(2, CostModel::default());
        net.record_bulk(m(0), m(1), 100, 10_000_000);
        let t1 = net.simulated_send_time_us(m(0));
        net.record_bulk(m(0), m(1), 100, 10_000_000);
        let t2 = net.simulated_send_time_us(m(0));
        assert!(t2 > t1);
        assert!(net.simulated_total_time_us() >= t2);
        assert_eq!(net.simulated_send_time_us(m(1)), 0.0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let net = Arc::new(Network::new(2, CostModel::default()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        net.record(m(0), m(1), 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.snapshot().total_messages(), 4000);
        assert_eq!(net.snapshot().total_bytes(), 32000);
    }
}
