//! Epoch-versioned snapshots: dynamic updates without stopping the world.
//!
//! A [`GraphEpochs`] manager wraps a [`MemoryCloud`] and lets callers apply
//! [`UpdateBatch`]es (vertex/edge inserts, deletes, relabels) while queries
//! keep running against immutable snapshots:
//!
//! * **Readers pin, never lock.** [`GraphEpochs::pin`] hands out a
//!   [`SnapshotRef`] — an `Arc` to the current epoch's cloud. A pinned
//!   snapshot is immutable forever; writers publish *successor* clouds and
//!   never touch published ones, so a query admitted at epoch N sees exactly
//!   epoch N even while N+1 is being built or sealed.
//! * **Writers overlay, then seal.** [`GraphEpochs::apply`] folds a batch
//!   into per-partition [`crate::partition::PartitionOverlay`]s — fully
//!   merged views of every touched vertex and label laid over the `Arc`-
//!   shared immutable base — and publishes a new cloud at epoch N+1.
//!   [`GraphEpochs::seal_epoch`] rebuilds touched partitions' base storage
//!   (both tiers) from the merged view, refreshing signatures, id maps and
//!   label-pair statistics; content is observationally identical, so the
//!   epoch number is kept and pinned readers are unaffected.
//! * **Caches revalidate by label.** Every effective apply records the set
//!   of labels it touched in the lineage's [`EpochLabelLog`]; a cache entry
//!   built at an older epoch whose labels were never touched since is
//!   provably still exact and may be served after retagging.
//!
//! Update semantics follow [`crate::builder::GraphBuilder`]: edges are
//! undirected and symmetrized, self-loops are ignored, adding an existing
//! vertex relabels it, and edge endpoints must exist. A batch is atomic —
//! it either applies fully (one epoch bump) or fails leaving the current
//! epoch untouched.

use crate::cloud::MemoryCloud;
use crate::cluster_graph::LabelPairCatalog;
use crate::error::TrinityError;
use crate::ids::{LabelId, VertexId};
use crate::neighbor_index::{label_bit, FULL_SIGNATURE};
use crate::partition::{Partition, PartitionOverlay};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One mutation of the graph. Semantics mirror the builder's: undirected
/// symmetrized edges, self-loops ignored, `AddVertex` of an existing vertex
/// relabels it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Add vertex `id` with `label`, or relabel it if it already exists.
    AddVertex {
        /// The vertex to add (or relabel).
        id: VertexId,
        /// Its (new) label.
        label: String,
    },
    /// Remove vertex `id` and every edge incident to it. Fails the batch if
    /// the vertex does not exist at this point of the batch.
    RemoveVertex {
        /// The vertex to remove.
        id: VertexId,
    },
    /// Add the undirected edge `u – v`. Both endpoints must exist at this
    /// point of the batch; adding an existing edge or a self-loop is a no-op.
    AddEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove the undirected edge `u – v`; removing an absent edge is a
    /// no-op.
    RemoveEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
}

/// An ordered batch of [`UpdateOp`]s applied atomically by
/// [`GraphEpochs::apply`]: one batch, one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an add-vertex (or relabel) op. Builder-style.
    pub fn add_vertex(mut self, id: VertexId, label: &str) -> Self {
        self.ops.push(UpdateOp::AddVertex {
            id,
            label: label.to_string(),
        });
        self
    }

    /// Appends a remove-vertex op. Builder-style.
    pub fn remove_vertex(mut self, id: VertexId) -> Self {
        self.ops.push(UpdateOp::RemoveVertex { id });
        self
    }

    /// Appends an add-edge op. Builder-style.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.ops.push(UpdateOp::AddEdge { u, v });
        self
    }

    /// Appends a remove-edge op. Builder-style.
    pub fn remove_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.ops.push(UpdateOp::RemoveEdge { u, v });
        self
    }

    /// Appends an op in place.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// The batch's ops, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Per-epoch log of the labels each effective update batch touched, shared
/// by every snapshot of a lineage. This is what lets a cache prove a stale
/// entry is still exact: if an entry's labels are disjoint from everything
/// touched since it was built, no table row it holds could have changed.
#[derive(Debug, Default)]
pub struct EpochLabelLog {
    /// `(epoch, sorted touched labels)`, appended in epoch order — one
    /// entry per effective apply (epoch `e ≥ 1`).
    entries: Mutex<Vec<(u64, Vec<LabelId>)>>,
}

impl EpochLabelLog {
    /// Records the labels epoch `epoch` touched. Called by the epoch
    /// manager, under its writer lock, *before* the epoch is published.
    fn record(&self, epoch: u64, labels: Vec<LabelId>) {
        let mut entries = self.entries.lock().expect("epoch label log lock");
        debug_assert!(entries.last().is_none_or(|(e, _)| *e < epoch));
        entries.push((epoch, labels));
    }

    /// Whether any of `labels` was touched by an epoch in `(after, upto]`.
    /// Returns `None` when the log does not cover the whole range (the
    /// caller must then assume "touched").
    pub fn touched_in_range(&self, after: u64, upto: u64, labels: &[LabelId]) -> Option<bool> {
        if after >= upto {
            return Some(false);
        }
        let entries = self.entries.lock().expect("epoch label log lock");
        let mut covered = 0u64;
        let mut touched = false;
        for (e, touched_labels) in entries.iter() {
            if *e > after && *e <= upto {
                covered += 1;
                if touched_labels.iter().any(|l| labels.contains(l)) {
                    touched = true;
                }
            }
        }
        (covered == upto - after).then_some(touched)
    }

    /// Number of epochs recorded so far.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("epoch label log lock").len()
    }

    /// Whether no epoch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A pinned, immutable view of one epoch's cloud. Cheap to clone (one `Arc`
/// bump); holding it keeps the snapshot's storage alive but never blocks
/// writers — updates and seals publish successors instead of mutating.
#[derive(Debug, Clone)]
pub struct SnapshotRef {
    cloud: Arc<MemoryCloud>,
}

impl SnapshotRef {
    /// The pinned cloud.
    pub fn cloud(&self) -> &MemoryCloud {
        &self.cloud
    }

    /// The epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.cloud.epoch()
    }
}

impl std::ops::Deref for SnapshotRef {
    type Target = MemoryCloud;

    fn deref(&self) -> &MemoryCloud {
        &self.cloud
    }
}

/// Allocates process-unique nonzero lineage ids.
static NEXT_LINEAGE: AtomicU64 = AtomicU64::new(1);

/// The epoch manager: owns the lineage of snapshots evolving from one base
/// cloud. See the module docs for the pin/apply/seal protocol.
#[derive(Debug)]
pub struct GraphEpochs {
    /// The epoch-0 snapshot, lineage-stamped. Lives as long as the manager
    /// so long-lived borrowers (engines, caches) can key on it.
    base: MemoryCloud,
    /// The latest published snapshot. Readers clone the `Arc` (pin);
    /// writers replace it under `writer`.
    current: RwLock<Arc<MemoryCloud>>,
    /// Serializes `apply` and `seal_epoch`. Readers never take it.
    writer: Mutex<()>,
    /// Touched-label log shared with every snapshot of the lineage.
    log: Arc<EpochLabelLog>,
}

// Engines share one `&GraphEpochs` across worker threads (queries pin
// snapshots, update entries apply batches), so the manager must be
// `Send + Sync` — as must the snapshots it hands out.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<GraphEpochs>();
    assert_send_sync::<SnapshotRef>();
    assert_send_sync::<EpochLabelLog>();
};

/// Canonical undirected edge key.
#[inline]
fn ekey(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Final state of a vertex after folding a batch's ops.
#[derive(Debug, Clone, Copy)]
enum VertexChange {
    /// `AddVertex` of a vertex the pending view did not contain.
    Added(LabelId),
    /// `AddVertex` of a vertex the pending view contained (relabel).
    Relabeled(LabelId),
    /// `RemoveVertex`.
    Removed,
}

impl GraphEpochs {
    /// Takes ownership of `cloud` as epoch 0 of a fresh lineage.
    pub fn new(mut cloud: MemoryCloud) -> Self {
        let log = Arc::new(EpochLabelLog::default());
        cloud.lineage = NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed);
        cloud.epoch_labels = Some(Arc::clone(&log));
        let current = RwLock::new(Arc::new(cloud.clone()));
        GraphEpochs {
            base: cloud,
            current,
            writer: Mutex::new(()),
            log,
        }
    }

    /// The epoch-0 snapshot. Lives as long as the manager; long-lived
    /// borrowers (a `QueryEngine`, a cache) key on this cloud and then
    /// execute against pinned snapshots of the same lineage.
    pub fn base_cloud(&self) -> &MemoryCloud {
        &self.base
    }

    /// The lineage id stamped on every snapshot of this manager.
    pub fn lineage(&self) -> u64 {
        self.base.lineage
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("epoch lock").epoch()
    }

    /// Pins the current snapshot. Never blocks on writers beyond the
    /// momentary `RwLock` read; the returned snapshot stays valid (and
    /// bit-identical) forever, through any number of applies and seals.
    pub fn pin(&self) -> SnapshotRef {
        SnapshotRef {
            cloud: Arc::clone(&self.current.read().expect("epoch lock")),
        }
    }

    /// Applies `batch` atomically, publishing a new snapshot at epoch
    /// `N + 1` and returning its epoch. A batch with no net effect returns
    /// the current epoch without publishing. On error (unknown vertex), no
    /// state changes.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<u64, TrinityError> {
        let _writer = self.writer.lock().expect("epoch writer lock");
        let prev = Arc::clone(&self.current.read().expect("epoch lock"));

        // ---- Fold the ops into pending vertex/edge change maps ----------
        let mut interner = prev.interner.clone();
        let mut vchanges: HashMap<VertexId, VertexChange> = HashMap::new();
        let mut echanges: HashMap<(VertexId, VertexId), bool> = HashMap::new();

        let pending_exists = |vch: &HashMap<VertexId, VertexChange>, id: VertexId| -> bool {
            match vch.get(&id) {
                Some(VertexChange::Removed) => false,
                Some(_) => true,
                None => prev.contains_vertex(id),
            }
        };
        let pending_has_edge =
            |ech: &HashMap<(VertexId, VertexId), bool>, u: VertexId, v: VertexId| -> bool {
                match ech.get(&ekey(u, v)) {
                    Some(&present) => present,
                    None => prev.has_edge_global(u, v),
                }
            };

        for op in batch.ops() {
            match op {
                UpdateOp::AddVertex { id, label } => {
                    let lid = interner.intern(label);
                    let change = if pending_exists(&vchanges, *id) {
                        match vchanges.get(id) {
                            Some(VertexChange::Added(_)) => VertexChange::Added(lid),
                            _ => VertexChange::Relabeled(lid),
                        }
                    } else {
                        VertexChange::Added(lid)
                    };
                    vchanges.insert(*id, change);
                }
                UpdateOp::RemoveVertex { id } => {
                    if !pending_exists(&vchanges, *id) {
                        return Err(TrinityError::UnknownVertex(*id));
                    }
                    // Expand to explicit removals of every currently-
                    // incident edge (prev edges still pending-present plus
                    // edges added earlier in this batch).
                    let mut incident: BTreeSet<VertexId> = prev
                        .neighbors_global(*id)
                        .into_iter()
                        .filter(|&n| pending_has_edge(&echanges, *id, n))
                        .collect();
                    for (&(a, b), &present) in &echanges {
                        if present {
                            if a == *id {
                                incident.insert(b);
                            } else if b == *id {
                                incident.insert(a);
                            }
                        }
                    }
                    for n in incident {
                        echanges.insert(ekey(*id, n), false);
                    }
                    vchanges.insert(*id, VertexChange::Removed);
                }
                UpdateOp::AddEdge { u, v } => {
                    if u == v {
                        continue;
                    }
                    for end in [u, v] {
                        if !pending_exists(&vchanges, *end) {
                            return Err(TrinityError::UnknownVertex(*end));
                        }
                    }
                    if !pending_has_edge(&echanges, *u, *v) {
                        echanges.insert(ekey(*u, *v), true);
                    }
                }
                UpdateOp::RemoveEdge { u, v } => {
                    if u != v && pending_has_edge(&echanges, *u, *v) {
                        echanges.insert(ekey(*u, *v), false);
                    }
                }
            }
        }

        // ---- Net effects vs `prev` (drop intra-batch no-ops) ------------
        let mut added_vertices: Vec<(VertexId, LabelId)> = Vec::new();
        let mut removed_vertices: Vec<(VertexId, LabelId)> = Vec::new();
        let mut relabeled: Vec<(VertexId, LabelId, LabelId)> = Vec::new();
        for (&id, change) in &vchanges {
            match (change, prev.label_of_global(id)) {
                (VertexChange::Removed, Some(old)) => removed_vertices.push((id, old)),
                (VertexChange::Removed, None) => {}
                (VertexChange::Added(l), None) => added_vertices.push((id, *l)),
                (VertexChange::Added(l) | VertexChange::Relabeled(l), Some(old)) => {
                    if old != *l {
                        relabeled.push((id, old, *l));
                    }
                }
                (VertexChange::Relabeled(_), None) => unreachable!("relabel of absent vertex"),
            }
        }
        let mut added_edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut removed_edges: Vec<(VertexId, VertexId)> = Vec::new();
        for (&(a, b), &present) in &echanges {
            let had = prev.has_edge_global(a, b);
            if present && !had {
                added_edges.push((a, b));
            } else if !present && had {
                removed_edges.push((a, b));
            }
        }
        // Sort for determinism (the hash maps iterate in arbitrary order).
        added_vertices.sort_unstable();
        removed_vertices.sort_unstable();
        relabeled.sort_unstable();
        added_edges.sort_unstable();
        removed_edges.sort_unstable();

        if added_vertices.is_empty()
            && removed_vertices.is_empty()
            && relabeled.is_empty()
            && added_edges.is_empty()
            && removed_edges.is_empty()
        {
            return Ok(prev.epoch());
        }

        // Post-batch label of any surviving vertex.
        let mut finals: HashMap<VertexId, LabelId> = HashMap::new();
        for &(id, l) in &added_vertices {
            finals.insert(id, l);
        }
        for &(id, _, l) in &relabeled {
            finals.insert(id, l);
        }
        let final_label = |id: VertexId| -> Option<LabelId> {
            finals
                .get(&id)
                .copied()
                .or_else(|| prev.label_of_global(id))
        };
        let removed_set: HashSet<VertexId> = removed_vertices.iter().map(|&(id, _)| id).collect();

        // ---- Merged adjacency of every adjacency-touched vertex ---------
        let mut adj_add: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut adj_del: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for &(a, b) in &added_edges {
            adj_add.entry(a).or_default().push(b);
            adj_add.entry(b).or_default().push(a);
        }
        for &(a, b) in &removed_edges {
            adj_del.entry(a).or_default().push(b);
            adj_del.entry(b).or_default().push(a);
        }
        let mut adj_touched: BTreeSet<VertexId> = adj_add.keys().copied().collect();
        adj_touched.extend(adj_del.keys().copied());
        adj_touched.extend(added_vertices.iter().map(|&(id, _)| id));
        adj_touched.retain(|id| !removed_set.contains(id));
        let mut merged_adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for &u in &adj_touched {
            let mut list = prev.neighbors_global(u).to_vec();
            if let Some(del) = adj_del.get(&u) {
                list.retain(|n| !del.contains(n));
            }
            if let Some(add) = adj_add.get(&u) {
                list.extend(add.iter().copied());
            }
            list.sort_unstable();
            merged_adj.insert(u, list);
        }

        // ---- Per-machine overlays ---------------------------------------
        let num_machines = prev.num_machines();
        let mut overlays: HashMap<usize, PartitionOverlay> = HashMap::new();
        let mut vertex_delta = vec![0i64; num_machines];
        let mut entry_delta = vec![0i64; num_machines];
        fn overlay_entry<'a>(
            overlays: &'a mut HashMap<usize, PartitionOverlay>,
            prev: &MemoryCloud,
            machine: usize,
        ) -> &'a mut PartitionOverlay {
            overlays.entry(machine).or_insert_with(|| {
                let p = &prev.partitions[machine];
                match p.overlay() {
                    Some(o) => o.clone(),
                    None => PartitionOverlay {
                        num_vertices: p.num_vertices(),
                        num_edge_entries: p.num_edge_entries(),
                        ..PartitionOverlay::default()
                    },
                }
            })
        }

        for &(id, old) in &removed_vertices {
            let machine = prev.machine_of(id).index();
            entry_delta[machine] -= prev.partitions[machine].degree_of(id).unwrap_or(0) as i64;
            vertex_delta[machine] -= 1;
            let _ = old;
            let o = overlay_entry(&mut overlays, &prev, machine);
            if let Some(pos) = o.added.iter().position(|&a| a == id) {
                // Added in an earlier epoch of this lineage: it is not in
                // the base, so forgetting it entirely removes it.
                o.added.remove(pos);
            } else {
                o.deleted.insert(id);
            }
            o.labels.remove(&id);
            o.adj.remove(&id);
            o.signatures.remove(&id);
        }
        for &(id, label) in &added_vertices {
            let machine = prev.machine_of(id).index();
            vertex_delta[machine] += 1;
            let o = overlay_entry(&mut overlays, &prev, machine);
            // A base vertex deleted in an earlier epoch comes back by
            // un-deleting; a brand-new id joins the overlay's added run.
            if !o.deleted.remove(&id) {
                o.added.push(id);
            }
            o.labels.insert(id, label);
        }
        for &(id, _, new) in &relabeled {
            let machine = prev.machine_of(id).index();
            let o = overlay_entry(&mut overlays, &prev, machine);
            o.labels.insert(id, new);
        }
        for &u in &adj_touched {
            let machine = prev.machine_of(u).index();
            let list = merged_adj.get(&u).expect("merged above").clone();
            entry_delta[machine] +=
                list.len() as i64 - prev.partitions[machine].degree_of(u).unwrap_or(0) as i64;
            let o = overlay_entry(&mut overlays, &prev, machine);
            o.adj.insert(u, list);
        }

        // ---- Merged postings of every touched (machine, label) ----------
        let mut post_add: HashMap<(usize, LabelId), Vec<VertexId>> = HashMap::new();
        let mut post_del: HashMap<(usize, LabelId), Vec<VertexId>> = HashMap::new();
        for &(id, l) in &added_vertices {
            post_add
                .entry((prev.machine_of(id).index(), l))
                .or_default()
                .push(id);
        }
        for &(id, old) in &removed_vertices {
            post_del
                .entry((prev.machine_of(id).index(), old))
                .or_default()
                .push(id);
        }
        for &(id, old, new) in &relabeled {
            let machine = prev.machine_of(id).index();
            post_del.entry((machine, old)).or_default().push(id);
            post_add.entry((machine, new)).or_default().push(id);
        }
        let touched_postings: BTreeSet<(usize, LabelId)> =
            post_add.keys().chain(post_del.keys()).copied().collect();
        for &(machine, label) in &touched_postings {
            let mut list = prev.partitions[machine].vertices_with_label(label).to_vec();
            if let Some(del) = post_del.get(&(machine, label)) {
                list.retain(|id| !del.contains(id));
            }
            if let Some(add) = post_add.get(&(machine, label)) {
                list.extend(add.iter().copied());
            }
            list.sort_unstable();
            let o = overlay_entry(&mut overlays, &prev, machine);
            o.postings.insert(label, list);
        }

        // ---- Exact signature refresh of every signature-touched vertex --
        let mut sig_touched: BTreeSet<VertexId> = adj_touched.clone();
        for &(id, _, _) in &relabeled {
            for n in merged_adj
                .get(&id)
                .cloned()
                .unwrap_or_else(|| prev.neighbors_global(id).to_vec())
            {
                if !removed_set.contains(&n) {
                    sig_touched.insert(n);
                }
            }
        }
        for &u in &sig_touched {
            let machine = prev.machine_of(u).index();
            if prev.partitions[machine].signature_bits().is_none() {
                continue;
            }
            let neighbors = merged_adj
                .get(&u)
                .cloned()
                .unwrap_or_else(|| prev.neighbors_global(u).to_vec());
            let mut sig = 0u64;
            for n in neighbors {
                match final_label(n) {
                    Some(l) => sig |= label_bit(l),
                    None => sig = FULL_SIGNATURE,
                }
            }
            let o = overlay_entry(&mut overlays, &prev, machine);
            o.signatures.insert(u, sig);
        }

        // ---- Catalog (copy-on-write; over-approximates on removal) ------
        let catalog = if added_edges.is_empty() && relabeled.is_empty() {
            Arc::clone(&prev.catalog)
        } else {
            let mut c = (*prev.catalog).clone();
            let record_both = |c: &mut LabelPairCatalog, a: VertexId, b: VertexId| {
                if let (Some(la), Some(lb)) = (final_label(a), final_label(b)) {
                    let (ma, mb) = (prev.machine_of(a), prev.machine_of(b));
                    c.record_edge(ma, la, mb, lb);
                    c.record_edge(mb, lb, ma, la);
                }
            };
            for &(a, b) in &added_edges {
                record_both(&mut c, a, b);
            }
            for &(id, _, _) in &relabeled {
                let neighbors = merged_adj
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| prev.neighbors_global(id).to_vec());
                for n in neighbors {
                    record_both(&mut c, id, n);
                }
            }
            Arc::new(c)
        };

        // ---- Global metadata --------------------------------------------
        let mut label_frequency = prev.label_frequency.clone();
        label_frequency.resize(interner.len(), 0);
        for &(_, l) in &added_vertices {
            label_frequency[l.index()] += 1;
        }
        for &(_, old) in &removed_vertices {
            label_frequency[old.index()] -= 1;
        }
        for &(_, old, new) in &relabeled {
            label_frequency[old.index()] -= 1;
            label_frequency[new.index()] += 1;
        }
        let num_vertices = (prev.num_vertices() as i64 + added_vertices.len() as i64
            - removed_vertices.len() as i64) as u64;
        let num_edges = (prev.num_edges() as i64 + added_edges.len() as i64
            - removed_edges.len() as i64) as u64;

        // ---- Touched labels for the cache-revalidation log --------------
        let mut touched_labels: BTreeSet<LabelId> = BTreeSet::new();
        for &(_, l) in &added_vertices {
            touched_labels.insert(l);
        }
        for &(_, old) in &removed_vertices {
            touched_labels.insert(old);
        }
        for &(_, old, new) in &relabeled {
            touched_labels.insert(old);
            touched_labels.insert(new);
        }
        for &(a, b) in added_edges.iter().chain(removed_edges.iter()) {
            for end in [a, b] {
                if let Some(l) = prev.label_of_global(end) {
                    touched_labels.insert(l);
                }
                if let Some(l) = final_label(end) {
                    touched_labels.insert(l);
                }
            }
        }

        // ---- Assemble and publish the successor snapshot ----------------
        let mut partitions: Vec<Partition> = Vec::with_capacity(num_machines);
        for machine in 0..num_machines {
            match overlays.remove(&machine) {
                Some(mut o) => {
                    o.added.sort_unstable();
                    o.added.dedup();
                    o.num_vertices = (o.num_vertices as i64 + vertex_delta[machine]) as usize;
                    o.num_edge_entries =
                        (o.num_edge_entries as i64 + entry_delta[machine]) as usize;
                    partitions.push(prev.partitions[machine].with_overlay(Some(o)));
                }
                None => partitions.push(prev.partitions[machine].clone()),
            }
        }

        let next_epoch = prev.epoch() + 1;
        self.log
            .record(next_epoch, touched_labels.into_iter().collect());
        let next = MemoryCloud {
            partitions,
            interner,
            network: Arc::clone(&prev.network),
            label_frequency,
            catalog,
            num_vertices,
            num_edges,
            directed: prev.is_directed(),
            epoch: next_epoch,
            lineage: prev.lineage(),
            epoch_labels: prev.epoch_labels.clone(),
        };
        *self.current.write().expect("epoch lock") = Arc::new(next);
        Ok(next_epoch)
    }

    /// Merges every partition's overlay into a fresh immutable base (same
    /// storage tier), rebuilding id maps, postings, signatures and the
    /// label-pair statistics exactly. Observable content is unchanged, so
    /// the epoch number is kept: pinned readers hold the previous `Arc`
    /// untouched, and caches keyed on `(lineage, epoch)` stay valid.
    /// Returns the (unchanged) current epoch.
    pub fn seal_epoch(&self) -> u64 {
        let _writer = self.writer.lock().expect("epoch writer lock");
        let prev = Arc::clone(&self.current.read().expect("epoch lock"));
        if !prev.partitions.iter().any(Partition::has_overlay) {
            return prev.epoch();
        }
        let num_machines = prev.num_machines();
        let num_labels = prev.interner.len();
        let mut partitions: Vec<Partition> = Vec::with_capacity(num_machines);
        for machine in 0..num_machines {
            let p = &prev.partitions[machine];
            if !p.has_overlay() {
                partitions.push(p.clone());
                continue;
            }
            let mut ids = Vec::with_capacity(p.num_vertices());
            let mut labels = Vec::with_capacity(p.num_vertices());
            let mut adjacency = Vec::with_capacity(p.num_vertices());
            for cell in p.iter_cells() {
                ids.push(cell.id);
                labels.push(cell.label);
                adjacency.push(cell.neighbors.to_vec());
            }
            let tier = p.storage_tier();
            let rebuilt = if p.signature_bits().is_some() {
                Partition::with_neighbor_labels_tier(
                    ids,
                    labels,
                    adjacency,
                    num_labels,
                    tier,
                    |n| prev.label_of_global(n),
                )
            } else {
                Partition::new_with_tier(ids, labels, adjacency, num_labels, tier)
            };
            partitions.push(rebuilt);
        }
        let next = MemoryCloud {
            partitions,
            interner: prev.interner.clone(),
            network: Arc::clone(&prev.network),
            label_frequency: prev.label_frequency.clone(),
            catalog: Arc::clone(&prev.catalog),
            num_vertices: prev.num_vertices(),
            num_edges: prev.num_edges(),
            directed: prev.is_directed(),
            epoch: prev.epoch(),
            lineage: prev.lineage(),
            epoch_labels: prev.epoch_labels.clone(),
        };
        *self.current.write().expect("epoch lock") = Arc::new(next);
        prev.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::compact::StorageTier;
    use crate::cost::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// Triangle a(0)-b(1)-c(2)-a(0) plus a pendant d(3) on c.
    fn small_cloud(machines: usize) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(0), "a");
        b.add_vertex(v(1), "b");
        b.add_vertex(v(2), "c");
        b.add_vertex(v(3), "d");
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(0));
        b.add_edge(v(2), v(3));
        b.build(machines, CostModel::default())
    }

    /// Everything observable about a cloud, as comparable owned data.
    fn observe(cloud: &MemoryCloud) -> Vec<(VertexId, LabelId, Vec<VertexId>, Option<u64>)> {
        let mut ids: Vec<VertexId> = cloud.iter_vertices().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                (
                    id,
                    cloud.label_of_global(id).expect("iterated vertex"),
                    cloud.neighbors_global(id).to_vec(),
                    cloud.signature_of(id),
                )
            })
            .collect()
    }

    #[test]
    fn fresh_manager_is_epoch_zero_with_lineage() {
        let epochs = GraphEpochs::new(small_cloud(3));
        assert_eq!(epochs.epoch(), 0);
        assert_ne!(epochs.lineage(), 0);
        let snap = epochs.pin();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.lineage(), epochs.lineage());
        assert_eq!(observe(snap.cloud()), observe(epochs.base_cloud()));
    }

    #[test]
    fn apply_adds_vertices_and_edges() {
        let epochs = GraphEpochs::new(small_cloud(4));
        let e = epochs
            .apply(
                &UpdateBatch::new()
                    .add_vertex(v(9), "e")
                    .add_edge(v(9), v(2)),
            )
            .unwrap();
        assert_eq!(e, 1);
        let snap = epochs.pin();
        assert!(snap.contains_vertex(v(9)));
        assert_eq!(snap.labels().get("e"), snap.label_of_global(v(9)));
        assert_eq!(snap.neighbors_global(v(9)).to_vec(), vec![v(2)]);
        assert!(snap.has_edge_global(v(2), v(9)));
        assert_eq!(snap.num_vertices(), 5);
        assert_eq!(snap.num_edges(), 5);
        let le = snap.labels().get("e").unwrap();
        assert_eq!(snap.label_frequency(le), 1);
        assert_eq!(snap.all_ids_with_label(le), vec![v(9)]);
    }

    #[test]
    fn apply_removes_vertex_and_incident_edges() {
        let epochs = GraphEpochs::new(small_cloud(4));
        epochs
            .apply(&UpdateBatch::new().remove_vertex(v(2)))
            .unwrap();
        let snap = epochs.pin();
        assert!(!snap.contains_vertex(v(2)));
        assert!(!snap.has_edge_global(v(1), v(2)));
        assert!(!snap.has_edge_global(v(2), v(3)));
        assert_eq!(snap.neighbors_global(v(3)).to_vec(), Vec::<VertexId>::new());
        assert_eq!(snap.neighbors_global(v(0)).to_vec(), vec![v(1)]);
        assert_eq!(snap.num_vertices(), 3);
        assert_eq!(snap.num_edges(), 1);
        let lc = snap.labels().get("c").unwrap();
        assert_eq!(snap.label_frequency(lc), 0);
        assert!(snap.all_ids_with_label(lc).is_empty());
    }

    #[test]
    fn apply_relabel_updates_postings_frequency_and_signatures() {
        let epochs = GraphEpochs::new(small_cloud(2));
        epochs
            .apply(&UpdateBatch::new().add_vertex(v(3), "a"))
            .unwrap();
        let snap = epochs.pin();
        let la = snap.labels().get("a").unwrap();
        let ld = snap.labels().get("d").unwrap();
        assert_eq!(snap.label_of_global(v(3)), Some(la));
        assert_eq!(snap.label_frequency(la), 2);
        assert_eq!(snap.label_frequency(ld), 0);
        let mut with_a = snap.all_ids_with_label(la);
        with_a.sort_unstable();
        assert_eq!(with_a, vec![v(0), v(3)]);
        // v(2) is v(3)'s only neighbor: its signature must now claim `a`
        // (and no longer `d`).
        let sig = snap.signature_of(v(2)).expect("builder always indexes");
        assert_ne!(sig & label_bit(la), 0);
        assert_eq!(sig & label_bit(ld), 0);
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_later_epochs() {
        let epochs = GraphEpochs::new(small_cloud(4));
        let before = epochs.pin();
        let baseline = observe(before.cloud());
        epochs
            .apply(&UpdateBatch::new().remove_vertex(v(0)).add_vertex(v(7), "x"))
            .unwrap();
        epochs
            .apply(&UpdateBatch::new().add_edge(v(7), v(1)))
            .unwrap();
        assert_eq!(epochs.epoch(), 2);
        // The old pin still sees epoch 0, bit-identical.
        assert_eq!(before.epoch(), 0);
        assert_eq!(observe(before.cloud()), baseline);
        assert!(before.contains_vertex(v(0)));
        assert!(!before.contains_vertex(v(7)));
    }

    #[test]
    fn seal_keeps_epoch_and_content_and_drops_overlays() {
        for tier in [StorageTier::Plain, StorageTier::Compact] {
            std::env::remove_var("STWIG_STORAGE");
            let mut b = GraphBuilder::new_undirected().with_storage_tier(tier);
            b.add_vertex(v(0), "a");
            b.add_vertex(v(1), "b");
            b.add_vertex(v(2), "c");
            b.add_edge(v(0), v(1));
            b.add_edge(v(1), v(2));
            let epochs = GraphEpochs::new(b.build(3, CostModel::default()));
            epochs
                .apply(
                    &UpdateBatch::new()
                        .add_vertex(v(5), "b")
                        .add_edge(v(5), v(0))
                        .remove_edge(v(1), v(2)),
                )
                .unwrap();
            let dirty = epochs.pin();
            let before = observe(dirty.cloud());
            assert!(dirty.cloud().partitions.iter().any(Partition::has_overlay));
            let sealed_epoch = epochs.seal_epoch();
            assert_eq!(sealed_epoch, 1);
            let sealed = epochs.pin();
            assert_eq!(sealed.epoch(), 1);
            assert!(!sealed.cloud().partitions.iter().any(Partition::has_overlay));
            assert_eq!(observe(sealed.cloud()), before);
            // The pre-seal pin still reads its overlaid view, identically.
            assert_eq!(observe(dirty.cloud()), before);
            // Pair-table statistics were rebuilt exactly for the new graph.
            let lb = sealed.labels().get("b").unwrap();
            let la = sealed.labels().get("a").unwrap();
            let lc = sealed.labels().get("c").unwrap();
            assert_eq!(sealed.label_pair_count(la, lb), 4, "a-b edges: 0-1, 0-5");
            assert_eq!(sealed.label_pair_count(lb, lc), 0, "1-2 was removed");
            // Sealing an already-clean lineage is a no-op.
            assert_eq!(epochs.seal_epoch(), 1);
        }
    }

    #[test]
    fn apply_validates_and_is_atomic() {
        let epochs = GraphEpochs::new(small_cloud(3));
        let baseline = observe(epochs.pin().cloud());
        let err = epochs
            .apply(
                &UpdateBatch::new()
                    .add_vertex(v(8), "x")
                    .add_edge(v(8), v(99)),
            )
            .unwrap_err();
        assert_eq!(err, TrinityError::UnknownVertex(v(99)));
        assert_eq!(epochs.epoch(), 0, "failed batch must not publish");
        assert_eq!(observe(epochs.pin().cloud()), baseline);
        assert!(matches!(
            epochs.apply(&UpdateBatch::new().remove_vertex(v(42))),
            Err(TrinityError::UnknownVertex(_))
        ));
    }

    #[test]
    fn no_op_batches_keep_the_epoch() {
        let epochs = GraphEpochs::new(small_cloud(3));
        // Absent-edge removal, existing-edge add, same-label relabel,
        // self-loop: all no-ops.
        let e = epochs
            .apply(
                &UpdateBatch::new()
                    .remove_edge(v(0), v(3))
                    .add_edge(v(0), v(1))
                    .add_vertex(v(0), "a")
                    .add_edge(v(2), v(2)),
            )
            .unwrap();
        assert_eq!(e, 0);
        // Add-then-remove within one batch nets out too.
        let e = epochs
            .apply(
                &UpdateBatch::new()
                    .add_vertex(v(9), "z")
                    .add_edge(v(9), v(0))
                    .remove_vertex(v(9)),
            )
            .unwrap();
        assert_eq!(e, 0);
    }

    #[test]
    fn remove_then_readd_nets_to_edge_removal() {
        let epochs = GraphEpochs::new(small_cloud(3));
        let e = epochs
            .apply(&UpdateBatch::new().remove_vertex(v(2)).add_vertex(v(2), "c"))
            .unwrap();
        assert_eq!(e, 1, "edges changed even though the vertex survived");
        let snap = epochs.pin();
        assert!(snap.contains_vertex(v(2)));
        assert_eq!(snap.neighbors_global(v(2)).to_vec(), Vec::<VertexId>::new());
        assert_eq!(snap.num_edges(), 1);
    }

    #[test]
    fn deleted_base_vertex_can_come_back() {
        let epochs = GraphEpochs::new(small_cloud(3));
        epochs
            .apply(&UpdateBatch::new().remove_vertex(v(3)))
            .unwrap();
        epochs
            .apply(
                &UpdateBatch::new()
                    .add_vertex(v(3), "d2")
                    .add_edge(v(3), v(0)),
            )
            .unwrap();
        let snap = epochs.pin();
        assert_eq!(
            snap.label_of_global(v(3)),
            Some(snap.labels().get("d2").unwrap())
        );
        assert_eq!(snap.neighbors_global(v(3)).to_vec(), vec![v(0)]);
        assert_eq!(snap.num_vertices(), 4);
    }

    #[test]
    fn label_log_tracks_touched_labels_per_epoch() {
        let epochs = GraphEpochs::new(small_cloud(3));
        epochs
            .apply(&UpdateBatch::new().add_edge(v(0), v(3)))
            .unwrap(); // touches a, d
        epochs
            .apply(&UpdateBatch::new().add_vertex(v(1), "b2"))
            .unwrap(); // touches b, b2
        let snap = epochs.pin();
        let log = snap.epoch_label_log().expect("managed cloud has a log");
        let la = snap.labels().get("a").unwrap();
        let lb = snap.labels().get("b").unwrap();
        let lc = snap.labels().get("c").unwrap();
        assert_eq!(log.touched_in_range(0, 2, &[lc]), Some(false));
        assert_eq!(log.touched_in_range(0, 1, &[la]), Some(true));
        assert_eq!(log.touched_in_range(1, 2, &[la]), Some(false));
        assert_eq!(log.touched_in_range(1, 2, &[lb]), Some(true));
        assert_eq!(log.touched_in_range(2, 2, &[la, lb, lc]), Some(false));
        assert_eq!(
            log.touched_in_range(0, 3, &[lc]),
            None,
            "epoch 3 not recorded yet: coverage is incomplete"
        );
    }

    #[test]
    fn readers_pinned_across_concurrent_seal_see_identical_data() {
        let epochs = GraphEpochs::new(small_cloud(4));
        epochs
            .apply(
                &UpdateBatch::new()
                    .add_vertex(v(10), "x")
                    .add_edge(v(10), v(0))
                    .remove_edge(v(2), v(3)),
            )
            .unwrap();
        let pinned = epochs.pin();
        let baseline = observe(pinned.cloud());
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                for _ in 0..50 {
                    assert_eq!(observe(pinned.cloud()), baseline);
                }
            });
            let writer = scope.spawn(|| {
                for i in 0..10u64 {
                    epochs
                        .apply(&UpdateBatch::new().add_vertex(v(100 + i), "y"))
                        .unwrap();
                    epochs.seal_epoch();
                }
            });
            reader.join().unwrap();
            writer.join().unwrap();
        });
        assert_eq!(epochs.epoch(), 11);
        assert_eq!(observe(pinned.cloud()), baseline, "pin survived 10 seals");
    }
}
