//! Whole-graph statistics used by query optimization and by the experiment
//! harness (degree distributions, label frequencies, memory accounting).

use crate::cloud::MemoryCloud;
use crate::ids::LabelId;
use serde::{Deserialize, Serialize};

/// Summary statistics of a memory-cloud-resident graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total vertices.
    pub num_vertices: u64,
    /// Total undirected edges.
    pub num_edges: u64,
    /// Number of distinct labels.
    pub num_labels: usize,
    /// Average degree (2·m / n for an undirected graph).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated_vertices: u64,
    /// Label density: distinct labels divided by vertex count (the knob swept
    /// in Fig. 10(d)).
    pub label_density: f64,
    /// Approximate resident memory of the partitioned graph, in bytes.
    pub memory_bytes: usize,
    /// Number of logical machines.
    pub num_machines: usize,
    /// Vertices per machine (balance diagnostic).
    pub vertices_per_machine: Vec<usize>,
}

/// Computes [`GraphStats`] for a cloud-resident graph in one pass.
pub fn graph_stats(cloud: &MemoryCloud) -> GraphStats {
    let mut max_degree = 0usize;
    let mut isolated = 0u64;
    let mut degree_sum = 0u128;
    for m in cloud.machines() {
        let p = cloud.partition(m);
        for cell in p.iter_cells() {
            let d = cell.neighbors.len();
            degree_sum += d as u128;
            if d > max_degree {
                max_degree = d;
            }
            if d == 0 {
                isolated += 1;
            }
        }
    }
    let n = cloud.num_vertices();
    let avg_degree = if n > 0 {
        degree_sum as f64 / n as f64
    } else {
        0.0
    };
    let vertices_per_machine = cloud
        .machines()
        .map(|m| cloud.partition(m).num_vertices())
        .collect();
    GraphStats {
        num_vertices: n,
        num_edges: cloud.num_edges(),
        num_labels: cloud.labels().len(),
        avg_degree,
        max_degree,
        isolated_vertices: isolated,
        label_density: if n > 0 {
            cloud.labels().len() as f64 / n as f64
        } else {
            0.0
        },
        memory_bytes: cloud.memory_bytes(),
        num_machines: cloud.num_machines(),
        vertices_per_machine,
    }
}

/// A histogram of label frequencies, sorted by decreasing frequency.
pub fn label_histogram(cloud: &MemoryCloud) -> Vec<(LabelId, u64)> {
    let mut hist: Vec<(LabelId, u64)> = cloud
        .labels()
        .iter()
        .map(|(id, _)| (id, cloud.label_frequency(id)))
        .collect();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hist
}

/// Degree histogram with logarithmic (power-of-two) buckets: entry `i` counts
/// vertices whose degree `d` satisfies `2^i <= d+1 < 2^(i+1)`.
pub fn degree_histogram_log2(cloud: &MemoryCloud) -> Vec<u64> {
    let mut buckets: Vec<u64> = Vec::new();
    for m in cloud.machines() {
        let p = cloud.partition(m);
        for cell in p.iter_cells() {
            let bucket = (usize::BITS - (cell.neighbors.len() + 1).leading_zeros() - 1) as usize;
            if bucket >= buckets.len() {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::VertexId;
    use crate::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn star_cloud(leaves: u64, machines: usize) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(0), "hub");
        for i in 1..=leaves {
            b.add_vertex(v(i), "leaf");
            b.add_edge(v(0), v(i));
        }
        // one isolated vertex
        b.add_vertex(v(leaves + 1), "iso");
        b.build(machines, CostModel::free())
    }

    #[test]
    fn stats_on_star() {
        let cloud = star_cloud(10, 3);
        let s = graph_stats(&cloud);
        assert_eq!(s.num_vertices, 12);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.num_labels, 3);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.isolated_vertices, 1);
        assert!((s.avg_degree - 20.0 / 12.0).abs() < 1e-9);
        assert_eq!(s.num_machines, 3);
        assert_eq!(s.vertices_per_machine.iter().sum::<usize>(), 12);
        assert!(s.memory_bytes > 0);
        assert!((s.label_density - 3.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn label_histogram_is_sorted_by_frequency() {
        let cloud = star_cloud(10, 2);
        let hist = label_histogram(&cloud);
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].1, 10); // "leaf"
        assert!(hist[1].1 <= hist[0].1);
        assert!(hist[2].1 <= hist[1].1);
    }

    #[test]
    fn degree_histogram_buckets_sum_to_n() {
        let cloud = star_cloud(17, 4);
        let hist = degree_histogram_log2(&cloud);
        assert_eq!(hist.iter().sum::<u64>(), cloud.num_vertices());
        // hub has degree 17 → bucket log2(18) = 4
        assert!(hist.len() >= 5);
        assert!(hist[4] >= 1);
    }
}
