//! The compact storage tier: delta/varint-encoded adjacency, succinct label
//! postings and a slot-array id map.
//!
//! Trinity's cells live in flat memory trunks precisely because per-object
//! overhead is what kills billion-node graphs (PAPER.md §3); the Compact
//! Neighborhood Index line of work (PAPERS.md) goes further and shows that
//! adjacency structure compresses to a few bits per edge without giving up
//! sequential access. This module applies both ideas to the partition store:
//!
//! * [`CompactCsr`] — neighbor runs are stored as `varint(degree)`,
//!   `varint(first id)`, then `varint(delta)` per subsequent id. Runs are
//!   already sorted and deduplicated, so every delta is ≥ 1 and small ids
//!   cluster into one- and two-byte codes. Per-vertex byte offsets live in a
//!   `u32` or `u64` array, the width chosen once at build time.
//! * [`Neighbors`] — a zero-copy view over either a plain `&[VertexId]` run
//!   or an encoded byte run. Exploration iterates it directly
//!   (decode-on-iterate, no allocation); multi-pass consumers materialize
//!   into a caller-owned [`NeighborScratch`] whose small-degree fast path is
//!   an inline stack array.
//! * [`CompactLabelIndex`] — per-label postings over *local* vertex indices,
//!   stored as whichever of a dense bitmap or a delta-varint list is smaller
//!   for that label. [`Postings`] decodes back to sorted global ids against
//!   the partition's vertex-id array.
//! * [`CompactIdMap`] — an open-addressed slot array mapping global ids to
//!   local indices in 4 bytes per slot (~8 bytes per vertex at 50% load)
//!   instead of `HashMap`'s ~50 bytes per vertex.
//!
//! The tier is selected by [`StorageTier`] (`STWIG_STORAGE` env knob,
//! default [`StorageTier::Compact`]) and must be *observationally
//! equivalent* to the plain tier: every query path produces bit-identical
//! tables on either tier.

use crate::ids::{LabelId, VertexId};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Storage tier knob
// ---------------------------------------------------------------------------

/// Which physical representation a partition stores its graph in.
///
/// Both tiers answer every query identically; they differ only in resident
/// bytes and decode cost. `Plain` keeps the original flat `Vec` structures
/// (8-byte neighbor entries, `Vec<Vec<_>>` postings, `HashMap` id map) and
/// exists as the honest baseline the compact tier is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageTier {
    /// Uncompressed flat arrays and a `HashMap` id map.
    Plain,
    /// Delta/varint CSR, bitmap-or-delta postings, open-addressed id map.
    Compact,
}

impl StorageTier {
    /// Parses a tier name as accepted by the `STWIG_STORAGE` environment
    /// variable. Unknown strings return `None`.
    pub fn parse(s: &str) -> Option<StorageTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "plain" => Some(StorageTier::Plain),
            "compact" => Some(StorageTier::Compact),
            _ => None,
        }
    }

    /// The tier name (`"plain"` / `"compact"`).
    pub fn as_str(self) -> &'static str {
        match self {
            StorageTier::Plain => "plain",
            StorageTier::Compact => "compact",
        }
    }

    /// Reads the process-wide default tier from `STWIG_STORAGE`, falling
    /// back to [`StorageTier::Compact`]. Read once and cached: like
    /// `STWIG_TRANSPORT`, the knob selects a deployment-wide default, and
    /// flipping it mid-process would let two clouds that must never share
    /// cache entries be built under one fingerprint discipline.
    pub fn from_env() -> StorageTier {
        static TIER: OnceLock<StorageTier> = OnceLock::new();
        *TIER.get_or_init(|| {
            std::env::var("STWIG_STORAGE")
                .ok()
                .and_then(|v| StorageTier::parse(&v))
                .unwrap_or(StorageTier::Compact)
        })
    }

    /// Stable one-byte tag hashed into cloud fingerprints. Explicit (rather
    /// than a derived discriminant) so the fingerprint contract survives
    /// enum reordering.
    pub fn fingerprint_tag(self) -> u8 {
        match self {
            StorageTier::Plain => 0,
            StorageTier::Compact => 1,
        }
    }
}

impl Default for StorageTier {
    fn default() -> Self {
        StorageTier::from_env()
    }
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Varint primitives (LEB128)
// ---------------------------------------------------------------------------

/// Appends `x` to `buf` as an LEB128 varint (7 data bits per byte, high bit
/// set on continuation bytes).
#[inline]
pub fn push_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes [`push_varint`] emits for `x`.
#[inline]
pub fn varint_len(x: u64) -> usize {
    // ceil(bits/7), with 0 taking one byte.
    (64 - x.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Reads one varint starting at `*pos`, advancing `*pos` past it.
///
/// # Panics
/// Panics (via slice indexing) on a truncated buffer — encoded runs are
/// produced and consumed inside this crate, so truncation is a logic error.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Offset array with build-time width selection
// ---------------------------------------------------------------------------

/// Per-vertex byte offsets into an encoded data buffer, stored 4 bytes per
/// vertex when the buffer fits in `u32` (it essentially always does: 4 GiB
/// of encoded adjacency per partition) and 8 bytes otherwise.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum OffsetArray {
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl OffsetArray {
    /// Narrows `offsets` to `u32` when every value fits.
    fn from_u64s(offsets: Vec<u64>) -> Self {
        match offsets.last() {
            Some(&last) if last > u64::from(u32::MAX) => OffsetArray::U64(offsets),
            _ => OffsetArray::U32(offsets.into_iter().map(|o| o as u32).collect()),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            OffsetArray::U32(v) => v[i] as usize,
            OffsetArray::U64(v) => v[i] as usize,
        }
    }

    fn len(&self) -> usize {
        match self {
            OffsetArray::U32(v) => v.len(),
            OffsetArray::U64(v) => v.len(),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            OffsetArray::U32(v) => v.len() * 4,
            OffsetArray::U64(v) => v.len() * 8,
        }
    }
}

impl Default for OffsetArray {
    fn default() -> Self {
        OffsetArray::U32(vec![0])
    }
}

// ---------------------------------------------------------------------------
// Zero-copy neighbor views
// ---------------------------------------------------------------------------

/// How many neighbor ids [`NeighborScratch`] holds without touching the
/// heap. Degree histograms of the R-MAT and dataset-profile graphs put the
/// overwhelming majority of vertices at or below this degree.
pub const SCRATCH_INLINE: usize = 16;

/// A zero-copy view of one vertex's sorted neighbor run, independent of the
/// storage tier it lives in.
///
/// Plain partitions hand out the underlying slice; compact partitions hand
/// out the encoded bytes and decode on iteration, so the exploration hot
/// path never materializes a `Vec` either way.
#[derive(Clone, Copy)]
pub enum Neighbors<'a> {
    /// A plain sorted slice (the `StorageTier::Plain` representation).
    Slice(&'a [VertexId]),
    /// A delta/varint-encoded run of `len` ids (degree varint stripped).
    Compact {
        /// Encoded bytes: `varint(first)`, then `varint(delta ≥ 1)` each.
        data: &'a [u8],
        /// Number of ids in the run.
        len: u32,
    },
}

impl<'a> Neighbors<'a> {
    /// The empty run.
    pub fn empty() -> Neighbors<'static> {
        Neighbors::Slice(&[])
    }

    /// Number of neighbors in the run.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Neighbors::Slice(s) => s.len(),
            Neighbors::Compact { len, .. } => *len as usize,
        }
    }

    /// Whether the run is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the run in ascending id order without allocating.
    #[inline]
    pub fn iter(&self) -> NeighborIter<'a> {
        match *self {
            Neighbors::Slice(s) => NeighborIter::Slice(s.iter()),
            Neighbors::Compact { data, len } => NeighborIter::Compact {
                data,
                pos: 0,
                remaining: len,
                prev: 0,
            },
        }
    }

    /// Whether `target` is in the run. Binary search on the plain tier; an
    /// early-exit scan on the compact tier (runs are sorted, so the scan
    /// stops at the first id past `target`).
    pub fn contains(&self, target: VertexId) -> bool {
        match *self {
            Neighbors::Slice(s) => s.binary_search(&target).is_ok(),
            Neighbors::Compact { .. } => {
                for n in self.iter() {
                    if n >= target {
                        return n == target;
                    }
                }
                false
            }
        }
    }

    /// Decodes into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<VertexId> {
        match *self {
            Neighbors::Slice(s) => s.to_vec(),
            Neighbors::Compact { .. } => self.iter().collect(),
        }
    }

    /// Materializes the run as a contiguous slice for multi-pass consumers
    /// (exploration walks a root's neighbors once per STwig child).
    ///
    /// The plain tier returns the underlying slice untouched (zero-copy);
    /// the compact tier decodes once into `scratch` — an inline stack array
    /// for runs of at most [`SCRATCH_INLINE`] ids, the scratch's reusable
    /// heap buffer above that.
    pub fn materialize<'s>(&self, scratch: &'s mut NeighborScratch) -> &'s [VertexId]
    where
        'a: 's,
    {
        match *self {
            Neighbors::Slice(s) => s,
            Neighbors::Compact { len, .. } => {
                let len = len as usize;
                if len <= SCRATCH_INLINE {
                    for (slot, n) in scratch.inline.iter_mut().zip(self.iter()) {
                        *slot = n;
                    }
                    &scratch.inline[..len]
                } else {
                    scratch.heap.clear();
                    scratch.heap.extend(self.iter());
                    &scratch.heap
                }
            }
        }
    }
}

impl Default for Neighbors<'_> {
    fn default() -> Self {
        Neighbors::Slice(&[])
    }
}

impl<'a> IntoIterator for Neighbors<'a> {
    type Item = VertexId;
    type IntoIter = NeighborIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for Neighbors<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Neighbors<'_> {}

impl PartialEq<&[VertexId]> for Neighbors<'_> {
    fn eq(&self, other: &&[VertexId]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl<const N: usize> PartialEq<&[VertexId; N]> for Neighbors<'_> {
    fn eq(&self, other: &&[VertexId; N]) -> bool {
        self.len() == N && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<Vec<VertexId>> for Neighbors<'_> {
    fn eq(&self, other: &Vec<VertexId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl std::fmt::Debug for Neighbors<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over a [`Neighbors`] run.
#[derive(Clone)]
pub enum NeighborIter<'a> {
    /// Plain-slice iteration.
    Slice(std::slice::Iter<'a, VertexId>),
    /// Varint decode-on-iterate.
    Compact {
        /// Encoded run bytes.
        data: &'a [u8],
        /// Cursor into `data`.
        pos: usize,
        /// Ids left to decode.
        remaining: u32,
        /// Last decoded id (delta base); the first id is absolute.
        prev: u64,
    },
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            NeighborIter::Slice(it) => it.next().copied(),
            NeighborIter::Compact {
                data,
                pos,
                remaining,
                prev,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let at_start = *pos == 0;
                let raw = read_varint(data, pos);
                let id = if at_start { raw } else { *prev + raw };
                *prev = id;
                Some(VertexId(id))
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            NeighborIter::Slice(it) => it.len(),
            NeighborIter::Compact { remaining, .. } => *remaining as usize,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Reusable scratch space for [`Neighbors::materialize`]: an inline array
/// covering the common small degrees plus a heap spill buffer that is
/// allocated once and reused across roots.
pub struct NeighborScratch {
    inline: [VertexId; SCRATCH_INLINE],
    heap: Vec<VertexId>,
}

impl NeighborScratch {
    /// A fresh scratch with an empty spill buffer.
    pub fn new() -> Self {
        NeighborScratch {
            inline: [VertexId(0); SCRATCH_INLINE],
            heap: Vec::new(),
        }
    }
}

impl Default for NeighborScratch {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Compact CSR
// ---------------------------------------------------------------------------

/// Delta/varint-encoded CSR adjacency over one partition's local vertices.
///
/// Layout: one byte buffer holding, per local vertex, `varint(degree)`
/// followed by the encoded run (`varint(first id)`, then `varint(delta)` per
/// subsequent id — runs are sorted and deduplicated so every delta is ≥ 1),
/// plus an [`OffsetArray`] of per-vertex byte offsets whose width (`u32` vs
/// `u64`) is chosen once at build time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompactCsr {
    /// `offsets[i]..offsets[i+1]` is the byte range of vertex `i`'s record.
    offsets: OffsetArray,
    /// Concatenated per-vertex records.
    data: Vec<u8>,
    /// Total neighbor entries across all runs.
    num_entries: u64,
}

impl CompactCsr {
    /// Builds a compact CSR from per-vertex adjacency lists, sorting and
    /// deduplicating each list. Every inner list is freed right after it is
    /// encoded, so the peak is input plus the (much smaller) encoded output.
    pub fn from_lists(lists: Vec<Vec<VertexId>>) -> Self {
        let mut b = CompactCsrBuilder::with_capacity(lists.len());
        for mut l in lists {
            l.sort_unstable();
            l.dedup();
            b.push_run(&l);
        }
        b.finish()
    }

    /// Number of local vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored neighbor entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.num_entries as usize
    }

    /// The encoded neighbor run of local vertex `local`.
    #[inline]
    pub fn neighbors(&self, local: usize) -> Neighbors<'_> {
        let start = self.offsets.get(local);
        let end = self.offsets.get(local + 1);
        let record = &self.data[start..end];
        let mut pos = 0usize;
        let degree = read_varint(record, &mut pos) as u32;
        Neighbors::Compact {
            data: &record[pos..],
            len: degree,
        }
    }

    /// Degree of local vertex `local` (decodes one varint).
    #[inline]
    pub fn degree(&self, local: usize) -> usize {
        let start = self.offsets.get(local);
        let mut pos = start;
        read_varint(&self.data, &mut pos) as usize
    }

    /// Whether `target` is among `local`'s neighbors (early-exit scan).
    #[inline]
    pub fn has_neighbor(&self, local: usize, target: VertexId) -> bool {
        self.neighbors(local).contains(target)
    }

    /// Resident bytes: offsets plus the encoded buffer.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.memory_bytes() + self.data.len()
    }

    /// Iterates `(local_index, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Neighbors<'_>)> {
        (0..self.num_vertices()).map(move |i| (i, self.neighbors(i)))
    }
}

/// Incremental [`CompactCsr`] builder: push one sorted, deduplicated run per
/// local vertex, then [`CompactCsrBuilder::finish`]. Used by the streaming
/// bulk loader so no `Vec<Vec<VertexId>>` staging ever exists.
#[derive(Debug, Default)]
pub struct CompactCsrBuilder {
    offsets: Vec<u64>,
    data: Vec<u8>,
    num_entries: u64,
}

impl CompactCsrBuilder {
    /// A builder expecting about `num_vertices` runs.
    pub fn with_capacity(num_vertices: usize) -> Self {
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        CompactCsrBuilder {
            offsets,
            data: Vec::new(),
            num_entries: 0,
        }
    }

    /// Appends the next local vertex's neighbor run, which must be sorted
    /// ascending and free of duplicates.
    pub fn push_run(&mut self, run: &[VertexId]) {
        debug_assert!(
            run.windows(2).all(|w| w[0] < w[1]),
            "compact CSR runs must be strictly ascending"
        );
        push_varint(&mut self.data, run.len() as u64);
        let mut prev = 0u64;
        for (i, &VertexId(id)) in run.iter().enumerate() {
            push_varint(&mut self.data, if i == 0 { id } else { id - prev });
            prev = id;
        }
        self.num_entries += run.len() as u64;
        self.offsets.push(self.data.len() as u64);
    }

    /// Finalizes the CSR, narrowing the offset width where possible.
    pub fn finish(self) -> CompactCsr {
        let CompactCsrBuilder {
            offsets,
            mut data,
            num_entries,
        } = self;
        data.shrink_to_fit();
        CompactCsr {
            offsets: OffsetArray::from_u64s(offsets),
            data,
            num_entries,
        }
    }
}

// ---------------------------------------------------------------------------
// Compact id map
// ---------------------------------------------------------------------------

/// Open-addressed global-id → local-index map storing only 4-byte local
/// slots; the global ids themselves are read back from the partition's
/// vertex-id array during probing, so the map adds no key storage at all.
///
/// Capacity is a power of two at ≤ 50% load, giving ~8 bytes per vertex —
/// better than 4× below the ~50 bytes per entry `HashMap<VertexId, u32>`
/// costs. Probing is Fibonacci hash + linear scan; the `u32::MAX` slot value
/// marks "empty".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompactIdMap {
    slots: Vec<u32>,
    mask: u64,
    shift: u32,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl CompactIdMap {
    /// Builds the map over `ids` (the partition's local-index → global-id
    /// array). Local indices must fit `u32::MAX - 1`.
    pub fn build(ids: &[VertexId]) -> Self {
        assert!(
            ids.len() < EMPTY_SLOT as usize,
            "partition too large for a u32 id map"
        );
        let capacity = (ids.len() * 2).next_power_of_two().max(2);
        let mut map = CompactIdMap {
            slots: vec![EMPTY_SLOT; capacity],
            mask: capacity as u64 - 1,
            shift: 64 - capacity.trailing_zeros(),
        };
        for (local, &id) in ids.iter().enumerate() {
            let mut slot = map.probe_start(id);
            while map.slots[slot] != EMPTY_SLOT {
                debug_assert!(
                    ids[map.slots[slot] as usize] != id,
                    "duplicate vertex id {id} in partition"
                );
                slot = (slot + 1) & map.mask as usize;
            }
            map.slots[slot] = local as u32;
        }
        map
    }

    #[inline]
    fn probe_start(&self, id: VertexId) -> usize {
        // Fibonacci multiplicative hash, taking the *top* bits so that the
        // low-bit patterns `machine_for` leaves behind do not cluster.
        ((id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) & self.mask) as usize
    }

    /// Looks up the local index of `id`. `ids` must be the same array the
    /// map was built over.
    #[inline]
    pub fn get(&self, ids: &[VertexId], id: VertexId) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mut slot = self.probe_start(id);
        loop {
            let local = self.slots[slot];
            if local == EMPTY_SLOT {
                return None;
            }
            if ids[local as usize] == id {
                return Some(local);
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Resident bytes of the slot array.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }
}

// ---------------------------------------------------------------------------
// Succinct label postings
// ---------------------------------------------------------------------------

/// One label's posting list over *local* vertex indices, stored as whichever
/// representation is smaller for this label: a dense bitmap over the local
/// index space (cheap for frequent labels) or a delta-varint list (cheap for
/// rare ones). Local indices are in ascending global-id order, so decoding
/// yields sorted global ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PostingList {
    /// No local vertex carries this label.
    Empty,
    /// Bit `i` set ⇔ local vertex `i` carries the label.
    Bitmap {
        /// `ceil(num_local / 64)` words.
        words: Vec<u64>,
        /// Number of set bits (the label's local frequency).
        count: u32,
    },
    /// `varint(first local)`, then `varint(delta ≥ 1)` per subsequent local.
    Deltas {
        /// Encoded local indices.
        bytes: Vec<u8>,
        /// Number of encoded indices.
        count: u32,
    },
}

impl PostingList {
    fn count(&self) -> usize {
        match self {
            PostingList::Empty => 0,
            PostingList::Bitmap { count, .. } | PostingList::Deltas { count, .. } => {
                *count as usize
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            PostingList::Empty => 0,
            PostingList::Bitmap { words, .. } => words.len() * 8,
            PostingList::Deltas { bytes, .. } => bytes.len(),
        }
    }
}

/// The compact per-machine string index: label → succinct posting list over
/// local vertex indices. Replaces [`crate::label_index::LabelIndex`]'s
/// `Vec<Vec<VertexId>>` under [`StorageTier::Compact`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompactLabelIndex {
    lists: Vec<PostingList>,
}

impl CompactLabelIndex {
    /// Builds the index from the partition's per-local-vertex label array
    /// (`labels[local]` is the label of local vertex `local`). `num_labels`
    /// is the global label-space size; out-of-space labels are dropped with
    /// a `debug_assert`, mirroring `LabelIndex::build`.
    pub fn build(labels: &[LabelId], num_labels: usize) -> Self {
        let n = labels.len();
        // Pass 1: per-label frequency and exact delta-encoded size.
        let mut counts = vec![0u32; num_labels];
        let mut delta_bytes = vec![0usize; num_labels];
        let mut last_local = vec![u64::MAX; num_labels];
        for (local, l) in labels.iter().enumerate() {
            let Some(c) = counts.get_mut(l.index()) else {
                debug_assert!(
                    false,
                    "label {l:?} of local vertex {local} is outside the declared label space ({num_labels} labels)"
                );
                continue;
            };
            let prev = last_local[l.index()];
            delta_bytes[l.index()] += if prev == u64::MAX {
                varint_len(local as u64)
            } else {
                varint_len(local as u64 - prev)
            };
            last_local[l.index()] = local as u64;
            *c += 1;
        }
        // Pass 2: pick the smaller representation per label and fill it.
        let bitmap_bytes = n.div_ceil(64) * 8;
        let mut lists: Vec<PostingList> = counts
            .iter()
            .zip(&delta_bytes)
            .map(|(&count, &dbytes)| {
                if count == 0 {
                    PostingList::Empty
                } else if bitmap_bytes < dbytes {
                    PostingList::Bitmap {
                        words: vec![0u64; n.div_ceil(64)],
                        count,
                    }
                } else {
                    PostingList::Deltas {
                        bytes: Vec::with_capacity(dbytes),
                        count,
                    }
                }
            })
            .collect();
        let mut prev = vec![0u64; num_labels];
        let mut seen = vec![false; num_labels];
        for (local, l) in labels.iter().enumerate() {
            let Some(list) = lists.get_mut(l.index()) else {
                continue;
            };
            match list {
                PostingList::Bitmap { words, .. } => {
                    words[local / 64] |= 1u64 << (local % 64);
                }
                PostingList::Deltas { bytes, .. } => {
                    let delta = if seen[l.index()] {
                        local as u64 - prev[l.index()]
                    } else {
                        local as u64
                    };
                    push_varint(bytes, delta);
                    prev[l.index()] = local as u64;
                    seen[l.index()] = true;
                }
                PostingList::Empty => unreachable!("counted label has a list"),
            }
        }
        CompactLabelIndex { lists }
    }

    /// The postings of `label`, decoded against `ids` (the partition's
    /// local-index → global-id array) to sorted global vertex ids.
    #[inline]
    pub fn get<'a>(&'a self, label: LabelId, ids: &'a [VertexId]) -> Postings<'a> {
        match self.lists.get(label.index()) {
            None | Some(PostingList::Empty) => Postings::Slice(&[]),
            Some(PostingList::Bitmap { words, count }) => Postings::Bitmap {
                words,
                ids,
                count: *count,
            },
            Some(PostingList::Deltas { bytes, count }) => Postings::Deltas {
                bytes,
                ids,
                count: *count,
            },
        }
    }

    /// Number of local vertices carrying `label`.
    #[inline]
    pub fn frequency(&self, label: LabelId) -> usize {
        self.lists.get(label.index()).map_or(0, PostingList::count)
    }

    /// Global label-space size this index was built for.
    pub fn num_labels(&self) -> usize {
        self.lists.len()
    }

    /// Total postings across all labels.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(PostingList::count).sum()
    }

    /// Resident bytes: posting payloads plus the per-label enum headers.
    pub fn memory_bytes(&self) -> usize {
        self.lists.len() * std::mem::size_of::<PostingList>()
            + self
                .lists
                .iter()
                .map(PostingList::memory_bytes)
                .sum::<usize>()
    }
}

/// A zero-copy view of one label's local postings, decoded to sorted global
/// vertex ids on iteration. The type both storage tiers answer
/// `Index.getID` with.
#[derive(Clone, Copy)]
pub enum Postings<'a> {
    /// A plain sorted slice of global ids (the plain tier).
    Slice(&'a [VertexId]),
    /// A bitmap over local indices, mapped through `ids`.
    Bitmap {
        /// Bit `i` set ⇔ local vertex `i` carries the label.
        words: &'a [u64],
        /// Local-index → global-id array.
        ids: &'a [VertexId],
        /// Number of set bits.
        count: u32,
    },
    /// Delta-varint local indices, mapped through `ids`.
    Deltas {
        /// Encoded local indices.
        bytes: &'a [u8],
        /// Local-index → global-id array.
        ids: &'a [VertexId],
        /// Number of encoded indices.
        count: u32,
    },
}

impl<'a> Postings<'a> {
    /// The empty postings.
    pub fn empty() -> Postings<'static> {
        Postings::Slice(&[])
    }

    /// Number of ids in the posting list.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Postings::Slice(s) => s.len(),
            Postings::Bitmap { count, .. } | Postings::Deltas { count, .. } => *count as usize,
        }
    }

    /// Whether the posting list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates global ids in ascending order without allocating.
    pub fn iter(&self) -> PostingsIter<'a> {
        match *self {
            Postings::Slice(s) => PostingsIter::Slice(s.iter()),
            Postings::Bitmap { words, ids, count } => PostingsIter::Bitmap {
                words,
                ids,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
                remaining: count,
            },
            Postings::Deltas { bytes, ids, count } => PostingsIter::Deltas {
                bytes,
                ids,
                pos: 0,
                prev: 0,
                remaining: count,
            },
        }
    }

    /// Decodes into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<VertexId> {
        match *self {
            Postings::Slice(s) => s.to_vec(),
            _ => self.iter().collect(),
        }
    }
}

impl<'a> IntoIterator for Postings<'a> {
    type Item = VertexId;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for Postings<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Postings<'_> {}

impl PartialEq<&[VertexId]> for Postings<'_> {
    fn eq(&self, other: &&[VertexId]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl<const N: usize> PartialEq<&[VertexId; N]> for Postings<'_> {
    fn eq(&self, other: &&[VertexId; N]) -> bool {
        self.len() == N && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<Vec<VertexId>> for Postings<'_> {
    fn eq(&self, other: &Vec<VertexId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl std::fmt::Debug for Postings<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over a [`Postings`] view.
#[derive(Clone)]
pub enum PostingsIter<'a> {
    /// Plain-slice iteration.
    Slice(std::slice::Iter<'a, VertexId>),
    /// Bitmap scan (lowest set bit first).
    Bitmap {
        /// Bitmap words.
        words: &'a [u64],
        /// Local-index → global-id array.
        ids: &'a [VertexId],
        /// Index of the word `current` was loaded from.
        word_idx: usize,
        /// Remaining bits of the current word.
        current: u64,
        /// Set bits left to visit.
        remaining: u32,
    },
    /// Varint decode.
    Deltas {
        /// Encoded local indices.
        bytes: &'a [u8],
        /// Local-index → global-id array.
        ids: &'a [VertexId],
        /// Cursor into `bytes`.
        pos: usize,
        /// Last decoded local index.
        prev: u64,
        /// Indices left to decode.
        remaining: u32,
    },
}

impl Iterator for PostingsIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            PostingsIter::Slice(it) => it.next().copied(),
            PostingsIter::Bitmap {
                words,
                ids,
                word_idx,
                current,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                while *current == 0 {
                    *word_idx += 1;
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros() as usize;
                *current &= *current - 1;
                *remaining -= 1;
                Some(ids[*word_idx * 64 + bit])
            }
            PostingsIter::Deltas {
                bytes,
                ids,
                pos,
                prev,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let at_start = *pos == 0;
                let raw = read_varint(bytes, pos);
                let local = if at_start { raw } else { *prev + raw };
                *prev = local;
                Some(ids[local as usize])
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            PostingsIter::Slice(it) => it.len(),
            PostingsIter::Bitmap { remaining, .. } | PostingsIter::Deltas { remaining, .. } => {
                *remaining as usize
            }
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &x in &values {
            buf.clear();
            push_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x), "len of {x}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn compact_csr_matches_plain_semantics() {
        let lists = vec![
            vec![v(3), v(1), v(3), v(100)],
            vec![],
            vec![v(0)],
            vec![v(7)],
        ];
        let c = CompactCsr::from_lists(lists);
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_entries(), 5);
        assert_eq!(c.neighbors(0), &[v(1), v(3), v(100)]);
        assert_eq!(c.neighbors(1), &[] as &[VertexId]);
        assert_eq!(c.neighbors(2), &[v(0)]);
        assert_eq!(c.degree(0), 3);
        assert_eq!(c.degree(1), 0);
        assert!(c.has_neighbor(0, v(3)));
        assert!(!c.has_neighbor(0, v(2)));
        assert!(!c.has_neighbor(0, v(101)));
        assert_eq!(c.iter().count(), 4);
    }

    #[test]
    fn compact_csr_is_smaller_than_plain_for_small_ids() {
        // 1000 vertices with ~8 neighbors each drawn from a 1000-id space:
        // deltas fit in 1-2 bytes vs 8 bytes per entry in the plain tier.
        let lists: Vec<Vec<VertexId>> = (0..1000u64)
            .map(|i| (0..8).map(|j| v((i * 37 + j * 131) % 1000)).collect())
            .collect();
        let plain_bytes: usize = lists.iter().map(|l| l.len() * 8).sum::<usize>() + 1001 * 8;
        let c = CompactCsr::from_lists(lists);
        assert!(
            c.memory_bytes() * 2 <= plain_bytes,
            "compact {} vs plain {plain_bytes}",
            c.memory_bytes()
        );
    }

    #[test]
    fn neighbors_materialize_inline_and_heap() {
        let small: Vec<VertexId> = (0..5).map(|i| v(i * 10)).collect();
        let large: Vec<VertexId> = (0..100).map(|i| v(i * 3 + 1)).collect();
        let c = CompactCsr::from_lists(vec![small.clone(), large.clone()]);
        let mut scratch = NeighborScratch::new();
        assert_eq!(c.neighbors(0).materialize(&mut scratch), &small[..]);
        assert_eq!(c.neighbors(1).materialize(&mut scratch), &large[..]);
        // Plain slices pass through without copying.
        let plain = Neighbors::Slice(&large);
        assert_eq!(plain.materialize(&mut scratch).as_ptr(), large.as_ptr());
    }

    #[test]
    fn neighbors_equality_and_debug() {
        let run: Vec<VertexId> = vec![v(2), v(5), v(9)];
        let c = CompactCsr::from_lists(vec![run.clone()]);
        let compact = c.neighbors(0);
        assert_eq!(compact, Neighbors::Slice(&run));
        assert_eq!(compact, run.clone());
        assert_eq!(format!("{compact:?}"), format!("{run:?}"));
        assert_ne!(compact, &[v(2), v(5)]);
    }

    #[test]
    fn id_map_round_trips_and_misses() {
        let ids: Vec<VertexId> = (0..257u64).map(|i| v(i * 7 + 3)).collect();
        let m = CompactIdMap::build(&ids);
        for (local, &id) in ids.iter().enumerate() {
            assert_eq!(m.get(&ids, id), Some(local as u32));
        }
        assert_eq!(m.get(&ids, v(1)), None);
        assert_eq!(m.get(&ids, v(u64::MAX)), None);
        // ≤ 50% load at 4 bytes per slot.
        assert!(m.memory_bytes() <= ids.len() * 4 * 4);
    }

    #[test]
    fn id_map_empty() {
        let m = CompactIdMap::build(&[]);
        assert_eq!(m.get(&[], v(0)), None);
    }

    #[test]
    fn label_index_picks_representation_per_label() {
        // Label 0 on every vertex (bitmap wins), label 1 on one vertex
        // (deltas win), label 2 absent (Empty).
        let n = 1000usize;
        let labels: Vec<LabelId> = (0..n).map(|i| if i == 500 { l(1) } else { l(0) }).collect();
        let idx = CompactLabelIndex::build(&labels, 3);
        assert!(matches!(idx.lists[0], PostingList::Bitmap { .. }));
        assert!(matches!(idx.lists[1], PostingList::Deltas { .. }));
        assert!(matches!(idx.lists[2], PostingList::Empty));
        assert_eq!(idx.frequency(l(0)), n - 1);
        assert_eq!(idx.frequency(l(1)), 1);
        assert_eq!(idx.frequency(l(2)), 0);
        assert_eq!(idx.total_postings(), n);
        assert_eq!(idx.num_labels(), 3);
    }

    #[test]
    fn postings_decode_sorted_global_ids() {
        let ids: Vec<VertexId> = (0..200u64).map(|i| v(i * 5 + 2)).collect();
        let labels: Vec<LabelId> = (0..200).map(|i| l((i % 3) as u32)).collect();
        let idx = CompactLabelIndex::build(&labels, 3);
        for lab in 0..3u32 {
            let expect: Vec<VertexId> = (0..200usize)
                .filter(|i| (i % 3) as u32 == lab)
                .map(|i| ids[i])
                .collect();
            let got = idx.get(l(lab), &ids);
            assert_eq!(got.len(), expect.len());
            assert_eq!(got.to_vec(), expect);
            assert_eq!(got, expect);
        }
        assert_eq!(idx.get(l(99), &ids).len(), 0);
    }

    #[test]
    fn storage_tier_parse_and_tags() {
        assert_eq!(StorageTier::parse("plain"), Some(StorageTier::Plain));
        assert_eq!(StorageTier::parse(" Compact "), Some(StorageTier::Compact));
        assert_eq!(StorageTier::parse("zstd"), None);
        assert_ne!(
            StorageTier::Plain.fingerprint_tag(),
            StorageTier::Compact.fingerprint_tag()
        );
        assert_eq!(StorageTier::Compact.to_string(), "compact");
    }

    #[test]
    fn offset_width_narrows_to_u32() {
        let c = CompactCsr::from_lists(vec![vec![v(1)], vec![v(2)]]);
        assert!(matches!(c.offsets, OffsetArray::U32(_)));
        assert_eq!(c.memory_bytes(), c.offsets.memory_bytes() + c.data.len());
    }

    #[test]
    fn hub_vertex_round_trips() {
        let hub: Vec<VertexId> = (0..10_000u64).map(|i| v(i * 2)).collect();
        let c = CompactCsr::from_lists(vec![hub.clone()]);
        assert_eq!(c.neighbors(0).to_vec(), hub);
        assert_eq!(c.degree(0), 10_000);
        assert!(c.has_neighbor(0, v(19_998)));
        assert!(!c.has_neighbor(0, v(19_999)));
    }
}
