//! Candidate-pruning indexes built next to the string index: per-vertex
//! neighborhood-label signatures and a partition-level label-pair table.
//!
//! The paper's exploration phase visits every vertex carrying the STwig root
//! label and collects all of its neighbors before discovering that most roots
//! cannot satisfy the STwig's child labels. Following the neighboring-label
//! index of l2Match and the compact neighborhood signatures of CNI (see
//! PAPERS.md), [`NeighborLabelIndex`] stores a fixed-width bitset signature
//! of each local vertex's neighbor labels. A signature **over-approximates**
//! the neighbor-label set (hash collisions only set extra bits), so a
//! negative containment test is a proof that no match is rooted there —
//! pruning on it can never drop a true match.
//!
//! [`LabelPairTable`] counts, per partition, the adjacency entries whose
//! endpoint labels are `(a, b)`. Summed over the cloud it gives the join
//! selectivity of a query edge (how many data edges can bind it), which the
//! decomposition and join-order cost models consume.

use crate::ids::LabelId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Width of a neighborhood signature in bits. With at most 64 labels the
/// signature is exact; beyond that, labels share bits and the signature
/// degrades gracefully into a one-hash bloom filter (still sound: collisions
/// only *add* bits, never remove them).
pub const SIGNATURE_BITS: usize = 64;

/// Bytes each vertex pays for its signature.
pub const SIGNATURE_BYTES_PER_VERTEX: usize = SIGNATURE_BITS / 8;

/// The all-ones signature: claims every label is present among the
/// neighbors, so nothing is ever pruned on it. Used when a neighbor's label
/// is unknown at build time (the over-approximation must stay sound).
pub const FULL_SIGNATURE: u64 = u64::MAX;

/// The signature bit a label maps to.
#[inline]
pub fn label_bit(label: LabelId) -> u64 {
    1u64 << (label.index() % SIGNATURE_BITS)
}

/// The required-bits mask for a multiset of labels: a root whose signature
/// does not contain every bit cannot have all of these labels among its
/// neighbors.
pub fn required_mask(labels: impl IntoIterator<Item = LabelId>) -> u64 {
    labels.into_iter().fold(0u64, |m, l| m | label_bit(l))
}

/// Per-vertex neighborhood-label signatures for one partition, indexed by
/// local vertex position (the same dense position space as the partition's
/// CSR). Built in one pass next to [`crate::label_index::LabelIndex`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NeighborLabelIndex {
    sigs: Vec<u64>,
}

impl NeighborLabelIndex {
    /// Wraps precomputed signatures (one per local vertex, in local position
    /// order).
    pub fn from_signatures(sigs: Vec<u64>) -> Self {
        NeighborLabelIndex { sigs }
    }

    /// The signature of the vertex at local position `pos`, or `None` when
    /// the position is out of range.
    #[inline]
    pub fn signature(&self, pos: usize) -> Option<u64> {
        self.sigs.get(pos).copied()
    }

    /// Whether `signature` can cover `required` (every required bit set). A
    /// `false` answer proves some required label is absent from the
    /// neighborhood.
    #[inline]
    pub fn covers(signature: u64, required: u64) -> bool {
        signature & required == required
    }

    /// Number of signatures (local vertices).
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the index holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sigs.len() * std::mem::size_of::<u64>()
    }
}

/// Partition-level count of adjacency entries by endpoint-label pair,
/// keyed on the canonical (unordered) pair. Each partition counts the
/// adjacency entries of the vertices it owns, so for a symmetrized graph a
/// cloud-wide sum counts every edge once per endpoint — a consistent
/// relative measure of how many data edges can bind a query edge.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelPairTable {
    counts: HashMap<(u32, u32), u64>,
    total: u64,
}

impl LabelPairTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one adjacency entry with endpoint labels `a` and `b`.
    pub fn record(&mut self, a: LabelId, b: LabelId) {
        *self.counts.entry(Self::key(a, b)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded adjacency entries with endpoint labels `(a, b)`
    /// in either order.
    pub fn count(&self, a: LabelId, b: LabelId) -> u64 {
        self.counts.get(&Self::key(a, b)).copied().unwrap_or(0)
    }

    /// Total adjacency entries recorded (all pairs).
    pub fn total_entries(&self) -> u64 {
        self.total
    }

    /// Number of distinct label pairs seen.
    pub fn num_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counts.len() * (std::mem::size_of::<(u32, u32)>() + std::mem::size_of::<u64>())
    }

    fn key(a: LabelId, b: LabelId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn label_bits_are_exact_below_width() {
        // With ≤ 64 labels every label owns a distinct bit.
        let bits: std::collections::HashSet<u64> = (0..SIGNATURE_BITS as u32)
            .map(|i| label_bit(l(i)))
            .collect();
        assert_eq!(bits.len(), SIGNATURE_BITS);
        // Beyond the width, labels wrap onto existing bits (collisions only
        // add bits — the over-approximation stays sound).
        assert_eq!(label_bit(l(64)), label_bit(l(0)));
    }

    #[test]
    fn covers_is_bitset_containment() {
        let sig = label_bit(l(1)) | label_bit(l(3));
        assert!(NeighborLabelIndex::covers(sig, label_bit(l(1))));
        assert!(NeighborLabelIndex::covers(sig, sig));
        assert!(!NeighborLabelIndex::covers(sig, label_bit(l(2))));
        // Everything covers the empty requirement; FULL covers everything.
        assert!(NeighborLabelIndex::covers(0, 0));
        assert!(NeighborLabelIndex::covers(FULL_SIGNATURE, u64::MAX));
    }

    #[test]
    fn required_mask_folds_child_labels() {
        let m = required_mask([l(0), l(2), l(0)]);
        assert_eq!(m, label_bit(l(0)) | label_bit(l(2)));
        assert_eq!(required_mask([]), 0);
    }

    #[test]
    fn signature_lookup_by_local_position() {
        let idx = NeighborLabelIndex::from_signatures(vec![0b1, 0b10, FULL_SIGNATURE]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert_eq!(idx.signature(1), Some(0b10));
        assert_eq!(idx.signature(3), None);
        assert_eq!(idx.memory_bytes(), 3 * SIGNATURE_BYTES_PER_VERTEX);
    }

    #[test]
    fn pair_table_is_symmetric_and_counts_totals() {
        let mut t = LabelPairTable::new();
        t.record(l(0), l(1));
        t.record(l(1), l(0));
        t.record(l(2), l(2));
        assert_eq!(t.count(l(0), l(1)), 2);
        assert_eq!(t.count(l(1), l(0)), 2);
        assert_eq!(t.count(l(2), l(2)), 1);
        assert_eq!(t.count(l(0), l(2)), 0);
        assert_eq!(t.total_entries(), 3);
        assert_eq!(t.num_pairs(), 2);
        assert!(t.memory_bytes() > 0);
    }
}
