//! Builder that assembles a [`MemoryCloud`] from vertices and edges.
//!
//! Mirrors the paper's loading phase (Table 2): one pass over the vertex set
//! to partition vertices by hash and build the per-machine string index, and
//! one pass over the edge set to build adjacency and the label-pair catalog.
//! Everything is linear in the size of the graph.

use crate::cloud::{machine_for, MemoryCloud};
use crate::cluster_graph::LabelPairCatalog;
use crate::compact::StorageTier;
use crate::error::TrinityError;
use crate::ids::{LabelId, LabelInterner, VertexId};
use crate::network::CostModel;
use crate::partition::Partition;
use std::collections::HashMap;

/// Incrementally collects a labeled graph and partitions it into a
/// [`MemoryCloud`].
///
/// * Each vertex carries exactly one label (as in the paper's data model).
/// * Adding the same vertex twice overwrites its label.
/// * Edges are undirected for matching purposes; a graph built with
///   [`GraphBuilder::new_directed`] keeps the `directed` flag for reporting
///   but its adjacency is symmetrized, matching how the paper treats the
///   citation and word graphs.
/// * Self loops are ignored.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    interner: LabelInterner,
    labels: HashMap<VertexId, LabelId>,
    edges: Vec<(VertexId, VertexId)>,
    directed: bool,
    /// Storage tier the partitions are built in; `None` means the
    /// process-wide default ([`StorageTier::from_env`]).
    tier: Option<StorageTier>,
}

impl GraphBuilder {
    /// A builder for an undirected graph.
    pub fn new_undirected() -> Self {
        GraphBuilder {
            directed: false,
            ..Default::default()
        }
    }

    /// A builder for a directed input graph (adjacency is still symmetrized;
    /// see the type-level docs).
    pub fn new_directed() -> Self {
        GraphBuilder {
            directed: true,
            ..Default::default()
        }
    }

    /// Overrides the storage tier the partitions are built in (the default
    /// is [`StorageTier::from_env`], i.e. the `STWIG_STORAGE` knob).
    pub fn with_storage_tier(mut self, tier: StorageTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Interns a label string, returning its id. Useful for generators that
    /// want to pre-intern a label alphabet.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        self.interner.intern(name)
    }

    /// Adds (or re-labels) a vertex with a label given by name.
    pub fn add_vertex(&mut self, id: VertexId, label: &str) -> LabelId {
        let l = self.interner.intern(label);
        self.labels.insert(id, l);
        l
    }

    /// Adds (or re-labels) a vertex with an already-interned label id.
    ///
    /// The label id must have been produced by [`GraphBuilder::intern_label`]
    /// on this same builder.
    pub fn add_vertex_with_label_id(&mut self, id: VertexId, label: LabelId) {
        debug_assert!(
            label.index() < self.interner.len(),
            "label id {label} was not interned on this builder"
        );
        self.labels.insert(id, label);
    }

    /// Adds an undirected edge. Unknown endpoints are detected at build time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u != v {
            self.edges.push((u, v));
        }
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge additions so far (before deduplication).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether this builder was created as directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Partitions the graph over `num_machines` logical machines and builds
    /// the memory cloud.
    pub fn build(self, num_machines: usize, cost: CostModel) -> MemoryCloud {
        self.try_build(num_machines, cost)
            .expect("graph construction failed")
    }

    /// Fallible version of [`GraphBuilder::build`].
    pub fn try_build(
        self,
        num_machines: usize,
        cost: CostModel,
    ) -> Result<MemoryCloud, TrinityError> {
        if num_machines == 0 || num_machines > u16::MAX as usize {
            return Err(TrinityError::InvalidMachineCount(num_machines));
        }
        if self.labels.is_empty() {
            return Err(TrinityError::EmptyGraph);
        }
        let GraphBuilder {
            interner,
            labels,
            mut edges,
            directed,
            tier,
        } = self;
        let tier = tier.unwrap_or_else(StorageTier::from_env);
        let num_labels = interner.len();

        // Validate edges and symmetrize.
        for &(u, v) in &edges {
            if !labels.contains_key(&u) {
                return Err(TrinityError::UnknownVertex(u));
            }
            if !labels.contains_key(&v) {
                return Err(TrinityError::UnknownVertex(v));
            }
        }
        // Canonicalize to unordered pairs and dedup to count unique edges.
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let num_edges = edges.len() as u64;

        // Assign vertices to machines and dense local indices.
        let mut per_machine_ids: Vec<Vec<VertexId>> = vec![Vec::new(); num_machines];
        for &v in labels.keys() {
            per_machine_ids[machine_for(v, num_machines).index()].push(v);
        }
        for ids in &mut per_machine_ids {
            ids.sort_unstable();
        }
        // local position of each vertex within its machine
        let mut local_pos: HashMap<VertexId, u32> = HashMap::with_capacity(labels.len());
        for ids in &per_machine_ids {
            for (i, &v) in ids.iter().enumerate() {
                local_pos.insert(v, i as u32);
            }
        }

        // Build per-machine adjacency lists and the label-pair catalog.
        let mut per_machine_adj: Vec<Vec<Vec<VertexId>>> = per_machine_ids
            .iter()
            .map(|ids| vec![Vec::new(); ids.len()])
            .collect();
        let mut catalog = LabelPairCatalog::new(num_machines);
        for &(u, v) in &edges {
            let (mu, mv) = (machine_for(u, num_machines), machine_for(v, num_machines));
            let (lu, lv) = (labels[&u], labels[&v]);
            per_machine_adj[mu.index()][local_pos[&u] as usize].push(v);
            per_machine_adj[mv.index()][local_pos[&v] as usize].push(u);
            catalog.record_edge(mu, lu, mv, lv);
            catalog.record_edge(mv, lv, mu, lu);
        }

        // Label frequencies over the whole cloud.
        let mut label_frequency = vec![0u64; num_labels];
        for &l in labels.values() {
            label_frequency[l.index()] += 1;
        }

        // Assemble partitions. The builder is the one place that knows every
        // endpoint's label (neighbors may live on other machines), so the
        // candidate-pruning indexes — per-vertex neighborhood signatures and
        // the per-partition label-pair table — are built here, in the same
        // pass as the string index.
        let mut partitions = Vec::with_capacity(num_machines);
        for (m, ids) in per_machine_ids.into_iter().enumerate() {
            let machine_labels: Vec<LabelId> = ids.iter().map(|v| labels[v]).collect();
            let adj = std::mem::take(&mut per_machine_adj[m]);
            partitions.push(Partition::with_neighbor_labels_tier(
                ids,
                machine_labels,
                adj,
                num_labels,
                tier,
                |n| labels.get(&n).copied(),
            ));
        }

        let num_vertices = labels.len() as u64;
        Ok(MemoryCloud::from_parts(
            partitions,
            interner,
            cost,
            label_frequency,
            catalog,
            num_vertices,
            num_edges,
            directed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn build_small_graph() {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        b.add_vertex(v(2), "b");
        b.add_vertex(v(3), "c");
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(3));
        let cloud = b.build(2, CostModel::free());
        assert_eq!(cloud.num_vertices(), 3);
        assert_eq!(cloud.num_edges(), 2);
        assert_eq!(cloud.num_machines(), 2);
        assert_eq!(cloud.neighbors_global(v(2)), &[v(1), v(3)]);
        assert!(cloud.has_edge_global(v(1), v(2)));
        assert!(cloud.has_edge_global(v(2), v(1)));
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_ignored() {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        b.add_vertex(v(2), "b");
        b.add_edge(v(1), v(2));
        b.add_edge(v(2), v(1));
        b.add_edge(v(1), v(1));
        let cloud = b.build(1, CostModel::free());
        assert_eq!(cloud.num_edges(), 1);
        assert_eq!(cloud.neighbors_global(v(1)), &[v(2)]);
    }

    #[test]
    fn relabeling_overwrites() {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        b.add_vertex(v(1), "b");
        let cloud = b.build(1, CostModel::free());
        let lb = cloud.labels().get("b").unwrap();
        assert_eq!(cloud.label_of_global(v(1)), Some(lb));
        assert_eq!(cloud.num_vertices(), 1);
    }

    #[test]
    fn unknown_vertex_is_an_error() {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        b.add_edge(v(1), v(2));
        let err = b.try_build(1, CostModel::free()).unwrap_err();
        assert_eq!(err, TrinityError::UnknownVertex(v(2)));
    }

    #[test]
    fn empty_graph_is_an_error() {
        let b = GraphBuilder::new_undirected();
        assert_eq!(
            b.try_build(1, CostModel::free()).unwrap_err(),
            TrinityError::EmptyGraph
        );
    }

    #[test]
    fn invalid_machine_count_is_an_error() {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        assert_eq!(
            b.clone().try_build(0, CostModel::free()).unwrap_err(),
            TrinityError::InvalidMachineCount(0)
        );
        assert_eq!(
            b.try_build(100_000, CostModel::free()).unwrap_err(),
            TrinityError::InvalidMachineCount(100_000)
        );
    }

    #[test]
    fn vertices_are_spread_across_machines() {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..1000u64 {
            b.add_vertex(v(i), if i % 2 == 0 { "even" } else { "odd" });
        }
        let cloud = b.build(8, CostModel::free());
        let mut counts = vec![0usize; 8];
        for m in cloud.machines() {
            counts[m.index()] = cloud.partition(m).num_vertices();
        }
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        // hash partitioning should give every machine a non-trivial share
        for &c in &counts {
            assert!(c > 50, "unbalanced partitioning: {counts:?}");
        }
    }

    #[test]
    fn catalog_is_populated_symmetrically() {
        let mut b = GraphBuilder::new_undirected();
        b.add_vertex(v(1), "a");
        b.add_vertex(v(2), "b");
        b.add_edge(v(1), v(2));
        let cloud = b.build(4, CostModel::free());
        let la = cloud.labels().get("a").unwrap();
        let lb = cloud.labels().get("b").unwrap();
        let (m1, m2) = (cloud.machine_of(v(1)), cloud.machine_of(v(2)));
        assert!(cloud.catalog().has_pair(m1, la, m2, lb));
        assert!(cloud.catalog().has_pair(m2, lb, m1, la));
    }

    #[test]
    fn directed_flag_is_preserved() {
        let mut b = GraphBuilder::new_directed();
        b.add_vertex(v(1), "a");
        b.add_vertex(v(2), "b");
        b.add_edge(v(1), v(2));
        let cloud = b.build(1, CostModel::free());
        assert!(cloud.is_directed());
        // adjacency is still symmetric
        assert_eq!(cloud.neighbors_global(v(2)), &[v(1)]);
    }

    #[test]
    fn label_frequencies_are_global() {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..10u64 {
            b.add_vertex(v(i), "x");
        }
        for i in 10..15u64 {
            b.add_vertex(v(i), "y");
        }
        let cloud = b.build(4, CostModel::free());
        assert_eq!(cloud.label_frequency(cloud.labels().get("x").unwrap()), 10);
        assert_eq!(cloud.label_frequency(cloud.labels().get("y").unwrap()), 5);
    }
}
