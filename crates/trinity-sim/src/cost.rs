//! Latency/bandwidth model converting message counts into simulated time.
//!
//! Split out of [`crate::network`] so the cost model is usable by both the
//! passive traffic-accounting matrix ([`crate::network::Network`]) and the
//! explicit message transport ([`crate::transport`]): the former estimates
//! batches from byte totals, the latter records the *actual* envelopes sent.

use serde::{Deserialize, Serialize};

/// Latency/bandwidth model used to convert message counts into simulated time.
///
/// Defaults approximate the paper's cluster 1 (Gigabit Ethernet): 0.1 ms
/// per-message latency and 1 Gbit/s ≈ 125 MB/s bandwidth, with messages
/// between co-located endpoints free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-message latency in microseconds.
    pub latency_us: f64,
    /// Bandwidth in bytes per microsecond (i.e. MB/s).
    pub bytes_per_us: f64,
    /// Messages smaller than this are merged into batches of this size before
    /// the latency charge is applied (Trinity merges and batches messages).
    pub batch_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency_us: 100.0,
            bytes_per_us: 125.0,
            batch_bytes: 64 * 1024,
        }
    }
}

impl CostModel {
    /// An idealized infinitely-fast network (zero communication cost).
    pub fn free() -> Self {
        CostModel {
            latency_us: 0.0,
            bytes_per_us: f64::INFINITY,
            batch_bytes: 1,
        }
    }

    /// A model approximating the paper's 40 Gbps InfiniBand adapter on
    /// cluster 2.
    pub fn infiniband() -> Self {
        CostModel {
            latency_us: 2.0,
            bytes_per_us: 5000.0,
            batch_bytes: 64 * 1024,
        }
    }

    /// Simulated time in microseconds to ship `bytes` in `messages` messages.
    pub fn time_us(&self, messages: u64, bytes: u64) -> f64 {
        if messages == 0 && bytes == 0 {
            return 0.0;
        }
        // Message merging: latency is charged per batch, not per tiny message.
        let batches = if self.batch_bytes <= 1 {
            messages
        } else {
            let by_bytes = bytes.div_ceil(self.batch_bytes);
            by_bytes.max(1).min(messages.max(1))
        };
        let transfer = if self.bytes_per_us.is_finite() && self.bytes_per_us > 0.0 {
            bytes as f64 / self.bytes_per_us
        } else {
            0.0
        };
        batches as f64 * self.latency_us + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_costs_nothing() {
        let model = CostModel::free();
        assert_eq!(model.time_us(100, 1_000_000), 0.0);
    }

    #[test]
    fn default_model_charges_latency_and_transfer() {
        let model = CostModel::default();
        // one batch of 64 KiB: 100us latency + 65536/125 us transfer
        let t = model.time_us(1, 64 * 1024);
        assert!(t > 100.0);
        assert!(t < 1000.0);
        // zero traffic is free
        assert_eq!(model.time_us(0, 0), 0.0);
    }

    #[test]
    fn batching_reduces_latency_charges() {
        let model = CostModel {
            latency_us: 100.0,
            bytes_per_us: f64::INFINITY,
            batch_bytes: 1000,
        };
        // 100 messages of 10 bytes each merge into one 1000-byte batch.
        let merged = model.time_us(100, 1000);
        let unmerged = CostModel {
            batch_bytes: 1,
            ..model
        }
        .time_us(100, 1000);
        assert!(merged < unmerged);
        assert_eq!(merged, 100.0);
    }
}
