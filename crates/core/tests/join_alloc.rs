//! Allocation audit of the join hot path: with exactly one shared column,
//! `hash_join` must perform **zero per-row heap allocations** — the key is a
//! bare `u64`, the build index is a pre-sized chained index, and the output
//! row buffer is reused. The test counts global-allocator calls around a
//! large join and asserts the total stays far below the row count (only
//! setup costs and the output buffer's geometric growth remain).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stwig::join::hash_join;
use stwig::metrics::JoinCounters;
use stwig::pipeline::pipelined_join;
use stwig::query::QVid;
use stwig::table::ResultTable;
use stwig::MatchConfig;
use trinity_sim::ids::VertexId;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

fn allocated_bytes_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATED_BYTES.load(Ordering::Relaxed) - before, result)
}

/// `rows`-row tables sharing exactly column 1, joining 1:1.
fn single_key_tables(rows: u64) -> (ResultTable, ResultTable) {
    let mut left = ResultTable::new(vec![QVid(0), QVid(1)]);
    let mut right = ResultTable::new(vec![QVid(1), QVid(2)]);
    for i in 0..rows {
        left.push_row(&[VertexId(i), VertexId(1_000_000 + i)]);
        right.push_row(&[VertexId(1_000_000 + i), VertexId(2_000_000 + i)]);
    }
    (left, right)
}

#[test]
fn single_shared_column_join_does_not_allocate_per_row() {
    const ROWS: u64 = 65_536;
    let (left, right) = single_key_tables(ROWS);
    let mut counters = JoinCounters::default();
    let (allocs, joined) = allocations_during(|| hash_join(&left, &right, None, &mut counters));
    assert_eq!(joined.num_rows() as u64, ROWS);
    // Setup (schema vectors, index map + chain array, row buffer) plus ~20
    // geometric growths of the output buffer; anything per-row would add
    // tens of thousands.
    assert!(
        allocs < 100,
        "expected O(1) + O(log rows) allocations for {ROWS} rows, got {allocs}"
    );
}

#[test]
fn pipelined_join_memory_is_bounded_by_the_block() {
    // §4.2: pipeline memory must stay bounded by the driver block. The
    // regression this pins down: the pipeline used to clone every rest table
    // and rebuild its hash index on every round, which over `rounds` rounds
    // allocates `rounds × |rest|` bytes — here 64 rounds × ~1.5 MB of rest
    // table (plus its rebuilt index) ≈ 200+ MB. With the indexes prepared
    // once outside the block loop, total allocation is one index build plus
    // per-round blocks and outputs: a few MB.
    const ROWS: u64 = 65_536;
    let (left, right) = single_key_tables(ROWS);
    let tables = vec![left, right];
    let cfg = MatchConfig {
        block_rows: 1024,
        // Keep the measured figure about the pipeline itself.
        optimize_join_order: false,
        ..MatchConfig::default()
    };
    let mut counters = JoinCounters::default();
    let (bytes, joined) = allocated_bytes_during(|| pipelined_join(&tables, &cfg, &mut counters));
    assert_eq!(joined.num_rows() as u64, ROWS);
    assert_eq!(counters.pipeline_rounds, 64);
    const MB: u64 = 1 << 20;
    assert!(
        bytes < 32 * MB,
        "pipelined join allocated {bytes} bytes over {} rounds — rest tables \
         are being copied or re-indexed per round",
        counters.pipeline_rounds
    );
}

#[test]
fn single_table_pipeline_with_limit_copies_at_most_limit_rows() {
    // Regression: the single-table path used to clone the entire driver and
    // then truncate, so a 1M-row table under `FirstK(1)` allocated the full
    // 16 MB buffer for one surviving row. It must now copy at most `limit`
    // rows.
    const ROWS: u64 = 1_000_000;
    let mut table = ResultTable::new(vec![QVid(0), QVid(1)]);
    for i in 0..ROWS {
        table.push_row(&[VertexId(i), VertexId(ROWS + i)]);
    }
    let tables = vec![table];
    let cfg = MatchConfig::default().with_result_mode(stwig::config::ResultMode::FirstK(1));
    let mut counters = JoinCounters::default();
    let (bytes, out) = allocated_bytes_during(|| pipelined_join(&tables, &cfg, &mut counters));
    assert_eq!(out.num_rows(), 1);
    assert!(
        bytes < 64 << 10,
        "single-table FirstK(1) allocated {bytes} bytes — the driver is being \
         cloned wholesale before truncation"
    );
}

#[test]
fn wide_key_fallback_demonstrates_the_counter_works() {
    // Five shared columns exceed the inline-key width and fall back to
    // heap-allocated `Vec` keys — at least one allocation per build and per
    // probe row. This is the contrast proving the counter actually measures
    // the join (and why the fallback is reserved for >4 shared columns).
    const ROWS: u64 = 4_096;
    let cols: Vec<QVid> = (0..5).map(QVid).collect();
    let mut left = ResultTable::new(cols.clone());
    let mut right = ResultTable::new(cols);
    for i in 0..ROWS {
        let row: Vec<VertexId> = (0..5).map(|c| VertexId(i * 8 + c)).collect();
        left.push_row(&row);
        right.push_row(&row);
    }
    let mut counters = JoinCounters::default();
    let (allocs, joined) = allocations_during(|| hash_join(&left, &right, None, &mut counters));
    assert_eq!(joined.num_rows() as u64, ROWS);
    assert!(
        allocs > ROWS,
        "Vec-keyed fallback must allocate per row ({ROWS} rows, {allocs} allocations)"
    );
}
