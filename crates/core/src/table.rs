//! Intermediate result tables.
//!
//! The results of matching one STwig form a table whose columns are query
//! vertices and whose rows are data vertices. The join step (§4.2 step 3)
//! combines these tables into full embeddings.

use crate::hash::VertexSet;
use crate::query::QVid;
use serde::{Deserialize, Serialize};
use trinity_sim::ids::VertexId;

/// A table of partial matches: `columns[i]` names the query vertex whose data
/// vertex occupies position `i` of every row. Rows are stored flat.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultTable {
    columns: Vec<QVid>,
    /// Flattened rows, `columns.len()` entries per row.
    data: Vec<VertexId>,
}

impl ResultTable {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<QVid>) -> Self {
        debug_assert!(
            !columns.is_empty(),
            "a result table needs at least one column"
        );
        ResultTable {
            columns,
            data: Vec::new(),
        }
    }

    /// Creates an empty table with the given columns and a row-capacity hint.
    pub fn with_capacity(columns: Vec<QVid>, rows: usize) -> Self {
        let width = columns.len();
        ResultTable {
            columns,
            data: Vec::with_capacity(rows * width),
        }
    }

    /// The columns (query vertices) of this table.
    #[inline]
    pub fn columns(&self) -> &[QVid] {
        &self.columns
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        if self.columns.is_empty() {
            0
        } else {
            self.data.len() / self.columns.len()
        }
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Index of a query vertex among the columns, if present.
    pub fn column_index(&self, q: QVid) -> Option<usize> {
        self.columns.iter().position(|&c| c == q)
    }

    /// Appends a row; panics (debug) if the width does not match.
    #[inline]
    pub fn push_row(&mut self, row: &[VertexId]) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.data.extend_from_slice(row);
    }

    /// Returns row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[VertexId] {
        let w = self.width();
        &self.data[i * w..(i + 1) * w]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[VertexId]> {
        self.data.chunks_exact(self.width().max(1))
    }

    /// The value in row `i` for query vertex `q` (panics if `q` is not a column).
    pub fn value(&self, i: usize, q: QVid) -> VertexId {
        let c = self
            .column_index(q)
            .expect("query vertex is not a column of this table");
        self.row(i)[c]
    }

    /// Distinct values appearing in the column for query vertex `q`.
    pub fn distinct_values(&self, q: QVid) -> VertexSet {
        match self.column_index(q) {
            None => VertexSet::default(),
            Some(c) => self.rows().map(|r| r[c]).collect(),
        }
    }

    /// Removes duplicate rows, leaving the survivors in sorted row order.
    ///
    /// Sorts row *indices* over the flat buffer instead of materializing one
    /// `Vec` per row — this sits on the distributed join path for every
    /// load-set union, where per-row allocation would dominate.
    pub fn dedup_rows(&mut self) {
        let w = self.width();
        if w == 0 || self.data.is_empty() {
            return;
        }
        let n = self.num_rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| self.row(a as usize).cmp(self.row(b as usize)));
        let mut out: Vec<VertexId> = Vec::with_capacity(self.data.len());
        for (pos, &i) in order.iter().enumerate() {
            let row = self.row(i as usize);
            if pos > 0 && self.row(order[pos - 1] as usize) == row {
                continue;
            }
            out.extend_from_slice(row);
        }
        self.data = out;
    }

    /// Keeps only rows for which `keep` returns true.
    pub fn retain_rows<F: FnMut(&[VertexId]) -> bool>(&mut self, mut keep: F) {
        let w = self.width();
        let mut out = Vec::with_capacity(self.data.len());
        for r in self.data.chunks_exact(w) {
            if keep(r) {
                out.extend_from_slice(r);
            }
        }
        self.data = out;
    }

    /// Truncates the table to at most `rows` rows.
    pub fn truncate(&mut self, rows: usize) {
        let w = self.width();
        self.data.truncate(rows * w);
    }

    /// Appends all rows of `other`, which must have identical columns.
    pub fn append(&mut self, other: &ResultTable) {
        assert_eq!(self.columns, other.columns, "column mismatch in append");
        self.data.extend_from_slice(&other.data);
    }

    /// Appends all rows of `other`, re-projecting each row into this table's
    /// column order when the orders differ. Panics if `other` is missing one
    /// of this table's columns.
    ///
    /// This is the append used when unioning results whose producers chose
    /// different column orders (per-machine join outputs, pipeline rounds).
    pub fn append_projected(&mut self, other: &ResultTable) {
        if self.columns == other.columns {
            self.append(other);
            return;
        }
        let projection: Vec<usize> = self
            .columns
            .iter()
            .map(|&c| {
                other
                    .column_index(c)
                    .expect("append_projected requires identical column sets")
            })
            .collect();
        let mut row_buf: Vec<VertexId> = Vec::with_capacity(self.width());
        for row in other.rows() {
            row_buf.clear();
            row_buf.extend(projection.iter().map(|&p| row[p]));
            self.data.extend_from_slice(&row_buf);
        }
    }

    /// Sorts the rows lexicographically (ascending), keeping duplicates.
    ///
    /// Sorting operates on row indices over the flat buffer, like
    /// [`ResultTable::dedup_rows`]. Used by the STwig-result cache to restore
    /// exploration order after a column permutation.
    pub fn sort_rows(&mut self) {
        let w = self.width();
        if w == 0 || self.data.is_empty() {
            return;
        }
        let n = self.num_rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| self.row(a as usize).cmp(self.row(b as usize)));
        if order.windows(2).all(|pair| pair[0] < pair[1]) {
            return; // already sorted
        }
        let mut out: Vec<VertexId> = Vec::with_capacity(self.data.len());
        for &i in &order {
            out.extend_from_slice(self.row(i as usize));
        }
        self.data = out;
    }

    /// Whether the rows are in ascending lexicographic order (duplicates
    /// allowed). Exploration emits rows in this order (sorted postings ×
    /// sorted adjacency); the STwig-result cache relies on it.
    pub fn rows_are_sorted(&self) -> bool {
        let mut prev: Option<&[VertexId]> = None;
        for row in self.rows() {
            if let Some(p) = prev {
                if p > row {
                    return false;
                }
            }
            prev = Some(row);
        }
        true
    }

    /// Keeps only rows for which `keep` returns true, with access to the row
    /// index (used by the cache's binding filter to stop at a row budget).
    pub fn retain_rows_with_limit<F: FnMut(&[VertexId]) -> bool>(
        &mut self,
        limit: Option<usize>,
        mut keep: F,
    ) {
        let w = self.width();
        let mut out = Vec::with_capacity(
            self.data
                .len()
                .min(limit.unwrap_or(usize::MAX).saturating_mul(w)),
        );
        let mut kept = 0usize;
        for r in self.data.chunks_exact(w) {
            if let Some(l) = limit {
                if kept >= l {
                    break;
                }
            }
            if keep(r) {
                out.extend_from_slice(r);
                kept += 1;
            }
        }
        self.data = out;
    }

    /// Returns a copy of this table carrying different column names (same
    /// width) — one bulk buffer clone. Used by the STwig-result cache to
    /// rebrand canonical placeholder columns as the query's vertices.
    pub fn cloned_with_columns(&self, columns: Vec<QVid>) -> ResultTable {
        debug_assert_eq!(columns.len(), self.width());
        ResultTable {
            columns,
            data: self.data.clone(),
        }
    }

    /// Splits off the first `rows` rows into a new table (used by the
    /// block-based pipeline join).
    pub fn take_block(&self, start_row: usize, rows: usize) -> ResultTable {
        let w = self.width();
        let start = (start_row * w).min(self.data.len());
        let end = ((start_row + rows) * w).min(self.data.len());
        ResultTable {
            columns: self.columns.clone(),
            data: self.data[start..end].to_vec(),
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<VertexId>()
            + self.columns.len() * std::mem::size_of::<QVid>()
    }

    /// Whether a row maps two different query vertices to the same data
    /// vertex (which a valid isomorphism forbids).
    pub fn row_has_duplicates(row: &[VertexId]) -> bool {
        // Rows are tiny (< 64 entries); quadratic scan beats hashing.
        for i in 1..row.len() {
            for j in 0..i {
                if row[i] == row[j] {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn sample() -> ResultTable {
        let mut t = ResultTable::new(vec![q(0), q(1)]);
        t.push_row(&[v(1), v(2)]);
        t.push_row(&[v(3), v(4)]);
        t.push_row(&[v(1), v(2)]);
        t
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.width(), 2);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(1), &[v(3), v(4)]);
        assert_eq!(t.value(1, q(1)), v(4));
        assert_eq!(t.column_index(q(1)), Some(1));
        assert_eq!(t.column_index(q(9)), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn distinct_values_per_column() {
        let t = sample();
        let d0 = t.distinct_values(q(0));
        assert_eq!(d0.len(), 2);
        assert!(d0.contains(&v(1)));
        assert!(t.distinct_values(q(7)).is_empty());
    }

    #[test]
    fn dedup_removes_duplicate_rows() {
        let mut t = sample();
        t.dedup_rows();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn retain_and_truncate() {
        let mut t = sample();
        t.retain_rows(|r| r[0] == v(1));
        assert_eq!(t.num_rows(), 2);
        t.truncate(1);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn append_and_blocks() {
        let mut t = sample();
        let t2 = sample();
        t.append(&t2);
        assert_eq!(t.num_rows(), 6);
        let block = t.take_block(2, 2);
        assert_eq!(block.num_rows(), 2);
        assert_eq!(block.row(0), &[v(1), v(2)]);
        // out-of-range block is empty
        assert_eq!(t.take_block(100, 5).num_rows(), 0);
    }

    #[test]
    fn row_duplicate_detection() {
        assert!(ResultTable::row_has_duplicates(&[v(1), v(2), v(1)]));
        assert!(!ResultTable::row_has_duplicates(&[v(1), v(2), v(3)]));
        assert!(!ResultTable::row_has_duplicates(&[v(1)]));
    }

    #[test]
    fn memory_grows_with_rows() {
        let empty = ResultTable::new(vec![q(0)]);
        let full = sample();
        assert!(full.memory_bytes() > empty.memory_bytes());
    }

    #[test]
    #[should_panic]
    fn append_with_mismatched_columns_panics() {
        let mut t = ResultTable::new(vec![q(0)]);
        let t2 = ResultTable::new(vec![q(1)]);
        t.append(&t2);
    }

    #[test]
    fn append_projected_same_columns_is_plain_append() {
        let mut t = sample();
        t.append_projected(&sample());
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.row(3), &[v(1), v(2)]);
    }

    #[test]
    fn append_projected_reorders_columns() {
        // Re-projection branch: same column set, different order.
        let mut t = ResultTable::new(vec![q(0), q(1), q(2)]);
        t.push_row(&[v(1), v(2), v(3)]);
        let mut other = ResultTable::new(vec![q(2), q(0), q(1)]);
        other.push_row(&[v(30), v(10), v(20)]);
        other.push_row(&[v(31), v(11), v(21)]);
        t.append_projected(&other);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(1), &[v(10), v(20), v(30)]);
        assert_eq!(t.row(2), &[v(11), v(21), v(31)]);
    }

    #[test]
    #[should_panic]
    fn append_projected_missing_column_panics() {
        let mut t = ResultTable::new(vec![q(0), q(1)]);
        let mut other = ResultTable::new(vec![q(0), q(9)]);
        other.push_row(&[v(1), v(2)]);
        t.append_projected(&other);
    }

    #[test]
    fn sort_rows_orders_lexicographically_and_keeps_duplicates() {
        let mut t = ResultTable::new(vec![q(0), q(1)]);
        t.push_row(&[v(3), v(4)]);
        t.push_row(&[v(1), v(9)]);
        t.push_row(&[v(1), v(2)]);
        t.push_row(&[v(1), v(2)]);
        assert!(!t.rows_are_sorted());
        t.sort_rows();
        assert!(t.rows_are_sorted());
        assert_eq!(t.num_rows(), 4, "sort_rows must not dedup");
        assert_eq!(t.row(0), &[v(1), v(2)]);
        assert_eq!(t.row(1), &[v(1), v(2)]);
        assert_eq!(t.row(2), &[v(1), v(9)]);
        assert_eq!(t.row(3), &[v(3), v(4)]);
    }

    #[test]
    fn retain_rows_with_limit_stops_at_budget() {
        let mut t = ResultTable::new(vec![q(0)]);
        for i in 0..10u64 {
            t.push_row(&[v(i)]);
        }
        t.retain_rows_with_limit(Some(3), |r| r[0].0 % 2 == 0);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(2), &[v(4)]);
        let mut u = ResultTable::new(vec![q(0)]);
        for i in 0..4u64 {
            u.push_row(&[v(i)]);
        }
        u.retain_rows_with_limit(None, |r| r[0].0 > 1);
        assert_eq!(u.num_rows(), 2);
    }
}
