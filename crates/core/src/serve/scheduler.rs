//! Per-tenant fair scheduling: deficit round-robin across tenants,
//! earliest-deadline-first with aged priorities within a tenant.
//!
//! ## The model
//!
//! * **Across tenants — deficit round-robin (DRR).** Tenants with queued
//!   work sit in a ring. Each visit grants the tenant one quantum of
//!   *cost credit* (costs come from [`crate::serve::CostEstimator`], so a
//!   hub-heavy query debits more than a point lookup — the scheduler's
//!   notion of fairness is estimated work, not request count). The tenant
//!   dispatches queries while its deficit covers the head's cost, then
//!   rotates to the back; unused deficit carries over, so a tenant whose
//!   head is expensive saves up across rounds instead of being locked out.
//!   A tenant with 10× the offered load gets the same service share as its
//!   neighbor — the excess just waits in *its own* queue (or is refused by
//!   admission), never in front of another tenant's work.
//! * **Within a tenant — EDF, then aged priority.** The tenant's queue is a
//!   heap ordered by (deadline, aged rank, submission): deadline-carrying
//!   queries run earliest-deadline-first; among equal deadlines (including
//!   the no-deadline bulk) a query's rank is its submission index minus a
//!   head start of [`Priority::head_start`] × [`SchedulerConfig::aging_step`]
//!   submissions. Priority is thus a *bounded* head start — a waiting query
//!   ages past any fixed priority level, so low-priority work cannot starve.
//!
//! The scheduler is a passive data structure behind the engine's serve
//! lock; it never blocks and never touches the graph.

use super::tenant::{TenantId, TenantStats};
use super::{HandleShared, SubmitDisposition};
use crate::config::ResultMode;
use crate::query::QueryGraph;
use crate::stream::QueryOptions;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the per-tenant fair scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Cost credit granted per DRR visit. `None` adapts to the EWMA of
    /// enqueued costs (≈ one average query per tenant per round), which is
    /// the right default when workloads are heterogeneous.
    pub quantum: Option<f64>,
    /// Submissions of head start per [`crate::serve::Priority`] level
    /// (floored at 1). Smaller values age priorities away faster.
    pub aging_step: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            quantum: None,
            aging_step: 64,
        }
    }
}

impl SchedulerConfig {
    /// Sets a fixed DRR quantum (`None` = adaptive).
    pub fn with_quantum(mut self, quantum: Option<f64>) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets the priority aging step (floored at 1).
    pub fn with_aging_step(mut self, step: u64) -> Self {
        self.aging_step = step.max(1);
        self
    }
}

/// How a finished query is delivered to its handle.
#[derive(Debug)]
pub(crate) enum Delivery {
    /// Materialize a [`crate::table::ResultTable`] into the response (the
    /// legacy batch shape; uses the non-streaming executor when the request
    /// has neither deadline, cancel token, nor first-k mode, so results are
    /// bit-identical to the historical entry points).
    Collect,
    /// Stream rows into the handle's channel as they are produced; the
    /// response carries no table.
    Channel(std::sync::mpsc::Sender<Vec<trinity_sim::ids::VertexId>>),
}

/// One admitted query waiting for dispatch.
#[derive(Debug)]
pub(crate) struct QueueEntry {
    /// The query to execute.
    pub query: QueryGraph,
    /// Serving options as submitted (deadline still relative).
    pub options: QueryOptions,
    /// Per-query result mode override (`None` = engine default).
    pub mode: Option<ResultMode>,
    /// Absolute deadline, pinned at submission so queue wait counts
    /// against it.
    pub deadline: Option<Instant>,
    /// When the query was submitted.
    pub submitted: Instant,
    /// Estimated work units (DRR cost and shed predictor input).
    pub cost: f64,
    /// Whether dispatch may shed this query (false for the pre-admitted
    /// legacy entry points, which keep their historical
    /// run-then-interrupt-cooperatively semantics).
    pub sheddable: bool,
    /// How results reach the caller.
    pub delivery: Delivery,
    /// The waiter's side of the handle.
    pub shared: Arc<HandleShared>,
    /// Global submission index (total order tie-break).
    pub seq: u64,
    /// `seq` minus the priority head start: the aging key.
    pub aged_rank: i64,
    /// The graph snapshot pinned at admission, when the engine serves a
    /// dynamic cloud: the query executes against exactly this epoch, no
    /// matter how many updates apply (or seals run) while it waits.
    pub snapshot: Option<trinity_sim::epoch::SnapshotRef>,
    /// When `Some`, this entry is a graph-update application rather than a
    /// query: dispatch applies the batch through the engine's
    /// [`trinity_sim::epoch::GraphEpochs`] and the `query` field is an
    /// unused placeholder.
    pub update: Option<trinity_sim::epoch::UpdateBatch>,
}

/// Heap wrapper ordering entries min-first: deadline-carrying entries first
/// (earliest deadline wins), then the no-deadline bulk by (aged rank, seq).
/// `BinaryHeap` is a max-heap, so `Ord` is reversed.
#[derive(Debug)]
struct Ordered(QueueEntry);

impl Ordered {
    /// Dispatch order; `Less` dispatches first.
    fn dispatch_cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self.0.deadline, other.0.deadline) {
            (Some(a), Some(b)) => a
                .cmp(&b)
                .then(self.0.aged_rank.cmp(&other.0.aged_rank))
                .then(self.0.seq.cmp(&other.0.seq)),
            (Some(_), None) => Less,
            (None, Some(_)) => Greater,
            (None, None) => self
                .0
                .aged_rank
                .cmp(&other.0.aged_rank)
                .then(self.0.seq.cmp(&other.0.seq)),
        }
    }
}

impl PartialEq for Ordered {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for Ordered {}
impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap's top is the smallest dispatch key.
        other.dispatch_cmp(self)
    }
}

/// One tenant's queue plus its DRR and accounting state. Stats persist
/// after the queue drains so the metrics snapshot keeps historical tenants.
#[derive(Debug, Default)]
struct TenantQueue {
    heap: BinaryHeap<Ordered>,
    /// Carried-over DRR cost credit.
    deficit: f64,
    /// Sum of queued entry costs (admission's wait predictor input).
    queued_cost: f64,
    /// Whether the tenant currently sits in the active ring.
    in_ring: bool,
    stats: TenantStats,
}

/// The engine's queue state: per-tenant queues, the DRR ring, and the
/// counters behind [`crate::metrics::SchedulerStats`].
#[derive(Debug, Default)]
pub(crate) struct Scheduler {
    config: SchedulerConfig,
    tenants: HashMap<TenantId, TenantQueue>,
    ring: VecDeque<TenantId>,
    depth: usize,
    peak_depth: usize,
    seq: u64,
    /// EWMA of enqueued costs — the adaptive quantum.
    cost_ewma: f64,
    costs_seen: u64,
}

impl Scheduler {
    pub(crate) fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            ..Default::default()
        }
    }

    /// Queries currently queued across all tenants.
    pub(crate) fn depth(&self) -> usize {
        self.depth
    }

    /// High-water mark of [`Scheduler::depth`].
    pub(crate) fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Sum of estimated costs currently queued (all tenants).
    pub(crate) fn queued_cost(&self) -> f64 {
        self.tenants.values().map(|t| t.queued_cost).sum()
    }

    /// Mean cost of recently enqueued queries (the adaptive quantum basis);
    /// 1.0 before anything was enqueued.
    pub(crate) fn mean_cost(&self) -> f64 {
        if self.costs_seen == 0 {
            1.0
        } else {
            self.cost_ewma
        }
    }

    /// The next global submission index, and the aged rank a priority head
    /// start turns it into.
    pub(crate) fn next_seq(&mut self, head_start: i64) -> (u64, i64) {
        let seq = self.seq;
        self.seq += 1;
        let step = self.config.aging_step.max(1) as i64;
        (seq, seq as i64 - head_start * step)
    }

    /// Mutable access to a tenant's stats (creating the tenant on first
    /// sight) — used by the engine to account submissions, rejections and
    /// completions.
    pub(crate) fn tenant_stats_mut(&mut self, tenant: &TenantId) -> &mut TenantStats {
        let tq = self.tenant_entry(tenant);
        &mut tq.stats
    }

    fn tenant_entry(&mut self, tenant: &TenantId) -> &mut TenantQueue {
        self.tenants.entry(tenant.clone()).or_insert_with(|| {
            let mut tq = TenantQueue::default();
            tq.stats.tenant = tenant.name().to_string();
            tq
        })
    }

    /// Admits `entry` into its tenant's queue.
    pub(crate) fn enqueue(&mut self, tenant: &TenantId, entry: QueueEntry) {
        if self.costs_seen == 0 {
            self.cost_ewma = entry.cost;
        } else {
            self.cost_ewma += 0.1 * (entry.cost - self.cost_ewma);
        }
        self.costs_seen += 1;
        let tq = self.tenant_entry(tenant);
        tq.queued_cost += entry.cost;
        tq.stats.queued += 1;
        tq.heap.push(Ordered(entry));
        if !tq.in_ring {
            tq.in_ring = true;
            self.ring.push_back(tenant.clone());
        }
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
    }

    /// Dispatches the next query under DRR + EDF + aging. `None` iff the
    /// queue is empty — the scheduler is work-conserving by construction.
    pub(crate) fn pop(&mut self) -> Option<QueueEntry> {
        if self.depth == 0 {
            return None;
        }
        let quantum = self
            .config
            .quantum
            .unwrap_or_else(|| self.mean_cost())
            .max(f64::MIN_POSITIVE);
        let mut granted_this_rotation = 0usize;
        let mut visited_since_service = 0usize;
        loop {
            let tid = self.ring.front()?.clone();
            let tq = self.tenants.get_mut(&tid).expect("ring tenant exists");
            let Some(head) = tq.heap.peek() else {
                // Tenant drained since its last visit: leave the ring and
                // reset its credit (standard DRR empty-queue rule).
                tq.in_ring = false;
                tq.deficit = 0.0;
                self.ring.pop_front();
                continue;
            };
            let head_cost = head.0.cost;
            if tq.deficit >= head_cost {
                let entry = tq.heap.pop().expect("peeked entry pops").0;
                tq.deficit -= entry.cost;
                tq.queued_cost = (tq.queued_cost - entry.cost).max(0.0);
                tq.stats.queued = tq.stats.queued.saturating_sub(1);
                match tq.heap.peek() {
                    None => {
                        // Drained: leave the ring, reset credit (standard
                        // DRR empty-queue rule).
                        tq.in_ring = false;
                        tq.deficit = 0.0;
                        self.ring.pop_front();
                    }
                    Some(next) if tq.deficit < next.0.cost => {
                        // Visit exhausted: rotate to the back so the next
                        // tenant gets its turn.
                        self.ring.rotate_left(1);
                    }
                    Some(_) => {} // credit remains; keep dispatching
                }
                self.depth -= 1;
                return Some(entry);
            }
            // Head unaffordable: grant this visit's quantum exactly once,
            // then rotate. If a full rotation grants everyone a quantum and
            // still dispatches nothing, grant the whole ring however many
            // quanta the cheapest head needs — equal credit to every tenant
            // preserves DRR proportionality while making progress O(ring)
            // instead of O(max cost / quantum) rotations.
            tq.deficit += quantum;
            granted_this_rotation += 1;
            visited_since_service += 1;
            if tq.deficit >= head_cost {
                continue; // affordable now; dispatch on the revisit
            }
            let ring_len = self.ring.len();
            self.ring.rotate_left(1);
            if granted_this_rotation >= ring_len && visited_since_service >= 2 * ring_len {
                let needed_quanta = self
                    .ring
                    .iter()
                    .filter_map(|tid| {
                        let tq = &self.tenants[tid];
                        let head = tq.heap.peek()?;
                        Some(((head.0.cost - tq.deficit) / quantum).ceil().max(1.0))
                    })
                    .fold(f64::INFINITY, f64::min);
                if needed_quanta.is_finite() {
                    for tid in self.ring.iter() {
                        if let Some(tq) = self.tenants.get_mut(tid) {
                            tq.deficit += needed_quanta * quantum;
                        }
                    }
                }
                granted_this_rotation = 0;
            }
        }
    }

    /// Snapshot of every tenant's stats, sorted by tenant name.
    pub(crate) fn tenant_snapshot(&self) -> Vec<TenantStats> {
        let mut out: Vec<TenantStats> = self.tenants.values().map(|t| t.stats.clone()).collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Records the admission disposition of a submission on its tenant.
    pub(crate) fn account_submit(&mut self, tenant: &TenantId, disposition: SubmitDisposition) {
        let stats = self.tenant_stats_mut(tenant);
        stats.submitted += 1;
        match disposition {
            SubmitDisposition::Accepted => stats.accepted += 1,
            SubmitDisposition::Rejected => stats.rejected += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tenant::Priority;
    use super::*;
    use std::time::Duration;

    fn chain_query() -> QueryGraph {
        // Labels don't matter for scheduler tests; build the tiniest query
        // possible without touching a cloud.
        let mut qb = QueryGraph::builder();
        let a = qb.vertex(trinity_sim::ids::LabelId(0));
        let b = qb.vertex(trinity_sim::ids::LabelId(1));
        qb.edge(a, b);
        qb.build().unwrap()
    }

    fn entry(
        sched: &mut Scheduler,
        tenant: &TenantId,
        cost: f64,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> QueueEntry {
        let now = Instant::now();
        let (seq, aged_rank) = sched.next_seq(priority.head_start());
        QueueEntry {
            query: chain_query(),
            options: QueryOptions::none(),
            mode: None,
            deadline: deadline.map(|d| now + d),
            submitted: now,
            cost,
            sheddable: true,
            delivery: Delivery::Collect,
            shared: Arc::new(HandleShared::new(tenant.clone(), Default::default())),
            seq,
            aged_rank,
            snapshot: None,
            update: None,
        }
    }

    fn submit(
        sched: &mut Scheduler,
        tenant: &TenantId,
        cost: f64,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> u64 {
        let e = entry(sched, tenant, cost, priority, deadline);
        let seq = e.seq;
        sched.enqueue(tenant, e);
        seq
    }

    #[test]
    fn drr_alternates_equal_cost_tenants_despite_skew() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let heavy = TenantId::new("heavy");
        let light = TenantId::new("light");
        for _ in 0..20 {
            submit(&mut sched, &heavy, 10.0, Priority::Normal, None);
        }
        let light_seqs: Vec<u64> = (0..2)
            .map(|_| submit(&mut sched, &light, 10.0, Priority::Normal, None))
            .collect();
        let order: Vec<u64> = std::iter::from_fn(|| sched.pop().map(|e| e.seq)).collect();
        assert_eq!(order.len(), 22, "work conserving: every entry dispatches");
        for (i, &seq) in light_seqs.iter().enumerate() {
            let pos = order.iter().position(|&s| s == seq).unwrap();
            assert!(
                pos <= 2 * (i + 1) + 2,
                "light tenant's query {i} dispatched at {pos} despite 20 queued heavies"
            );
        }
    }

    #[test]
    fn edf_orders_within_a_tenant_and_deadlines_preempt_bulk() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let t = TenantId::new("t");
        let bulk = submit(&mut sched, &t, 1.0, Priority::Normal, None);
        let late = submit(
            &mut sched,
            &t,
            1.0,
            Priority::Normal,
            Some(Duration::from_secs(60)),
        );
        let soon = submit(
            &mut sched,
            &t,
            1.0,
            Priority::Normal,
            Some(Duration::from_secs(1)),
        );
        let order: Vec<u64> = std::iter::from_fn(|| sched.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![soon, late, bulk]);
    }

    #[test]
    fn priority_is_a_bounded_head_start() {
        let config = SchedulerConfig::default().with_aging_step(4);
        let mut sched = Scheduler::new(config);
        let t = TenantId::new("t");
        let old_low = submit(&mut sched, &t, 1.0, Priority::Low, None);
        // A high-priority newcomer within the aging window jumps ahead…
        let fresh_high = submit(&mut sched, &t, 1.0, Priority::High, None);
        let first = sched.pop().unwrap().seq;
        assert_eq!(first, fresh_high);
        // …but after `aging_step × levels` more arrivals, the old query's
        // rank is older than any new high-priority arrival's.
        for _ in 0..8 {
            submit(&mut sched, &t, 1.0, Priority::Normal, None);
        }
        let late_high = submit(&mut sched, &t, 1.0, Priority::High, None);
        let order: Vec<u64> = std::iter::from_fn(|| sched.pop().map(|e| e.seq)).collect();
        let low_pos = order.iter().position(|&s| s == old_low).unwrap();
        let high_pos = order.iter().position(|&s| s == late_high).unwrap();
        assert!(
            low_pos < high_pos,
            "aged low-priority query must dispatch before a fresh high-priority one"
        );
    }

    #[test]
    fn expensive_heads_save_deficit_across_rounds() {
        let mut sched = Scheduler::new(SchedulerConfig::default().with_quantum(Some(1.0)));
        let a = TenantId::new("a");
        let b = TenantId::new("b");
        let big = submit(&mut sched, &a, 100.0, Priority::Normal, None);
        let cheap: Vec<u64> = (0..3)
            .map(|_| submit(&mut sched, &b, 1.0, Priority::Normal, None))
            .collect();
        let order: Vec<u64> = std::iter::from_fn(|| sched.pop().map(|e| e.seq)).collect();
        assert_eq!(order.len(), 4, "the expensive query must still dispatch");
        assert!(order.contains(&big));
        for c in cheap {
            assert!(order.contains(&c));
        }
    }

    #[test]
    fn depth_and_peak_track_the_queue() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let t = TenantId::new("t");
        assert_eq!(sched.depth(), 0);
        assert!(sched.pop().is_none());
        for _ in 0..5 {
            submit(&mut sched, &t, 2.0, Priority::Normal, None);
        }
        assert_eq!(sched.depth(), 5);
        assert!((sched.queued_cost() - 10.0).abs() < 1e-9);
        sched.pop().unwrap();
        assert_eq!(sched.depth(), 4);
        assert_eq!(sched.peak_depth(), 5);
        let stats = sched.tenant_snapshot();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].queued, 4);
    }
}
