//! Tenants and priorities of the serving layer.
//!
//! The engine serves an open stream of queries from many independent
//! clients. A [`TenantId`] names the accounting and scheduling domain a
//! query belongs to (a user, a product surface, an internal batch job); the
//! deficit-round-robin scheduler in [`crate::serve::scheduler`] guarantees
//! each active tenant a fair share of service regardless of how many
//! requests the others have queued. A [`Priority`] orders queries *within*
//! one tenant — it never lets a tenant take service away from another.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifies the tenant a query is submitted on behalf of.
///
/// Cheap to clone (shared string); compared and hashed by name. Queries
/// submitted without an explicit tenant land on [`TenantId::default`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Creates a tenant id from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        TenantId(Arc::from(name.as_ref()))
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    /// The anonymous tenant every un-attributed query is charged to.
    fn default() -> Self {
        TenantId::new("default")
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId::new(name)
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        TenantId::new(name)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Scheduling priority of a query *within its tenant*.
///
/// Priority is implemented as an **aged head start**, not an absolute rank:
/// a query of priority `p` is ordered as if it had arrived
/// `p × aging_step` submissions earlier (see
/// [`crate::serve::SchedulerConfig::aging_step`]). A stream of high-priority
/// arrivals therefore cannot starve an old low-priority query — once the
/// low-priority query has waited `aging_step` arrivals per priority level,
/// its effective rank is older than any newcomer's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// Background work: scheduled as if it arrived one aging step late.
    Low,
    /// The default interactive priority.
    #[default]
    Normal,
    /// Latency-sensitive work: one aging step of head start.
    High,
    /// Reserved for operator traffic: three aging steps of head start.
    Critical,
}

impl Priority {
    /// The priority's head start, in aging steps. Negative = pushed back.
    pub(crate) fn head_start(self) -> i64 {
        match self {
            Priority::Low => -1,
            Priority::Normal => 0,
            Priority::High => 1,
            Priority::Critical => 3,
        }
    }
}

/// Per-tenant serving counters, exported through
/// [`crate::metrics::MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant's name.
    pub tenant: String,
    /// Requests submitted (accepted + rejected).
    pub submitted: u64,
    /// Requests admitted into the queue (or executed inline by a legacy
    /// entry point, which is pre-admitted by definition).
    pub accepted: u64,
    /// Requests rejected at admission (queue full or estimated too late).
    pub rejected: u64,
    /// Admitted requests shed at dispatch without touching the graph
    /// (deadline already passed, or predicted not to finish in time).
    pub shed: u64,
    /// Requests that ran to a [`crate::metrics::QueryOutcome::Complete`].
    pub completed: u64,
    /// Requests that ended [`crate::metrics::QueryOutcome::Cancelled`]
    /// (cancelled while queued or mid-execution).
    pub cancelled: u64,
    /// Requests that ended
    /// [`crate::metrics::QueryOutcome::DeadlineExceeded`] mid-execution.
    pub deadline_exceeded: u64,
    /// Embedding rows delivered to this tenant (its goodput numerator).
    pub rows_delivered: u64,
    /// Wall-clock spent executing this tenant's queries, in µs.
    pub busy_us: f64,
    /// Requests currently waiting in the tenant's queue.
    pub queued: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_ids_compare_by_name() {
        let a = TenantId::new("alpha");
        let b: TenantId = "alpha".into();
        let c = TenantId::from("beta".to_string());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "alpha");
        assert_eq!(a.to_string(), "alpha");
        assert_eq!(TenantId::default().name(), "default");
    }

    #[test]
    fn priority_head_starts_are_ordered() {
        assert!(Priority::Low.head_start() < Priority::Normal.head_start());
        assert!(Priority::Normal.head_start() < Priority::High.head_start());
        assert!(Priority::High.head_start() < Priority::Critical.head_start());
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
