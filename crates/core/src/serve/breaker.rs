//! Per-machine circuit breakers for the serving layer.
//!
//! When a machine dies, every query that needs it burns its whole retry
//! budget (and often its deadline) rediscovering the same corpse. A circuit
//! breaker remembers: after [`BreakerConfig::failures_to_open`] consecutive
//! failures against one machine the breaker **opens**, and the engine sheds
//! queries needing that machine at dispatch — an O(1) map lookup, zero
//! transport work, resolved as `QueryOutcome::Shed` in well under a
//! millisecond. After a backoff the breaker goes **half-open** and lets a
//! single probe query through: success closes the breaker, failure re-opens
//! it with the backoff multiplied (capped). Every query in this executor
//! touches every machine (exploration fans out over all partitions), so one
//! open breaker is enough to shed a sheddable query.
//!
//! ```text
//!                 failure (consecutive == K)
//!   Closed ───────────────────────────────────► Open
//!     ▲                                           │ backoff elapses
//!     │ probe succeeds                            ▼
//!     └───────────────────────────────────── HalfOpen ──► Open (probe fails,
//!                                          (one probe)      backoff × mult)
//! ```
//!
//! The bank is engine-internal state mutated under the scheduler lock; its
//! counters are exported through `SchedulerStats` (`breaker_opened`,
//! `breaker_half_open_probes`, `breaker_closed`, `shed_machine_down`).

use std::time::{Duration, Instant};

/// Tuning knobs of the per-machine circuit breakers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Whether breakers are consulted at all. On by default; turn off to
    /// reproduce pre-breaker dispatch exactly.
    pub enabled: bool,
    /// Consecutive failures against one machine that open its breaker.
    pub failures_to_open: u32,
    /// How long an opened breaker stays open before a half-open probe.
    pub open_backoff: Duration,
    /// Backoff multiplier applied each time a probe fails.
    pub backoff_multiplier: f64,
    /// Ceiling on the open backoff.
    pub max_backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            failures_to_open: 3,
            open_backoff: Duration::from_millis(100),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_secs(5),
        }
    }
}

impl BreakerConfig {
    /// Disables the breakers.
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// Sets the consecutive-failure threshold (floored at 1).
    pub fn with_failures_to_open(mut self, k: u32) -> Self {
        self.failures_to_open = k.max(1);
        self
    }

    /// Sets the initial open backoff.
    pub fn with_open_backoff(mut self, backoff: Duration) -> Self {
        self.open_backoff = backoff;
        self
    }
}

/// Where one machine's breaker currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: queries flow.
    Closed,
    /// Tripped: queries needing this machine are shed until the backoff
    /// elapses.
    Open,
    /// Backoff elapsed: exactly one probe query is in flight; everyone else
    /// is still shed.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct MachineBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// When an [`BreakerState::Open`] breaker may go half-open.
    probe_at: Instant,
    /// Current open backoff (grows on failed probes).
    backoff: Duration,
    /// Whether the half-open probe slot is taken.
    probing: bool,
}

/// What [`BreakerBank::admit`] decided for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// No open breaker: execute normally.
    Allow,
    /// Some breaker is half-open and this query took its probe slot:
    /// execute, and report the result so the breaker can close or re-open.
    Probe(u16),
    /// A breaker for this machine is open (or its probe slot is taken):
    /// shed without any transport work.
    Shed(u16),
}

/// The engine's per-machine breaker array plus transition counters.
#[derive(Debug)]
pub struct BreakerBank {
    config: BreakerConfig,
    machines: Vec<MachineBreaker>,
    /// Closed→Open transitions.
    pub opened: u64,
    /// Half-open probes allowed through.
    pub half_open_probes: u64,
    /// HalfOpen→Closed transitions (recoveries).
    pub closed: u64,
}

impl BreakerBank {
    /// A bank of `num_machines` closed breakers.
    pub fn new(config: BreakerConfig, num_machines: usize) -> Self {
        let now = Instant::now();
        BreakerBank {
            config,
            machines: (0..num_machines)
                .map(|_| MachineBreaker {
                    state: BreakerState::Closed,
                    consecutive_failures: 0,
                    probe_at: now,
                    backoff: config.open_backoff,
                    probing: false,
                })
                .collect(),
            opened: 0,
            half_open_probes: 0,
            closed: 0,
        }
    }

    /// The state of machine `m`'s breaker.
    pub fn state(&self, m: u16) -> BreakerState {
        self.machines
            .get(m as usize)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Decides whether a query may execute at `now`. O(machines), no
    /// allocation, no transport work. Since every query fans out over the
    /// whole cluster, the first non-closed breaker decides.
    pub fn admit(&mut self, now: Instant) -> BreakerDecision {
        if !self.config.enabled {
            return BreakerDecision::Allow;
        }
        for (i, b) in self.machines.iter_mut().enumerate() {
            match b.state {
                BreakerState::Closed => {}
                BreakerState::Open => {
                    if now >= b.probe_at {
                        b.state = BreakerState::HalfOpen;
                        b.probing = true;
                        self.half_open_probes += 1;
                        return BreakerDecision::Probe(i as u16);
                    }
                    return BreakerDecision::Shed(i as u16);
                }
                BreakerState::HalfOpen => {
                    if b.probing {
                        // Probe slot taken; everyone else keeps shedding.
                        return BreakerDecision::Shed(i as u16);
                    }
                    b.probing = true;
                    self.half_open_probes += 1;
                    return BreakerDecision::Probe(i as u16);
                }
            }
        }
        BreakerDecision::Allow
    }

    /// Records that a query failed against machine `m` (retry budget
    /// exhausted or machine reported down).
    pub fn record_failure(&mut self, m: u16, now: Instant) {
        if !self.config.enabled {
            return;
        }
        let mult = self.config.backoff_multiplier.max(1.0);
        let max = self.config.max_backoff;
        let threshold = self.config.failures_to_open.max(1);
        let Some(b) = self.machines.get_mut(m as usize) else {
            return;
        };
        match b.state {
            BreakerState::Closed => {
                b.consecutive_failures += 1;
                if b.consecutive_failures >= threshold {
                    b.state = BreakerState::Open;
                    b.probe_at = now + b.backoff;
                    self.opened += 1;
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: re-open with a larger backoff.
                b.backoff = Duration::from_secs_f64(
                    (b.backoff.as_secs_f64() * mult).min(max.as_secs_f64()),
                );
                b.state = BreakerState::Open;
                b.probe_at = now + b.backoff;
                b.probing = false;
                self.opened += 1;
            }
            BreakerState::Open => {}
        }
    }

    /// Records that a query succeeded against machine `m`.
    pub fn record_success(&mut self, m: u16) {
        if !self.config.enabled {
            return;
        }
        let initial = self.config.open_backoff;
        let Some(b) = self.machines.get_mut(m as usize) else {
            return;
        };
        match b.state {
            BreakerState::Closed => b.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                // The machine is back: close and reset.
                b.state = BreakerState::Closed;
                b.consecutive_failures = 0;
                b.backoff = initial;
                b.probing = false;
                self.closed += 1;
            }
            BreakerState::Open => {}
        }
    }

    /// Whether any breaker is not closed (fast-path check before `admit`).
    pub fn any_tripped(&self) -> bool {
        self.config.enabled
            && self
                .machines
                .iter()
                .any(|b| b.state != BreakerState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(k: u32, backoff_ms: u64) -> BreakerBank {
        BreakerBank::new(
            BreakerConfig::default()
                .with_failures_to_open(k)
                .with_open_backoff(Duration::from_millis(backoff_ms)),
            4,
        )
    }

    #[test]
    fn opens_after_k_consecutive_failures_only() {
        let mut bank = bank(3, 100);
        let now = Instant::now();
        bank.record_failure(1, now);
        bank.record_failure(1, now);
        // A success in between resets the streak.
        bank.record_success(1);
        bank.record_failure(1, now);
        bank.record_failure(1, now);
        assert_eq!(bank.state(1), BreakerState::Closed);
        bank.record_failure(1, now);
        assert_eq!(bank.state(1), BreakerState::Open);
        assert_eq!(bank.opened, 1);
        assert!(bank.any_tripped());
        assert_eq!(bank.admit(now), BreakerDecision::Shed(1));
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut bank = bank(1, 50);
        let now = Instant::now();
        bank.record_failure(2, now);
        assert_eq!(bank.state(2), BreakerState::Open);
        // Before the backoff: shed. After: exactly one probe.
        assert_eq!(bank.admit(now), BreakerDecision::Shed(2));
        let later = now + Duration::from_millis(60);
        assert_eq!(bank.admit(later), BreakerDecision::Probe(2));
        assert_eq!(bank.state(2), BreakerState::HalfOpen);
        // A second query while the probe is in flight still sheds.
        assert_eq!(bank.admit(later), BreakerDecision::Shed(2));
        assert_eq!(bank.half_open_probes, 1);
        bank.record_success(2);
        assert_eq!(bank.state(2), BreakerState::Closed);
        assert_eq!(bank.closed, 1);
        assert_eq!(bank.admit(later), BreakerDecision::Allow);
    }

    #[test]
    fn failed_probe_reopens_with_multiplied_backoff() {
        let mut bank = bank(1, 50);
        let t0 = Instant::now();
        bank.record_failure(0, t0);
        let t1 = t0 + Duration::from_millis(60);
        assert_eq!(bank.admit(t1), BreakerDecision::Probe(0));
        bank.record_failure(0, t1);
        assert_eq!(bank.state(0), BreakerState::Open);
        assert_eq!(bank.opened, 2);
        // Backoff doubled: 60ms later is still inside the 100ms window.
        assert_eq!(
            bank.admit(t1 + Duration::from_millis(60)),
            BreakerDecision::Shed(0)
        );
        assert_eq!(
            bank.admit(t1 + Duration::from_millis(110)),
            BreakerDecision::Probe(0)
        );
    }

    #[test]
    fn disabled_bank_always_allows() {
        let mut bank = BreakerBank::new(BreakerConfig::disabled(), 2);
        let now = Instant::now();
        for _ in 0..10 {
            bank.record_failure(0, now);
        }
        assert_eq!(bank.admit(now), BreakerDecision::Allow);
        assert!(!bank.any_tripped());
        assert_eq!(bank.opened, 0);
    }

    #[test]
    fn out_of_range_machines_are_ignored() {
        let mut bank = bank(1, 10);
        let now = Instant::now();
        bank.record_failure(99, now);
        bank.record_success(99);
        assert_eq!(bank.state(99), BreakerState::Closed);
        assert_eq!(bank.admit(now), BreakerDecision::Allow);
    }
}
