//! Admission control: bounded queueing with backpressure, and a learned
//! cost model that rejects queries which cannot meet their deadline.
//!
//! An open-loop stream offered faster than the engine can serve must be
//! refused *at the door* — once the queue is deep enough that a query's
//! predicted wait exceeds its deadline, executing it only widens everyone
//! else's tail. Admission therefore makes two checks in O(query) time,
//! before any exploration work or transport envelope is spent:
//!
//! 1. **Backpressure**: the total queue depth is bounded
//!    ([`AdmissionConfig::queue_capacity`]); a submit over the bound is
//!    [`crate::serve::RejectReason::QueueFull`].
//! 2. **Deadline feasibility**: per-query work is estimated from label
//!    frequencies (the same statistics the join-order estimator samples —
//!    see [`CostEstimator`]) and converted to predicted µs by an EWMA over
//!    *observed* (work → wall-clock) ratios of completed queries. If
//!    predicted wait + service exceeds the request's deadline, the submit is
//!    [`crate::serve::RejectReason::EstimatedTooLate`]. The estimator
//!    admits optimistically until it has seen enough completions to
//!    calibrate.
//!
//! The same estimate prices queries for the deficit-round-robin scheduler
//! (a heavy query debits more of its tenant's quantum) and backs the
//! dispatch-time shed check.

use crate::query::QueryGraph;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use trinity_sim::MemoryCloud;

/// Completed queries the estimator must observe before its predictions are
/// trusted for rejection/shedding decisions.
const CALIBRATION_SAMPLES: u64 = 8;

/// Smoothing factor of the µs-per-work-unit EWMA.
const EWMA_ALPHA: f64 = 0.2;

/// Configuration of the admission controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum queries queued across all tenants; a submit beyond this is
    /// rejected with [`crate::serve::RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Whether to reject deadline-carrying queries whose predicted
    /// wait + service time exceeds the deadline. Disable to shed only at
    /// dispatch.
    pub reject_estimated_late: bool,
    /// Multiplier on the predicted time before comparing against the
    /// deadline: values > 1 reject earlier (conservative), < 1 admit more.
    pub estimate_slack: f64,
    /// Serving threads the wait predictor assumes drain the queue. Match
    /// this to the number of [`crate::engine::QueryEngine::serve`] workers.
    pub servers: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 1024,
            reject_estimated_late: true,
            estimate_slack: 1.0,
            servers: 1,
        }
    }
}

impl AdmissionConfig {
    /// Sets the queue capacity (floored at 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables or disables estimated-too-late rejection.
    pub fn with_reject_estimated_late(mut self, on: bool) -> Self {
        self.reject_estimated_late = on;
        self
    }

    /// Sets the estimate slack multiplier.
    pub fn with_estimate_slack(mut self, slack: f64) -> Self {
        self.estimate_slack = slack;
        self
    }

    /// Sets the assumed number of serving threads (floored at 1).
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers.max(1);
        self
    }
}

/// EWMA state of the cost estimator, behind one short-lived lock.
#[derive(Debug, Default)]
struct EstimatorState {
    us_per_unit: f64,
    samples: u64,
}

/// Prices a query in abstract *work units* before execution, and learns the
/// wall-clock value of a unit from completed queries.
///
/// The unit price of a query is Σ over its vertices of
/// `label_frequency × (1 + degree)` — the count of candidate roots the
/// exploration phase must consider per STwig, weighted by how many children
/// each root fans out to. It deliberately reuses the label-frequency
/// statistics behind `decompose`'s f-value ranking and the join-order
/// estimator's sampling, so admission prices and execution costs move
/// together; it is O(query vertices) and touches no partition data.
#[derive(Debug, Default)]
pub struct CostEstimator {
    state: Mutex<EstimatorState>,
}

impl CostEstimator {
    /// Creates an uncalibrated estimator (admits everything).
    pub fn new() -> Self {
        CostEstimator::default()
    }

    /// The work-unit price of `query` on `cloud`.
    pub fn units(cloud: &MemoryCloud, query: &QueryGraph) -> f64 {
        let mut units = 0.0;
        for v in query.vertices() {
            let freq = cloud.label_frequency(query.label(v)) as f64;
            units += freq * (1.0 + query.degree(v) as f64);
        }
        units.max(1.0)
    }

    /// Records an observed execution: `units` of estimated work took
    /// `wall_us` µs. Call only for runs that went to completion —
    /// interrupted queries under-report their true cost.
    pub fn observe(&self, units: f64, wall_us: f64) {
        // NaN-safe guard: refuse non-positive units and negative durations.
        if units.is_nan() || units <= 0.0 || wall_us.is_nan() || wall_us < 0.0 {
            return;
        }
        let ratio = wall_us / units;
        let mut state = self.state.lock().expect("estimator lock");
        if state.samples == 0 {
            state.us_per_unit = ratio;
        } else {
            state.us_per_unit += EWMA_ALPHA * (ratio - state.us_per_unit);
        }
        state.samples += 1;
    }

    /// Predicted service time for `units` of work, in µs. `None` until the
    /// estimator has observed [`CALIBRATION_SAMPLES`] completions — an
    /// uncalibrated estimator must not reject anything.
    pub fn estimate_us(&self, units: f64) -> Option<f64> {
        let state = self.state.lock().expect("estimator lock");
        (state.samples >= CALIBRATION_SAMPLES).then(|| units * state.us_per_unit)
    }

    /// Completions observed so far.
    pub fn samples(&self) -> u64 {
        self.state.lock().expect("estimator lock").samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::ids::VertexId;
    use trinity_sim::network::CostModel;

    fn small_cloud() -> MemoryCloud {
        let mut gb = GraphBuilder::new_undirected();
        for i in 0..8u64 {
            gb.add_vertex(VertexId(i), "a");
        }
        gb.add_vertex(VertexId(8), "b");
        for i in 0..8u64 {
            gb.add_edge(VertexId(i), VertexId(8));
        }
        gb.build(2, CostModel::default())
    }

    fn query(cloud: &MemoryCloud, labels: &[&str]) -> QueryGraph {
        let mut qb = QueryGraph::builder();
        let vs: Vec<_> = labels
            .iter()
            .map(|l| qb.vertex_by_name(cloud, l).unwrap())
            .collect();
        for w in vs.windows(2) {
            qb.edge(w[0], w[1]);
        }
        qb.build().unwrap()
    }

    #[test]
    fn units_grow_with_label_frequency() {
        let cloud = small_cloud();
        let frequent = query(&cloud, &["a", "b"]);
        let rare = query(&cloud, &["b", "b"]);
        assert!(
            CostEstimator::units(&cloud, &frequent) > CostEstimator::units(&cloud, &rare),
            "a-rooted query must be priced above the b-only query"
        );
    }

    #[test]
    fn units_price_partition_local_labels_by_global_frequency() {
        // "c" lives on exactly one machine (vertex 9 lands in one partition
        // of the 2-machine split); "z" exists in the label space but has no
        // vertices at all. Pricing must use the *global* frequency — a
        // partition-local label counts once, not zero and not once per
        // machine — and an empty-posting label must contribute exactly zero
        // units, so it cannot skew the µs-per-unit EWMA through systematic
        // over-pricing.
        let mut gb = GraphBuilder::new_undirected();
        for i in 0..8u64 {
            gb.add_vertex(VertexId(i), "a");
        }
        gb.add_vertex(VertexId(8), "b");
        gb.add_vertex(VertexId(9), "c");
        for i in 0..8u64 {
            gb.add_edge(VertexId(i), VertexId(8));
        }
        gb.add_edge(VertexId(9), VertexId(8));
        let cloud = gb.build(2, CostModel::default());
        let c = cloud.labels().get("c").unwrap();
        let on_one_machine = cloud
            .machines()
            .filter(|&m| {
                cloud
                    .all_ids_with_label(c)
                    .iter()
                    .any(|&id| cloud.machine_of(id) == m)
            })
            .count();
        assert_eq!(on_one_machine, 1, "fixture: c must be partition-local");

        // c-b path: both degree 1, so units = freq(c)*2 + freq(b)*2 = 2 + 2.
        let local = query(&cloud, &["c", "b"]);
        assert_eq!(CostEstimator::units(&cloud, &local), 4.0);

        // A query vertex whose label has an empty posting everywhere: same
        // shape, but the absent label adds zero units.
        let mut qb = QueryGraph::builder();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        let z = qb.vertex(trinity_sim::ids::LabelId(1_000)); // no such data label
        qb.edge(z, b);
        let absent = qb.build().unwrap();
        assert_eq!(
            CostEstimator::units(&cloud, &absent),
            2.0,
            "empty-posting label must contribute zero units"
        );
    }

    #[test]
    fn estimator_calibrates_after_enough_samples() {
        let est = CostEstimator::new();
        assert_eq!(est.estimate_us(100.0), None, "uncalibrated estimator");
        for _ in 0..CALIBRATION_SAMPLES {
            est.observe(10.0, 50.0); // 5 µs per unit
        }
        let predicted = est.estimate_us(100.0).expect("calibrated");
        assert!(
            (predicted - 500.0).abs() < 1e-6,
            "steady ratio must predict exactly: {predicted}"
        );
        assert_eq!(est.samples(), CALIBRATION_SAMPLES);
    }

    #[test]
    fn estimator_tracks_a_ratio_shift() {
        let est = CostEstimator::new();
        for _ in 0..20 {
            est.observe(1.0, 10.0);
        }
        for _ in 0..60 {
            est.observe(1.0, 100.0);
        }
        let predicted = est.estimate_us(1.0).unwrap();
        assert!(
            predicted > 90.0,
            "EWMA must converge towards the new ratio, got {predicted}"
        );
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let est = CostEstimator::new();
        est.observe(0.0, 100.0);
        est.observe(-1.0, 100.0);
        est.observe(1.0, f64::NAN);
        assert_eq!(est.samples(), 0);
    }

    #[test]
    fn admission_config_builders_floor_inputs() {
        let c = AdmissionConfig::default()
            .with_queue_capacity(0)
            .with_servers(0)
            .with_estimate_slack(2.0)
            .with_reject_estimated_late(false);
        assert_eq!(c.queue_capacity, 1);
        assert_eq!(c.servers, 1);
        assert!(!c.reject_estimated_late);
        assert!((c.estimate_slack - 2.0).abs() < 1e-9);
    }
}
