//! Overload-safe serving: admission control, per-tenant fair scheduling,
//! and the handle-based `submit()` surface of
//! [`crate::engine::QueryEngine`].
//!
//! The paper's deployment target is *online* serving — billion-node graphs
//! answering an open stream of subgraph queries from many clients. An open
//! stream offered faster than the engine drains it cannot be absorbed by
//! queueing alone: an unbounded queue turns overload into unbounded latency
//! for everyone. This module is the missing control plane:
//!
//! * [`admission`] — a bounded queue with backpressure
//!   ([`RejectReason::QueueFull`]) and a learned cost model that refuses
//!   deadline-carrying queries predicted to miss
//!   ([`RejectReason::EstimatedTooLate`]) before they cost anything;
//! * [`scheduler`] — deficit round-robin across [`TenantId`]s (fair shares
//!   of estimated work, not of request count), earliest-deadline-first with
//!   aged [`Priority`] head starts within a tenant, and dispatch-time
//!   shedding ([`crate::metrics::QueryOutcome::Shed`]) of queries that can
//!   no longer make their deadline;
//! * [`tenant`] — tenant identity and per-tenant serving counters.
//!
//! Queries enter as a [`QueryRequest`] via
//! [`crate::engine::QueryEngine::submit`], which answers
//! [`Submit::Accepted`] with a [`QueryHandle`] (await the result, stream
//! rows, poll status, cancel) or [`Submit::Rejected`] with the reason.

pub mod admission;
pub mod breaker;
pub mod scheduler;
pub mod tenant;

pub use admission::{AdmissionConfig, CostEstimator};
pub use breaker::{BreakerBank, BreakerConfig, BreakerDecision, BreakerState};
pub use scheduler::SchedulerConfig;
pub use tenant::{Priority, TenantId, TenantStats};

use crate::error::StwigError;
use crate::metrics::{QueryMetrics, QueryOutcome};
use crate::query::QueryGraph;
use crate::stream::{CancelToken, QueryOptions};
use crate::table::ResultTable;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use trinity_sim::ids::VertexId;

/// Configuration of the serving layer (admission + scheduling), carried by
/// [`crate::engine::EngineConfig::serve`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeConfig {
    /// Bounded-queue and cost-model knobs.
    pub admission: AdmissionConfig,
    /// Fair-scheduling knobs (DRR quantum, priority aging).
    pub scheduler: SchedulerConfig,
    /// Per-machine circuit-breaker knobs (see [`breaker`]).
    pub breaker: BreakerConfig,
}

impl ServeConfig {
    /// Sets the admission configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the circuit-breaker configuration.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }
}

/// One query submission: the pattern plus who is asking and under what
/// service terms. Build with [`QueryRequest::new`] and the `with_*`
/// builders, or attach a pre-built [`QueryOptions`] (whose tenant/priority,
/// when set, take effect here).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query pattern.
    pub query: QueryGraph,
    /// The tenant charged and scheduled for this query.
    pub tenant: TenantId,
    /// Scheduling priority within the tenant.
    pub priority: Priority,
    /// Serving options (deadline, cancellation, result mode).
    pub options: QueryOptions,
}

impl QueryRequest {
    /// A request on the default tenant at normal priority, no options.
    pub fn new(query: QueryGraph) -> Self {
        QueryRequest {
            query,
            tenant: TenantId::default(),
            priority: Priority::default(),
            options: QueryOptions::none(),
        }
    }

    /// Sets the tenant.
    pub fn with_tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches serving options. A tenant or non-default priority carried by
    /// the options (see [`QueryOptions::with_tenant`] /
    /// [`QueryOptions::with_priority`]) overrides the request's.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        if let Some(tenant) = options.tenant.clone() {
            self.tenant = tenant;
        }
        if options.priority != Priority::default() {
            self.priority = options.priority;
        }
        self.options = options;
        self
    }

    /// Sets the deadline (sugar over the options).
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Attaches a cancel token (sugar over the options).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.options.cancel = Some(token);
        self
    }

    /// Overrides the engine's [`crate::config::ResultMode`] for this query
    /// (sugar over the options).
    pub fn with_result_mode(mut self, mode: crate::config::ResultMode) -> Self {
        self.options.result_mode = Some(mode);
        self
    }
}

/// Why admission refused a submission. Rejection is O(query) — no
/// exploration work is spent and no transport envelope is charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity
    /// ([`AdmissionConfig::queue_capacity`]); back off and retry.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The learned cost model predicts the query cannot finish by its
    /// deadline even if admitted now.
    EstimatedTooLate {
        /// Predicted queue wait + service time, in µs.
        predicted_us: f64,
        /// The submitted deadline, in µs.
        deadline_us: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            RejectReason::EstimatedTooLate {
                predicted_us,
                deadline_us,
            } => write!(
                f,
                "estimated too late (predicted {predicted_us:.0}µs > deadline {deadline_us:.0}µs)"
            ),
        }
    }
}

/// The answer to [`crate::engine::QueryEngine::submit`].
#[derive(Debug)]
pub enum Submit {
    /// Admitted: track, await, stream or cancel through the handle.
    Accepted(QueryHandle),
    /// Refused at the door, with no execution work spent.
    Rejected(RejectReason),
}

impl Submit {
    /// The handle, if admitted.
    pub fn accepted(self) -> Option<QueryHandle> {
        match self {
            Submit::Accepted(handle) => Some(handle),
            Submit::Rejected(_) => None,
        }
    }

    /// The handle; panics with the rejection reason otherwise (test sugar).
    pub fn expect_accepted(self) -> QueryHandle {
        match self {
            Submit::Accepted(handle) => handle,
            Submit::Rejected(reason) => panic!("submission rejected: {reason}"),
        }
    }

    /// The rejection reason, if refused.
    pub fn rejected(&self) -> Option<RejectReason> {
        match self {
            Submit::Accepted(_) => None,
            Submit::Rejected(reason) => Some(*reason),
        }
    }
}

/// Where a submitted query currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Admitted, waiting in its tenant's queue.
    Queued,
    /// Dispatched; executing right now.
    Running,
    /// Finished — [`QueryHandle::wait`] will not block.
    Finished,
}

/// The outcome of one served query.
///
/// `metrics.outcome` says how it ended: [`QueryOutcome::Complete`],
/// interrupted mid-run ([`QueryOutcome::Cancelled`] /
/// [`QueryOutcome::DeadlineExceeded`]), or [`QueryOutcome::Shed`] — refused
/// at dispatch with zero execution work (no table, no rows, no envelopes).
#[derive(Debug)]
pub struct QueryResponse {
    /// The materialized result, for requests served in collect mode (the
    /// default). `None` for shed queries and row-streamed requests.
    pub table: Option<ResultTable>,
    /// Full per-query metrics (zeroed except `outcome` for shed queries).
    pub metrics: QueryMetrics,
    /// Global dispatch index: response `n` was the `n`-th query the engine
    /// dispatched (shed included). Lets tests assert scheduling order.
    pub served_seq: u64,
    /// Wall-clock the query spent queued before dispatch, in µs.
    pub queue_wait_us: f64,
    /// The graph epoch the request was served against: for queries, the
    /// epoch of the snapshot pinned at admission; for
    /// [`crate::engine::QueryEngine::apply_updates`] requests, the epoch
    /// *after* the batch applied. `None` when the engine serves a static
    /// cloud (no [`trinity_sim::epoch::GraphEpochs`]).
    pub epoch: Option<u64>,
}

impl QueryResponse {
    /// Whether the query was shed at dispatch without executing.
    pub fn was_shed(&self) -> bool {
        self.metrics.outcome == QueryOutcome::Shed
    }

    /// Rows this response delivered (materialized or streamed).
    pub fn rows_delivered(&self) -> u64 {
        self.table
            .as_ref()
            .map(|t| t.num_rows() as u64)
            .unwrap_or(self.metrics.rows_streamed)
    }
}

/// Handle status encoding in [`HandleShared::status`].
const STATUS_QUEUED: u8 = 0;
const STATUS_RUNNING: u8 = 1;
const STATUS_FINISHED: u8 = 2;

/// State shared between a [`QueryHandle`] and the engine's dispatch loop.
#[derive(Debug)]
pub(crate) struct HandleShared {
    tenant: TenantId,
    cancel: CancelToken,
    status: AtomicU8,
    result: Mutex<Option<Result<QueryResponse, StwigError>>>,
    finished: Condvar,
    /// Receiver side of the row stream, for channel-delivery requests;
    /// taken (at most once) by [`QueryHandle::rows`].
    rows: Mutex<Option<std::sync::mpsc::Receiver<Vec<VertexId>>>>,
}

impl HandleShared {
    pub(crate) fn new(tenant: TenantId, cancel: CancelToken) -> Self {
        HandleShared {
            tenant,
            cancel,
            status: AtomicU8::new(STATUS_QUEUED),
            result: Mutex::new(None),
            finished: Condvar::new(),
            rows: Mutex::new(None),
        }
    }

    pub(crate) fn set_rows(&self, receiver: std::sync::mpsc::Receiver<Vec<VertexId>>) {
        *self.rows.lock().expect("rows lock") = Some(receiver);
    }

    pub(crate) fn mark_running(&self) {
        self.status.store(STATUS_RUNNING, Ordering::Release);
    }

    pub(crate) fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    pub(crate) fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Publishes the result and wakes every waiter.
    pub(crate) fn finish(&self, result: Result<QueryResponse, StwigError>) {
        *self.result.lock().expect("result lock") = Some(result);
        self.status.store(STATUS_FINISHED, Ordering::Release);
        self.finished.notify_all();
    }
}

/// Tracks one admitted query: poll it, block on it, stream its rows, or
/// cancel it. Obtained from [`crate::engine::QueryEngine::submit`].
///
/// Results materialize when the engine dispatches the query — from
/// [`crate::engine::QueryEngine::serve`] worker threads, or a
/// [`crate::engine::QueryEngine::drain`] on any thread (including this
/// one). [`QueryHandle::wait`] blocks until then.
#[derive(Debug)]
pub struct QueryHandle {
    pub(crate) shared: Arc<HandleShared>,
}

impl QueryHandle {
    pub(crate) fn from_shared(shared: Arc<HandleShared>) -> Self {
        QueryHandle { shared }
    }

    pub(crate) fn shared(&self) -> &HandleShared {
        &self.shared
    }

    /// The tenant this query is charged to.
    pub fn tenant(&self) -> &TenantId {
        self.shared.tenant()
    }

    /// Where the query currently is.
    pub fn status(&self) -> QueryStatus {
        match self.shared.status.load(Ordering::Acquire) {
            STATUS_QUEUED => QueryStatus::Queued,
            STATUS_RUNNING => QueryStatus::Running,
            _ => QueryStatus::Finished,
        }
    }

    /// Whether [`QueryHandle::wait`] would return without blocking.
    pub fn is_finished(&self) -> bool {
        self.status() == QueryStatus::Finished
    }

    /// Requests cancellation: a queued query resolves to
    /// [`QueryOutcome::Cancelled`] without executing; a running one stops at
    /// its next cooperative check. Idempotent.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// Takes the row stream of a channel-delivery request
    /// ([`crate::engine::QueryEngine::submit_streaming`]); `None` for
    /// collect-delivery requests or if already taken. Rows arrive while the
    /// query runs; the channel closes when it finishes.
    pub fn rows(&self) -> Option<std::sync::mpsc::Receiver<Vec<VertexId>>> {
        self.shared.rows.lock().expect("rows lock").take()
    }

    /// Non-blocking poll: the response if the query has finished.
    pub fn try_wait(&self) -> Option<Result<QueryResponse, StwigError>> {
        if !self.is_finished() {
            return None;
        }
        self.shared.result.lock().expect("result lock").take()
    }

    /// Blocks until the query finishes and returns its response.
    ///
    /// Only blocks while some other thread serves the queue; pair with
    /// [`crate::engine::QueryEngine::serve`] workers, or call
    /// [`crate::engine::QueryEngine::drain`] first on this thread.
    pub fn wait(self) -> Result<QueryResponse, StwigError> {
        let mut slot = self.shared.result.lock().expect("result lock");
        while slot.is_none() {
            slot = self.shared.finished.wait(slot).expect("result lock");
        }
        slot.take().expect("loop exits with a result")
    }
}

/// How a submission was disposed of at admission (scheduler accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitDisposition {
    Accepted,
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_render() {
        let full = RejectReason::QueueFull { capacity: 4 };
        assert!(full.to_string().contains("capacity 4"));
        let late = RejectReason::EstimatedTooLate {
            predicted_us: 1500.0,
            deadline_us: 1000.0,
        };
        assert!(late.to_string().contains("1500"));
    }

    #[test]
    fn handle_lifecycle_and_waiting() {
        let shared = Arc::new(HandleShared::new(TenantId::default(), CancelToken::new()));
        let handle = QueryHandle {
            shared: Arc::clone(&shared),
        };
        assert_eq!(handle.status(), QueryStatus::Queued);
        assert!(handle.try_wait().is_none());
        shared.mark_running();
        assert_eq!(handle.status(), QueryStatus::Running);
        shared.finish(Ok(QueryResponse {
            table: None,
            metrics: QueryMetrics::default(),
            served_seq: 7,
            queue_wait_us: 12.5,
            epoch: None,
        }));
        assert!(handle.is_finished());
        let response = handle.wait().expect("finished ok");
        assert_eq!(response.served_seq, 7);
        assert!(!response.was_shed());
        assert_eq!(response.rows_delivered(), 0);
    }

    #[test]
    fn cancel_propagates_through_the_shared_token() {
        let token = CancelToken::new();
        let shared = Arc::new(HandleShared::new(TenantId::new("t"), token.clone()));
        let handle = QueryHandle { shared };
        assert_eq!(handle.tenant().name(), "t");
        handle.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn submit_accessors() {
        let rejected = Submit::Rejected(RejectReason::QueueFull { capacity: 1 });
        assert!(rejected.rejected().is_some());
        assert!(rejected.accepted().is_none());
    }
}
