//! STwig: the basic unit of graph access (§4.1).
//!
//! An STwig is a two-level tree `q = (r, L)`: a root query vertex and the set
//! of its children in the decomposition. A set of STwigs is an *STwig cover*
//! of the query when every query edge belongs to exactly one STwig
//! (Problem 1).

use crate::error::StwigError;
use crate::query::{QVid, QueryGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use trinity_sim::ids::LabelId;

/// A two-level tree query unit: a root query vertex and its children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct STwig {
    /// The root query vertex.
    pub root: QVid,
    /// The child query vertices (each connected to the root by a query edge
    /// that this STwig covers). Non-empty.
    pub children: Vec<QVid>,
}

impl STwig {
    /// Creates an STwig, sorting children for canonical form.
    pub fn new(root: QVid, mut children: Vec<QVid>) -> Self {
        children.sort_unstable();
        children.dedup();
        STwig { root, children }
    }

    /// Number of query edges this STwig covers (= number of children).
    pub fn num_edges(&self) -> usize {
        self.children.len()
    }

    /// All query vertices touched by this STwig (root first, then children).
    pub fn vertices(&self) -> impl Iterator<Item = QVid> + '_ {
        std::iter::once(self.root).chain(self.children.iter().copied())
    }

    /// The edges (root, child) covered by this STwig.
    pub fn edges(&self) -> impl Iterator<Item = (QVid, QVid)> + '_ {
        self.children.iter().map(move |&c| (self.root, c))
    }

    /// The root label and child labels of this STwig against a query.
    pub fn labels(&self, query: &QueryGraph) -> (LabelId, Vec<LabelId>) {
        (
            query.label(self.root),
            self.children.iter().map(|&c| query.label(c)).collect(),
        )
    }
}

impl std::fmt::Display for STwig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "STwig({} -> [", self.root)?;
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "])")
    }
}

/// Validates that `stwigs` is an STwig cover of `query`: every query edge is
/// covered by exactly one STwig, and every STwig edge is a query edge.
pub fn validate_cover(query: &QueryGraph, stwigs: &[STwig]) -> Result<(), StwigError> {
    let mut covered: HashSet<(u16, u16)> = HashSet::new();
    for t in stwigs {
        if t.children.is_empty() {
            return Err(StwigError::Internal(format!(
                "STwig rooted at {} has no children",
                t.root
            )));
        }
        for (u, v) in t.edges() {
            if !query.has_edge(u, v) {
                return Err(StwigError::Internal(format!(
                    "STwig edge ({u}, {v}) is not a query edge"
                )));
            }
            let key = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
            if !covered.insert(key) {
                return Err(StwigError::Internal(format!(
                    "query edge ({u}, {v}) covered more than once"
                )));
            }
        }
    }
    if covered.len() != query.num_edges() {
        return Err(StwigError::Internal(format!(
            "cover misses {} query edges",
            query.num_edges() - covered.len()
        )));
    }
    Ok(())
}

/// Returns the set of query vertices that appear in at least one of the given
/// STwigs (bound vertices after processing them in order).
pub fn bound_vertices(stwigs: &[STwig]) -> HashSet<QVid> {
    let mut out = HashSet::new();
    for t in stwigs {
        out.insert(t.root);
        for &c in &t.children {
            out.insert(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_sim::ids::LabelId;

    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    fn square() -> QueryGraph {
        // 0-1, 1-2, 2-3, 3-0
        let mut b = QueryGraph::builder();
        let v: Vec<QVid> = (0..4).map(|i| b.vertex(l(i))).collect();
        b.edge(v[0], v[1])
            .edge(v[1], v[2])
            .edge(v[2], v[3])
            .edge(v[3], v[0]);
        b.build().unwrap()
    }

    #[test]
    fn stwig_canonical_form() {
        let t = STwig::new(QVid(0), vec![QVid(3), QVid(1), QVid(3)]);
        assert_eq!(t.children, vec![QVid(1), QVid(3)]);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.vertices().count(), 3);
        assert_eq!(t.to_string(), "STwig(q0 -> [q1, q3])");
    }

    #[test]
    fn labels_against_query() {
        let q = square();
        let t = STwig::new(QVid(1), vec![QVid(0), QVid(2)]);
        let (root, children) = t.labels(&q);
        assert_eq!(root, l(1));
        assert_eq!(children, vec![l(0), l(2)]);
    }

    #[test]
    fn valid_cover_accepted() {
        let q = square();
        let cover = vec![
            STwig::new(QVid(0), vec![QVid(1), QVid(3)]),
            STwig::new(QVid(2), vec![QVid(1), QVid(3)]),
        ];
        assert!(validate_cover(&q, &cover).is_ok());
    }

    #[test]
    fn missing_edge_rejected() {
        let q = square();
        let cover = vec![STwig::new(QVid(0), vec![QVid(1), QVid(3)])];
        assert!(validate_cover(&q, &cover).is_err());
    }

    #[test]
    fn double_covered_edge_rejected() {
        let q = square();
        let cover = vec![
            STwig::new(QVid(0), vec![QVid(1), QVid(3)]),
            STwig::new(QVid(1), vec![QVid(0), QVid(2)]),
            STwig::new(QVid(3), vec![QVid(2)]),
        ];
        assert!(validate_cover(&q, &cover).is_err());
    }

    #[test]
    fn non_query_edge_rejected() {
        let q = square();
        let cover = vec![
            STwig::new(QVid(0), vec![QVid(2)]), // diagonal, not an edge
        ];
        assert!(validate_cover(&q, &cover).is_err());
    }

    #[test]
    fn empty_children_rejected() {
        let q = square();
        let cover = vec![STwig::new(QVid(0), vec![])];
        assert!(validate_cover(&q, &cover).is_err());
    }

    #[test]
    fn bound_vertices_union() {
        let ts = vec![
            STwig::new(QVid(0), vec![QVid(1)]),
            STwig::new(QVid(2), vec![QVid(3)]),
        ];
        let bound = bound_vertices(&ts);
        assert_eq!(bound.len(), 4);
        assert!(bound.contains(&QVid(0)));
        assert!(bound.contains(&QVid(3)));
    }
}
