//! Retry with deterministic backoff for transport exchanges.
//!
//! Exchanges (batched `Cloud.Load`, `Index.getID`) are pure reads against an
//! immutable partition, so a repeated request is idempotent by construction
//! — the retry loop here is safe to wrap around every exchange the executor
//! makes. Transient failures ([`TransportError::is_transient`]) are retried
//! up to [`RetryPolicy::max_attempts`] with exponential, deterministically
//! jittered backoff; a permanent failure ([`TransportError::MachineDown`])
//! or an exhausted budget surfaces as [`StwigError::MachineUnavailable`],
//! and protocol violations are never retried (replaying a bug yields the
//! same bug).
//!
//! Backoff sleeps are **interruptible**: they poll the query's
//! [`QueryControl`] (cancel token + deadline) every millisecond, so a
//! cancelled or expired query never sits out the remainder of a backoff
//! ladder.

use crate::config::RetryPolicy;
use crate::error::StwigError;
use crate::metrics::FaultCounters;
use crate::stream::QueryControl;
use std::time::{Duration, Instant};
use trinity_sim::ids::MachineId;
use trinity_sim::transport::{Message, Transport, TransportError};

/// How a retried exchange resolved.
#[derive(Debug)]
pub enum ExchangeOutcome {
    /// The destination answered; here is its reply.
    Reply(Message),
    /// The query was cancelled or its deadline expired mid-backoff; the
    /// caller should take its usual interrupt path. Not an error: rows
    /// delivered so far stay valid.
    Interrupted,
}

/// Runs `tp.exchange(src, dst, make_msg())` under `policy`.
///
/// `make_msg` is invoked once per attempt so the fault-free fast path pays
/// no extra clone. Transient-failure accounting lands in `faults`
/// (retries, timeouts, other transient errors).
pub fn retry_exchange(
    tp: &dyn Transport,
    policy: &RetryPolicy,
    src: MachineId,
    dst: MachineId,
    make_msg: &dyn Fn() -> Message,
    control: Option<&QueryControl>,
    faults: &mut FaultCounters,
) -> Result<ExchangeOutcome, StwigError> {
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let err = match tp.exchange(src, dst, make_msg()) {
            Ok(reply) => return Ok(ExchangeOutcome::Reply(reply)),
            Err(err) => err,
        };
        match &err {
            TransportError::Timeout { .. } => faults.timeouts += 1,
            e if e.is_transient() => faults.transient_errors += 1,
            _ => {}
        }
        if let TransportError::MachineDown { dst: dead } = err {
            // Permanent loss: retrying cannot revive the machine.
            return Err(StwigError::MachineUnavailable {
                machine: dead.0,
                attempts: attempt,
                last: err,
            });
        }
        if !err.is_transient() {
            // Protocol violation — deterministic, never retried.
            return Err(StwigError::Transport(err));
        }
        if attempt >= budget {
            return Err(StwigError::MachineUnavailable {
                machine: dst.0,
                attempts: attempt,
                last: err,
            });
        }
        faults.retries += 1;
        let salt = ((src.0 as u64) << 16) | dst.0 as u64;
        if interruptible_sleep(policy.backoff(attempt, salt), control) {
            return Ok(ExchangeOutcome::Interrupted);
        }
    }
}

/// Sleeps for `wait`, polling `control` at millisecond granularity; returns
/// `true` if the query was interrupted before the wait elapsed.
fn interruptible_sleep(wait: Duration, control: Option<&QueryControl>) -> bool {
    if wait.is_zero() {
        return control.is_some_and(QueryControl::interrupted);
    }
    let until = Instant::now() + wait;
    loop {
        if control.is_some_and(QueryControl::interrupted) {
            return true;
        }
        let now = Instant::now();
        if now >= until {
            return false;
        }
        std::thread::sleep((until - now).min(Duration::from_millis(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{CancelToken, QueryOptions};
    use std::sync::atomic::{AtomicU32, Ordering};
    use trinity_sim::transport::Envelope;

    /// A transport whose exchanges fail a scripted number of times.
    struct Scripted {
        failures: AtomicU32,
        err: TransportError,
    }

    impl Scripted {
        fn failing(times: u32, err: TransportError) -> Self {
            Scripted {
                failures: AtomicU32::new(times),
                err,
            }
        }
    }

    impl Transport for Scripted {
        fn exchange(
            &self,
            _src: MachineId,
            _dst: MachineId,
            _msg: Message,
        ) -> Result<Message, TransportError> {
            let left = self.failures.load(Ordering::Relaxed);
            if left > 0 {
                self.failures.store(left - 1, Ordering::Relaxed);
                return Err(self.err.clone());
            }
            Ok(Message::LoadReply { cells: vec![] })
        }

        fn alloc_seq(&self, _src: MachineId, _dst: MachineId) -> u64 {
            0
        }

        fn post_envelope(&self, _dst: MachineId, _env: Envelope) {}

        fn drain(&self, _dst: MachineId) -> Vec<Envelope> {
            Vec::new()
        }
    }

    fn req() -> Message {
        Message::LoadRequest {
            ids: vec![],
            with_neighbors: false,
        }
    }

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    #[test]
    fn transient_failures_within_budget_are_absorbed() {
        let tp = Scripted::failing(2, TransportError::Unavailable { dst: m(1) });
        let mut faults = FaultCounters::default();
        let out = retry_exchange(
            &tp,
            &RetryPolicy::default(),
            m(0),
            m(1),
            &req,
            None,
            &mut faults,
        )
        .unwrap();
        assert!(matches!(out, ExchangeOutcome::Reply(_)));
        assert_eq!(faults.retries, 2);
        assert_eq!(faults.transient_errors, 2);
        assert_eq!(faults.timeouts, 0);
    }

    #[test]
    fn exhausted_budget_is_machine_unavailable() {
        let tp = Scripted::failing(
            u32::MAX,
            TransportError::Timeout {
                dst: m(2),
                phase: "LoadRequest",
            },
        );
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1,
            max_backoff_us: 10,
            timeout_us: None,
        };
        let mut faults = FaultCounters::default();
        let err = retry_exchange(&tp, &policy, m(0), m(2), &req, None, &mut faults).unwrap_err();
        assert_eq!(
            err,
            StwigError::MachineUnavailable {
                machine: 2,
                attempts: 3,
                last: TransportError::Timeout {
                    dst: m(2),
                    phase: "LoadRequest"
                },
            }
        );
        assert_eq!(faults.timeouts, 3);
        assert_eq!(faults.retries, 2, "no backoff after the final attempt");
    }

    #[test]
    fn machine_down_fails_immediately_without_retries() {
        let tp = Scripted::failing(u32::MAX, TransportError::MachineDown { dst: m(1) });
        let mut faults = FaultCounters::default();
        let err = retry_exchange(
            &tp,
            &RetryPolicy::default(),
            m(0),
            m(1),
            &req,
            None,
            &mut faults,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            StwigError::MachineUnavailable {
                machine: 1,
                attempts: 1,
                ..
            }
        ));
        assert_eq!(faults.retries, 0);
    }

    #[test]
    fn protocol_violations_are_never_retried() {
        let tp = Scripted::failing(u32::MAX, TransportError::NotARequest { got: "JoinRows" });
        let mut faults = FaultCounters::default();
        let err = retry_exchange(
            &tp,
            &RetryPolicy::default(),
            m(0),
            m(1),
            &req,
            None,
            &mut faults,
        )
        .unwrap_err();
        assert!(matches!(err, StwigError::Transport(_)));
        assert_eq!(faults.retries, 0);
    }

    /// Regression: a cancelled query must not sit out the rest of a backoff
    /// ladder. With a deliberately huge backoff, cancelling mid-sleep has to
    /// return [`ExchangeOutcome::Interrupted`] promptly.
    #[test]
    fn cancel_mid_backoff_returns_promptly() {
        let tp = Scripted::failing(u32::MAX, TransportError::Unavailable { dst: m(1) });
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 2_000_000, // 2 s per backoff: the full ladder is ~20 s
            max_backoff_us: 2_000_000,
            timeout_us: None,
        };
        let cancel = CancelToken::new();
        let control = QueryControl::new(
            &QueryOptions::none().with_cancel(cancel.clone()),
            Instant::now(),
        );
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            cancel.cancel();
        });
        let started = Instant::now();
        let mut faults = FaultCounters::default();
        let out =
            retry_exchange(&tp, &policy, m(0), m(1), &req, Some(&control), &mut faults).unwrap();
        canceller.join().unwrap();
        assert!(matches!(out, ExchangeOutcome::Interrupted));
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "cancel must cut the backoff short (took {:?})",
            started.elapsed()
        );
    }

    /// An already-expired deadline likewise skips the backoff entirely.
    #[test]
    fn expired_deadline_skips_backoff() {
        let tp = Scripted::failing(u32::MAX, TransportError::Unavailable { dst: m(1) });
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 2_000_000,
            max_backoff_us: 2_000_000,
            timeout_us: None,
        };
        let control = QueryControl::new(
            &QueryOptions::none().with_deadline(Duration::ZERO),
            Instant::now(),
        );
        let started = Instant::now();
        let mut faults = FaultCounters::default();
        let out =
            retry_exchange(&tp, &policy, m(0), m(1), &req, Some(&control), &mut faults).unwrap();
        assert!(matches!(out, ExchangeOutcome::Interrupted));
        assert!(started.elapsed() < Duration::from_millis(500));
    }
}
