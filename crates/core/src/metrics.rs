//! Execution metrics collected by the matchers.
//!
//! The paper reports wall-clock query time on a physical cluster. Our
//! substrate is simulated, so in addition to measured wall-clock we report
//! *simulated time*: per-machine compute time plus communication time charged
//! by the network cost model, combined as the makespan over machines. The
//! speed-up experiments (Fig. 9) are driven by the simulated numbers.

use serde::{Deserialize, Serialize};
use trinity_sim::partition::StorageBytes;

/// How a query execution ended.
///
/// `Complete` covers both exhaustive enumeration and a satisfied
/// `FirstK`/`Exists` request; the interrupted outcomes mean the query
/// stopped at a cooperative check — rows streamed before the interrupt are
/// valid embeddings and remain delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// The query ran to its natural end (all results, or the requested k).
    #[default]
    Complete,
    /// The query's [`crate::stream::CancelToken`] fired mid-execution.
    Cancelled,
    /// The query's deadline expired mid-execution.
    DeadlineExceeded,
    /// The admitted query was refused at dispatch — its deadline had already
    /// passed (or the cost model predicted it could not finish in time, or a
    /// machine it needs is behind an open circuit breaker) — so the engine
    /// spent **zero** execution work on it: no exploration, no join, no
    /// transport envelope. See [`crate::serve`].
    Shed,
    /// The query ran to its end under `FailurePolicy::Degrade` with one or
    /// more machines unreachable: every delivered row is a verified match,
    /// but rows that needed a lost machine are absent. The lost machines
    /// and coverage are in [`FaultCounters`].
    Partial,
}

impl QueryOutcome {
    /// Whether the query was stopped by a deadline or cancellation, or shed
    /// before it ever ran.
    pub fn is_interrupted(&self) -> bool {
        !matches!(self, QueryOutcome::Complete)
    }
}

/// Fault-tolerance counters of one query: what the retry layer absorbed and
/// what was permanently lost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Exchange attempts repeated after a transient failure.
    pub retries: u64,
    /// Exchange attempts that failed with `TransportError::Timeout`.
    pub timeouts: u64,
    /// Exchange attempts that failed with another transient error
    /// (unavailability, corrupt payload).
    pub transient_errors: u64,
    /// Duplicate envelope deliveries suppressed by drain-side dedup.
    pub duplicates_suppressed: u64,
    /// Machines that stayed unreachable after the retry budget and were
    /// dropped under `FailurePolicy::Degrade` (sorted, deduplicated). Empty
    /// for a complete query.
    pub machines_lost: Vec<u16>,
}

impl FaultCounters {
    /// Adds another counter set into this one (lost machines are unioned).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.transient_errors += other.transient_errors;
        self.duplicates_suppressed += other.duplicates_suppressed;
        for &m in &other.machines_lost {
            self.record_lost(m);
        }
    }

    /// Records machine `m` as permanently lost (idempotent).
    pub fn record_lost(&mut self, m: u16) {
        if let Err(pos) = self.machines_lost.binary_search(&m) {
            self.machines_lost.insert(pos, m);
        }
    }

    /// Whether machine `m` has been recorded as lost.
    pub fn is_lost(&self, m: u16) -> bool {
        self.machines_lost.binary_search(&m).is_ok()
    }

    /// Fraction of the cluster that stayed reachable, in `[0, 1]` — the
    /// coverage of a [`QueryOutcome::Partial`] result. `1.0` when nothing
    /// was lost.
    pub fn coverage(&self, num_machines: usize) -> f64 {
        if num_machines == 0 {
            return 1.0;
        }
        1.0 - self.machines_lost.len().min(num_machines) as f64 / num_machines as f64
    }

    /// Whether any fault was observed at all.
    pub fn any(&self) -> bool {
        self.retries != 0
            || self.timeouts != 0
            || self.transient_errors != 0
            || self.duplicates_suppressed != 0
            || !self.machines_lost.is_empty()
    }
}

/// Counters collected while exploring (matching STwigs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreCounters {
    /// Root candidates considered across all STwigs.
    pub roots_scanned: u64,
    /// `Cloud.Load` calls issued.
    pub cells_loaded: u64,
    /// `Index.hasLabel` probes issued.
    pub label_probes: u64,
    /// Rows emitted by `MatchSTwig` across all STwigs.
    pub rows_emitted: u64,
    /// Rows discarded because a binding filtered a candidate.
    pub rows_pruned_by_bindings: u64,
    /// Root candidates skipped by the neighborhood-signature prune before
    /// any of their neighbors were probed (see `MatchConfig::pruning`).
    /// Always zero with pruning disabled; pruned roots still count in
    /// `roots_scanned` and `cells_loaded`.
    pub roots_pruned: u64,
}

impl ExploreCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &ExploreCounters) {
        self.roots_scanned += other.roots_scanned;
        self.cells_loaded += other.cells_loaded;
        self.label_probes += other.label_probes;
        self.rows_emitted += other.rows_emitted;
        self.rows_pruned_by_bindings += other.rows_pruned_by_bindings;
        self.roots_pruned += other.roots_pruned;
    }
}

/// Counters collected during the join phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinCounters {
    /// Number of binary joins performed.
    pub joins_performed: u64,
    /// Rows produced across all intermediate join results.
    pub intermediate_rows: u64,
    /// Rows discarded because two query vertices mapped to one data vertex.
    pub rows_pruned_injective: u64,
    /// Number of pipeline rounds executed.
    pub pipeline_rounds: u64,
}

impl JoinCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &JoinCounters) {
        self.joins_performed += other.joins_performed;
        self.intermediate_rows += other.intermediate_rows;
        self.rows_pruned_injective += other.rows_pruned_injective;
        self.pipeline_rounds += other.pipeline_rounds;
    }
}

/// Snapshot of the STwig-result cache counters (see [`crate::cache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an *uncacheable* marker (the shape's unbound
    /// exploration exceeded the populate row cap) and fell back to plain
    /// exploration.
    pub bypasses: u64,
    /// Entries stored, including uncacheable markers.
    pub insertions: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Entries lazily evicted (or replaced) because their build epoch went
    /// stale and the touched-label log could not prove them still valid.
    /// Always 0 against a static cloud.
    pub stale_evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently resident (table payloads).
    pub bytes_resident: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups — hits, misses *and* bypasses, so the
    /// rate reflects the true fraction of probes served from cache even when
    /// uncacheable shapes fall back to plain exploration. 0 when the cache
    /// was never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.bypasses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Engine-level counters for a [`crate::engine::QueryEngine`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Queries completed across all batches.
    pub queries_executed: u64,
    /// Batches completed.
    pub batches_executed: u64,
    /// Streamed queries that ended [`QueryOutcome::Cancelled`].
    pub queries_cancelled: u64,
    /// Streamed queries that ended [`QueryOutcome::DeadlineExceeded`].
    pub queries_deadline_exceeded: u64,
    /// Admitted queries shed at dispatch without executing
    /// ([`QueryOutcome::Shed`]). Not counted in `queries_executed`.
    pub queries_shed: u64,
    /// Wall-clock time spent inside `run_batch`, in µs (batches are timed
    /// end to end, so concurrent per-query work is not double-counted).
    pub busy_us: f64,
    /// Completed queries per second of batch wall-clock.
    pub queries_per_sec: f64,
    /// Update batches applied through
    /// [`crate::engine::QueryEngine::apply_updates`] (dynamic engines
    /// only; failed validations are not counted).
    pub updates_applied: u64,
    /// [`crate::engine::QueryEngine::seal_epoch`] calls served.
    pub epochs_sealed: u64,
    /// The current graph epoch of a dynamic engine; `None` for a static
    /// one.
    pub current_epoch: Option<u64>,
    /// Cache counters, when the engine runs with a cache.
    pub cache: Option<CacheStats>,
}

/// Counters of the admission/scheduling layer (see [`crate::serve`]),
/// exported through [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Queries currently queued across all tenants.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` since engine creation.
    pub peak_queue_depth: u64,
    /// Submissions seen by `submit()` (accepted + rejected).
    pub submitted: u64,
    /// Submissions admitted into the queue.
    pub accepted: u64,
    /// Submissions refused with [`crate::serve::RejectReason::QueueFull`].
    pub rejected_queue_full: u64,
    /// Submissions refused with
    /// [`crate::serve::RejectReason::EstimatedTooLate`].
    pub rejected_estimated_late: u64,
    /// Admitted queries shed at dispatch because their deadline had already
    /// passed.
    pub shed_deadline_passed: u64,
    /// Admitted queries shed at dispatch because the calibrated cost model
    /// predicted they could not finish by their deadline.
    pub shed_predicted_late: u64,
    /// Admitted queries cancelled while still queued (resolved
    /// [`QueryOutcome::Cancelled`] with zero execution work).
    pub cancelled_while_queued: u64,
    /// Total µs dispatched queries spent waiting in the queue.
    pub queue_wait_us_total: f64,
    /// Completions the admission cost model has learned from; predictions
    /// gate rejection/shedding only once calibrated (see
    /// [`crate::serve::CostEstimator`]).
    pub estimator_samples: u64,
    /// Admitted queries shed at dispatch because a machine they need sits
    /// behind an open circuit breaker (resolved in O(1), zero transport
    /// work).
    pub shed_machine_down: u64,
    /// Exchange retries across all executed queries.
    pub retries_total: u64,
    /// Exchange timeouts across all executed queries.
    pub timeouts_total: u64,
    /// Duplicate envelope deliveries suppressed across all executed queries.
    pub duplicates_suppressed_total: u64,
    /// Queries that resolved [`QueryOutcome::Partial`] under
    /// `FailurePolicy::Degrade`.
    pub partial_completions: u64,
    /// Circuit-breaker transitions Closed→Open (see
    /// [`crate::serve::BreakerBank`]).
    pub breaker_opened: u64,
    /// Circuit-breaker half-open probe queries allowed through.
    pub breaker_half_open_probes: u64,
    /// Circuit-breaker transitions HalfOpen→Closed (machine recovered).
    pub breaker_closed: u64,
}

impl SchedulerStats {
    /// All submissions refused at admission.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_estimated_late
    }

    /// All admitted queries resolved at dispatch without executing.
    pub fn shed(&self) -> u64 {
        self.shed_deadline_passed + self.shed_predicted_late + self.shed_machine_down
    }

    /// Mean queue wait of dispatched queries, in µs (0 when none).
    pub fn mean_queue_wait_us(&self, dispatched: u64) -> f64 {
        if dispatched == 0 {
            0.0
        } else {
            self.queue_wait_us_total / dispatched as f64
        }
    }
}

/// One coherent export of everything the engine counts: engine-level
/// throughput, admission/scheduling counters, and per-tenant goodput.
/// Obtained from [`crate::engine::QueryEngine::metrics_snapshot`]; all three
/// sections are taken while holding the scheduler lock once, so they agree
/// with each other.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Engine-level counters (queries, batches, cache).
    pub engine: EngineStats,
    /// Admission and scheduling counters.
    pub scheduler: SchedulerStats,
    /// Per-tenant serving counters, sorted by tenant name.
    pub tenants: Vec<crate::serve::TenantStats>,
}

/// Cross-machine traffic of one query broken down by execution phase.
///
/// The totals (`QueryMetrics::network_messages` / `network_bytes`) answer
/// "how much traveled"; this breakdown answers "which part of the algorithm
/// sent it" — exploration (remote cell loads / label probes), binding
/// synchronization between STwigs, and load-set result shipping for the
/// distributed join. For a single query executed serially the three phases
/// sum to the totals; under concurrent multi-query batches the shared
/// counters make per-query attribution best-effort, like every other
/// traffic-derived metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTraffic {
    /// Cross-machine messages sent during STwig exploration.
    pub explore_messages: u64,
    /// Cross-machine bytes sent during STwig exploration.
    pub explore_bytes: u64,
    /// Messages sent synchronizing binding sets between STwigs.
    pub binding_sync_messages: u64,
    /// Bytes sent synchronizing binding sets between STwigs.
    pub binding_sync_bytes: u64,
    /// Messages sent shipping STwig result rows for the join (Theorem 4).
    pub join_ship_messages: u64,
    /// Bytes sent shipping STwig result rows for the join.
    pub join_ship_bytes: u64,
}

impl PhaseTraffic {
    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTraffic) {
        self.explore_messages += other.explore_messages;
        self.explore_bytes += other.explore_bytes;
        self.binding_sync_messages += other.binding_sync_messages;
        self.binding_sync_bytes += other.binding_sync_bytes;
        self.join_ship_messages += other.join_ship_messages;
        self.join_ship_bytes += other.join_ship_bytes;
    }

    /// Total messages across the three phases.
    pub fn total_messages(&self) -> u64 {
        self.explore_messages + self.binding_sync_messages + self.join_ship_messages
    }

    /// Total bytes across the three phases.
    pub fn total_bytes(&self) -> u64 {
        self.explore_bytes + self.binding_sync_bytes + self.join_ship_bytes
    }
}

/// Per-machine accounting of a distributed run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MachineMetrics {
    /// Index of the machine.
    pub machine: u16,
    /// Measured compute time of this machine's exploration + join, in µs.
    pub compute_us: f64,
    /// Simulated communication time charged to this machine, in µs.
    pub comm_us: f64,
    /// STwig result rows this machine produced.
    pub rows_produced: u64,
    /// STwig result rows this machine received from its load sets.
    pub rows_received: u64,
    /// Final matches this machine contributed.
    pub matches_found: u64,
}

/// Full metrics for one query execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Number of STwigs the query was decomposed into.
    pub num_stwigs: usize,
    /// Result-row count per STwig, in processing order.
    pub stwig_rows: Vec<u64>,
    /// Exploration counters.
    pub explore: ExploreCounters,
    /// Join counters.
    pub join: JoinCounters,
    /// Number of final matches produced (possibly truncated by the result limit).
    pub matches_found: u64,
    /// Whether the result limit truncated the output.
    pub truncated: bool,
    /// How the execution ended (complete / cancelled / deadline exceeded).
    pub outcome: QueryOutcome,
    /// Rows delivered through the streaming sink (0 for the materialized
    /// entry points, which return a table instead of streaming).
    pub rows_streamed: u64,
    /// Wall-clock from admission to the first row reaching the sink, in µs.
    /// `None` when no row was ever streamed.
    pub time_to_first_result_us: Option<f64>,
    /// Exploration passes the streaming executor ran: 1 for `All` and for
    /// first-k requests satisfied by the initial slab, +1 per resume (each
    /// resume grows the slab geometrically — 8x). 0 for the materialized
    /// entry points, which do not slab.
    pub explore_rounds: u64,
    /// High-water mark of resident intermediate-table bytes (per-machine
    /// STwig tables during exploration; assembled load-set tables plus the
    /// join output during the join). The number first-k serving bounds.
    pub peak_table_bytes: u64,
    /// Measured wall-clock time of the whole query, in µs.
    pub wall_us: f64,
    /// Simulated time (makespan over machines of compute + communication), in µs.
    pub simulated_us: f64,
    /// Total cross-machine messages.
    pub network_messages: u64,
    /// Total cross-machine bytes.
    pub network_bytes: u64,
    /// Traffic broken down by phase (exploration, binding sync, join
    /// shipping).
    pub phase_traffic: PhaseTraffic,
    /// What the fault-tolerance layer absorbed (retries, timeouts,
    /// suppressed duplicates) and lost (unreachable machines) during this
    /// query. All-zero on a fault-free run.
    pub fault: FaultCounters,
    /// Per-machine breakdown (empty for the single-machine executor).
    pub machines: Vec<MachineMetrics>,
    /// Resident bytes of the cloud the query ran against, broken down by
    /// storage component (adjacency / labels / id map / postings /
    /// signatures / pair table). A property of the cloud, not the query —
    /// attached here so experiment CSVs can report storage next to query
    /// cost without a second accounting path.
    pub storage: Option<StorageBytes>,
}

impl QueryMetrics {
    /// Simulated time in milliseconds (convenience for reporting).
    pub fn simulated_ms(&self) -> f64 {
        self.simulated_us / 1000.0
    }

    /// Measured wall-clock in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_us / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = ExploreCounters {
            roots_scanned: 1,
            cells_loaded: 2,
            label_probes: 3,
            rows_emitted: 4,
            rows_pruned_by_bindings: 5,
            roots_pruned: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.roots_scanned, 2);
        assert_eq!(a.rows_pruned_by_bindings, 10);
        assert_eq!(a.roots_pruned, 12);

        let mut j = JoinCounters {
            joins_performed: 1,
            intermediate_rows: 10,
            rows_pruned_injective: 2,
            pipeline_rounds: 1,
        };
        j.merge(&j.clone());
        assert_eq!(j.joins_performed, 2);
        assert_eq!(j.intermediate_rows, 20);
    }

    #[test]
    fn phase_traffic_merges_and_totals() {
        let mut a = PhaseTraffic {
            explore_messages: 1,
            explore_bytes: 10,
            binding_sync_messages: 2,
            binding_sync_bytes: 20,
            join_ship_messages: 3,
            join_ship_bytes: 30,
        };
        a.merge(&a.clone());
        assert_eq!(a.total_messages(), 12);
        assert_eq!(a.total_bytes(), 120);
        assert_eq!(a.explore_bytes, 20);
        assert_eq!(a.join_ship_messages, 6);
    }

    #[test]
    fn outcome_defaults_to_complete() {
        let m = QueryMetrics::default();
        assert_eq!(m.outcome, QueryOutcome::Complete);
        assert!(!m.outcome.is_interrupted());
        assert!(QueryOutcome::Cancelled.is_interrupted());
        assert!(QueryOutcome::DeadlineExceeded.is_interrupted());
        assert_eq!(m.rows_streamed, 0);
        assert_eq!(m.time_to_first_result_us, None);
    }

    #[test]
    fn fault_counters_merge_union_and_coverage() {
        let mut a = FaultCounters {
            retries: 2,
            timeouts: 1,
            transient_errors: 1,
            duplicates_suppressed: 3,
            machines_lost: vec![2],
        };
        let b = FaultCounters {
            retries: 1,
            machines_lost: vec![0, 2],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.machines_lost, vec![0, 2], "lost set unions sorted");
        a.record_lost(2);
        assert_eq!(a.machines_lost.len(), 2, "record_lost is idempotent");
        assert!((a.coverage(4) - 0.5).abs() < 1e-12);
        assert!((FaultCounters::default().coverage(4) - 1.0).abs() < 1e-12);
        assert!(a.any());
        assert!(!FaultCounters::default().any());
        assert!(QueryOutcome::Partial.is_interrupted());
    }

    #[test]
    fn metric_unit_conversions() {
        let m = QueryMetrics {
            wall_us: 2500.0,
            simulated_us: 1500.0,
            ..Default::default()
        };
        assert!((m.wall_ms() - 2.5).abs() < 1e-9);
        assert!((m.simulated_ms() - 1.5).abs() < 1e-9);
    }
}
