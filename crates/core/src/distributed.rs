//! Distributed, parallel subgraph matching (§4.3).
//!
//! Execution model (one logical *machine* per graph partition):
//!
//! 1. The proxy decomposes the query and orders the STwigs (Algorithm 2),
//!    builds the query-specific cluster graph, selects the head STwig and
//!    computes per-machine load sets (§5.3). This happens once, centrally.
//! 2. **Exploration.** Every machine matches each STwig in order with root
//!    candidates restricted to *locally-owned* vertices (`Index.getID` is a
//!    local index). After each STwig, binding sets are synchronized across
//!    machines (a broadcast whose volume is charged to the simulated
//!    network). Ownership-restricted roots keep per-machine result sets
//!    disjoint by root and make Theorem 4's load sets sound; global binding
//!    synchronization keeps the pruning lossless. This is the substitution we
//!    document in DESIGN.md for the paper's informally-specified binding
//!    exchange.
//! 3. **Join.** Every machine fetches, for each non-head STwig, the partial
//!    results of the machines in its load set (Theorem 4), unions them with
//!    its own, and runs the pipelined join locally. Because head-STwig
//!    results are never fetched remotely and the graph is disjointly
//!    partitioned, per-machine answers are disjoint and the final union needs
//!    no deduplication.
//!
//! The simulated time of the run is the makespan over machines of
//! (measured per-machine compute time + simulated communication time).
//!
//! **Transport modes.** Under [`TransportMode::DirectRead`] a machine may
//! dereference remote partitions in place (the legacy simulation shortcut;
//! traffic is a per-access estimate). Under [`TransportMode::Messages`] every
//! machine is strictly partition-local: exploration runs frontier/superstep
//! style over a [`trinity_sim::transport::Transport`] (batched `Load`
//! requests → owned cell replies), binding synchronization posts
//! `BindingDelta` messages, the join phase ships load-set tables as
//! `JoinRows` messages, and single-vertex queries gather postings with
//! `GetIds` exchanges. Result tables and `matches_found` are bit-identical
//! across modes (swept by `tests/parallel_equality.rs` and the VF2
//! differential); only the traffic recorded on the simulated network — now
//! the envelopes actually sent — differs, and `Messages` performs **zero**
//! direct cross-partition reads (`MemoryCloud::direct_remote_reads`).
//!
//! **Threading model.** Logical machines really run in parallel: each
//! machine's exploration step (per STwig) and its load-set join step are work
//! items fanned out over `MatchConfig::num_threads` worker threads via
//! [`std::thread::scope`], with dynamic work-stealing over the machine list.
//! Binding synchronization stays a barrier between STwigs, as the algorithm
//! requires. Per-machine counters and tables are produced thread-locally and
//! merged on the coordinating thread in machine order, so results and
//! metrics totals are identical for every thread count — `num_threads = 1`
//! reproduces the serial execution bit-for-bit. See DESIGN.md for the full
//! determinism argument.
//!
//! **Split API.** The execution is factored into two public phases so that
//! the multi-query [`crate::engine::QueryEngine`] and the single-query entry
//! point share one code path: [`produce_stwig_tables`] runs exploration with
//! binding synchronization (optionally consulting a [`StwigCache`], which is
//! transparent — a hit yields tables bit-identical to exploration), and
//! [`join_stwig_tables`] runs the per-machine load-set joins and the final
//! union. [`match_query_distributed`] is the composition with no cache.

use crate::bindings::Bindings;
use crate::cache::{
    apply_bindings_and_cap, canonicalize_table, derive_bound_table, CacheLookup, StwigCache,
    StwigShape,
};
use crate::config::{FailurePolicy, MatchConfig, TransportMode};
use crate::decompose::{decompose_ordered, PairAwareStats};
use crate::error::StwigError;
use crate::executor::MatchOutput;
use crate::head::{load_set, select_head, HeadSelection};
use crate::matcher::{match_stwig, match_stwig_batched};
use crate::metrics::{
    ExploreCounters, FaultCounters, JoinCounters, MachineMetrics, QueryMetrics, QueryOutcome,
};
use crate::pipeline::{pipelined_join_streaming, pipelined_join_with_priors, RoundSink};
use crate::query::{QVid, QueryGraph};
use crate::retry::{retry_exchange, ExchangeOutcome};
use crate::stream::{Interrupt, QueryControl, QueryOptions, ResultSink};
use crate::stwig::STwig;
use crate::table::ResultTable;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use trinity_sim::cluster_graph::ClusterGraph;
use trinity_sim::fault::FaultyTransport;
use trinity_sim::ids::{MachineId, VertexId};
use trinity_sim::network::TrafficSnapshot;
use trinity_sim::transport::{ChannelTransport, Message, Transport, TransportError};
use trinity_sim::MemoryCloud;

/// Test-only transport fault injection.
///
/// Poisoning a `(cloud, label)` pair makes every distributed execution whose
/// query touches that label on that cloud fail up front with
/// [`StwigError::Transport`] ([`TransportError::UnexpectedReply`]) — as if a
/// peer machine had answered a `Load` request with a lying reply variant —
/// *before* any exploration work. The poison is scoped by an RAII guard so a
/// panicking test cannot leak it into the rest of the suite, and keyed by
/// cloud address so concurrent tests on different clouds don't interfere.
///
/// This exists to pin engine-level error isolation: one query's transport
/// failure must surface on that query's handle only, never conflated across
/// a batch.
#[cfg(test)]
pub(crate) mod fault {
    use std::collections::HashSet;
    use std::sync::Mutex;
    use trinity_sim::ids::LabelId;
    use trinity_sim::MemoryCloud;

    static POISON: Mutex<Option<HashSet<(usize, LabelId)>>> = Mutex::new(None);

    /// Removes its poison entry on drop (RAII).
    pub(crate) struct PoisonGuard {
        key: (usize, LabelId),
    }

    impl Drop for PoisonGuard {
        fn drop(&mut self) {
            if let Some(set) = POISON.lock().expect("poison lock").as_mut() {
                set.remove(&self.key);
            }
        }
    }

    /// Poisons `label` on `cloud` until the returned guard drops.
    pub(crate) fn poison(cloud: &MemoryCloud, label: LabelId) -> PoisonGuard {
        let key = (cloud as *const MemoryCloud as usize, label);
        POISON
            .lock()
            .expect("poison lock")
            .get_or_insert_with(HashSet::new)
            .insert(key);
        PoisonGuard { key }
    }

    /// Whether `query` touches a poisoned label of `cloud`.
    pub(crate) fn poisoned(cloud: &MemoryCloud, query: &crate::query::QueryGraph) -> bool {
        let guard = POISON.lock().expect("poison lock");
        let Some(set) = guard.as_ref() else {
            return false;
        };
        if set.is_empty() {
            return false;
        }
        let ptr = cloud as *const MemoryCloud as usize;
        query
            .vertices()
            .any(|v| set.contains(&(ptr, query.label(v))))
    }

    /// The error a poisoned execution fails with.
    pub(crate) fn injected_error() -> crate::error::StwigError {
        crate::error::StwigError::Transport(
            trinity_sim::transport::TransportError::UnexpectedReply {
                expected: "CellBuf",
                got: "Poisoned",
            },
        )
    }
}

/// Runs `work` once per index in `0..num_items`, fanning the items out over
/// `threads` worker threads with dynamic work-stealing (an atomic cursor over
/// the item list, so unevenly-sized items balance). Results are returned in
/// item order regardless of scheduling, which is what lets callers merge
/// them deterministically. `threads <= 1` runs inline on the calling thread —
/// the exact serial execution.
///
/// Used at machine granularity by this module and at query granularity by
/// the [`crate::engine::QueryEngine`] worker pool.
///
/// A panic on any worker propagates to the caller.
pub(crate) fn run_work_stealing<R, F>(num_items: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || num_items <= 1 {
        return (0..num_items).map(work).collect();
    }
    let workers = threads.min(num_items);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(num_items);
    slots.resize_with(num_items, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let work = &work;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= num_items {
                            break;
                        }
                        done.push((i, work(i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was processed"))
        .collect()
}

/// The per-query transport stack of `Messages` mode: a [`ChannelTransport`]
/// carrying the config's per-exchange timeout, wrapped in a
/// [`FaultyTransport`] when a fault plan is armed
/// (`MatchConfig::fault_plan`, usually via `STWIG_FAULT_PLAN`). The wrapper
/// is an enum rather than a boxed trait object so the fault-free path stays
/// allocation-free.
enum QueryTransport<'c> {
    /// Fault-free mailboxes.
    Plain(ChannelTransport<'c>),
    /// Seeded fault injection around the mailboxes (boxed: the fault
    /// machinery dwarfs the plain variant, and this path already pays for
    /// injected delays).
    Faulty(Box<FaultyTransport<ChannelTransport<'c>>>),
}

impl<'c> QueryTransport<'c> {
    fn for_config(cloud: &'c MemoryCloud, config: &MatchConfig) -> Self {
        let mut tp = ChannelTransport::new(cloud);
        if let Some(timeout) = config.retry.timeout() {
            tp = tp.with_exchange_timeout(timeout);
        }
        match &config.fault_plan {
            Some(plan) => QueryTransport::Faulty(Box::new(FaultyTransport::new(tp, plan.clone()))),
            None => QueryTransport::Plain(tp),
        }
    }

    /// Drain-side duplicate deliveries suppressed so far (exactly-once
    /// accounting, harvested into `QueryMetrics::fault` per phase).
    fn duplicates_suppressed(&self) -> u64 {
        match self {
            QueryTransport::Plain(tp) => tp.duplicates_suppressed(),
            QueryTransport::Faulty(tp) => tp.inner().duplicates_suppressed(),
        }
    }
}

impl Transport for QueryTransport<'_> {
    fn exchange(
        &self,
        src: MachineId,
        dst: MachineId,
        msg: Message,
    ) -> Result<Message, TransportError> {
        match self {
            QueryTransport::Plain(tp) => tp.exchange(src, dst, msg),
            QueryTransport::Faulty(tp) => tp.exchange(src, dst, msg),
        }
    }

    fn alloc_seq(&self, src: MachineId, dst: MachineId) -> u64 {
        match self {
            QueryTransport::Plain(tp) => tp.alloc_seq(src, dst),
            QueryTransport::Faulty(tp) => tp.alloc_seq(src, dst),
        }
    }

    fn post_envelope(&self, dst: MachineId, env: trinity_sim::transport::Envelope) {
        match self {
            QueryTransport::Plain(tp) => tp.post_envelope(dst, env),
            QueryTransport::Faulty(tp) => tp.post_envelope(dst, env),
        }
    }

    fn drain(&self, dst: MachineId) -> Vec<trinity_sim::transport::Envelope> {
        match self {
            QueryTransport::Plain(tp) => tp.drain(dst),
            QueryTransport::Faulty(tp) => tp.drain(dst),
        }
    }
}

/// Per-machine output of one exploration step.
struct MachineExplore {
    table: ResultTable,
    counters: ExploreCounters,
    faults: FaultCounters,
    compute_us: f64,
}

/// Per-machine output of the load-set join step.
struct MachineJoin {
    /// `None` when the machine had no head-STwig results (it contributes
    /// nothing, per §5.3).
    joined: Option<ResultTable>,
    counters: JoinCounters,
    compute_us: f64,
    rows_received: u64,
    /// Bytes resident on this machine during its join (assembled R_k tables
    /// plus the join output) — feeds `QueryMetrics::peak_table_bytes`.
    table_bytes: u64,
}

/// The centrally-computed query plan broadcast to every machine.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Ordered STwig decomposition (Algorithm 2).
    pub stwigs: Vec<STwig>,
    /// The query-specific cluster graph.
    pub cluster: ClusterGraph,
    /// Head STwig selection and root distances.
    pub head: HeadSelection,
}

/// Builds the query plan: decomposition + ordering, cluster graph, head
/// STwig and the data needed for load sets. Statistics-wise this is the
/// frequency-only paper behaviour; [`plan_query_with_config`] upgrades to
/// label-pair-aware decomposition when pruning is enabled.
pub fn plan_query(cloud: &MemoryCloud, query: &QueryGraph) -> Result<QueryPlan, StwigError> {
    plan_query_with_config(cloud, query, &MatchConfig::default())
}

/// [`plan_query`] with the config in hand: when `config.pruning` is on, the
/// decomposition scores edges with the partition-level label-pair tables
/// ([`PairAwareStats`]) built alongside the neighbor signatures, so rare
/// label pairs anchor the STwig cover.
pub fn plan_query_with_config(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    config: &MatchConfig,
) -> Result<QueryPlan, StwigError> {
    let stwigs = if config.pruning {
        decompose_ordered(query, &PairAwareStats(cloud))?
    } else {
        decompose_ordered(query, cloud)?
    };
    let cluster = ClusterGraph::build(cloud.catalog(), &query.label_edges());
    if stwigs.is_empty() {
        return Err(StwigError::Internal(
            "plan_query requires a query with at least one edge".into(),
        ));
    }
    let head = select_head(query, &stwigs, &cluster);
    Ok(QueryPlan {
        stwigs,
        cluster,
        head,
    })
}

/// Runs a subgraph query with every logical machine participating, as in
/// §4.3. Returns the union of per-machine results (disjoint by construction)
/// plus per-machine metrics and the simulated makespan.
pub fn match_query_distributed(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    config: &MatchConfig,
) -> Result<MatchOutput, StwigError> {
    match_query_distributed_with_cache(cloud, query, config, None)
}

/// [`match_query_distributed`] with an optional cross-query [`StwigCache`].
///
/// The cache is transparent: for every STwig, the per-machine tables fed
/// into the join are bit-identical to what exploration would produce, so the
/// result table — including row order and truncation behavior — is
/// independent of the cache's presence and state. Only exploration-side
/// counters and simulated traffic differ (a hit performs no graph accesses).
pub fn match_query_distributed_with_cache(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    config: &MatchConfig,
    cache: Option<&StwigCache>,
) -> Result<MatchOutput, StwigError> {
    #[cfg(test)]
    if fault::poisoned(cloud, query) {
        return Err(fault::injected_error());
    }
    let started = Instant::now();
    cloud.reset_traffic();
    let num_machines = cloud.num_machines();
    let mut metrics = QueryMetrics {
        storage: Some(cloud.storage_bytes()),
        ..QueryMetrics::default()
    };
    let mut machine_metrics: Vec<MachineMetrics> = (0..num_machines)
        .map(|k| MachineMetrics {
            machine: k as u16,
            ..Default::default()
        })
        .collect();
    if let Some(cache) = cache {
        if !cache.matches_cloud(cloud) {
            return Err(StwigError::Internal(
                "STwig cache was built for a different memory cloud".into(),
            ));
        }
    }

    // Single-vertex queries: a per-machine label scan. In `Messages` mode
    // the proxy (machine 0) gathers every other machine's postings with one
    // `GetIds` exchange each instead of reading their string indexes in
    // place; the table is identical (postings in machine order).
    if query.num_edges() == 0 {
        let v0 = query.vertices().next().ok_or(StwigError::EmptyQuery)?;
        let label = query.label(v0);
        let mut table = ResultTable::new(vec![v0]);
        if config.transport_mode == TransportMode::Messages {
            // The posting gather is the query's whole exploration; attribute
            // its envelopes to the explore phase so the breakdown still
            // partitions the totals.
            let before = cloud.traffic();
            let transport = QueryTransport::for_config(cloud, config);
            let proxy = MachineId(0);
            for k in cloud.machines() {
                if k == proxy {
                    for id in cloud.get_ids(k, label) {
                        table.push_row(&[id]);
                    }
                    continue;
                }
                if let Some(ids) = remote_postings(
                    &transport,
                    config,
                    proxy,
                    k,
                    label,
                    None,
                    &mut metrics.fault,
                )? {
                    for id in ids {
                        table.push_row(&[id]);
                    }
                }
            }
            metrics.fault.duplicates_suppressed += transport.duplicates_suppressed();
            let after = cloud.traffic();
            record_phase(
                &before,
                &after,
                &mut metrics.phase_traffic.explore_messages,
                &mut metrics.phase_traffic.explore_bytes,
            );
        } else {
            for k in cloud.machines() {
                for id in cloud.get_ids(k, label) {
                    table.push_row(&[id]);
                }
            }
        }
        if let Some(limit) = config.result_limit() {
            if table.num_rows() > limit {
                metrics.truncated = true;
            }
            table.truncate(limit);
        }
        metrics.matches_found = table.num_rows() as u64;
        metrics.machines = machine_metrics;
        if !metrics.fault.machines_lost.is_empty() {
            metrics.outcome = QueryOutcome::Partial;
        }
        finalize(&mut metrics, cloud, started);
        return Ok(MatchOutput { table, metrics });
    }

    // ---- 1. Planning (proxy side) ----
    let plan = plan_query_with_config(cloud, query, config)?;
    metrics.num_stwigs = plan.stwigs.len();

    // ---- 2 + 3. Exploration, then per-machine joins ----
    let tables = produce_stwig_tables(
        cloud,
        query,
        &plan,
        config,
        cache,
        None,
        &mut metrics,
        &mut machine_metrics,
    )?;
    let table = match tables {
        // Some STwig matched nowhere: the query provably has no answer.
        None => ResultTable::new(query.vertices().collect()),
        Some(tables) => join_stwig_tables(
            cloud,
            query,
            &plan,
            &tables,
            config,
            &mut metrics,
            &mut machine_metrics,
        )?,
    };
    metrics.matches_found = table.num_rows() as u64;
    metrics.machines = machine_metrics;
    if !metrics.fault.machines_lost.is_empty() {
        // Every delivered row is join-verified; rows needing a lost machine
        // are simply absent (see `FailurePolicy::Degrade`).
        metrics.outcome = QueryOutcome::Partial;
    }
    finalize(&mut metrics, cloud, started);
    Ok(MatchOutput { table, metrics })
}

/// The per-machine STwig result tables of the exploration phase:
/// `per_machine[k][t]` is G_k(q_t), machine `k`'s matches of STwig `t`.
#[derive(Debug, Clone)]
pub struct StwigTableSet {
    /// Outer index: machine; inner index: STwig (in plan order).
    pub per_machine: Vec<Vec<ResultTable>>,
}

/// Phase 1 of the distributed execution: every machine matches every STwig
/// in plan order with binding synchronization between STwigs (§4.2/§4.3),
/// optionally consulting a cross-query [`StwigCache`].
///
/// Returns `Ok(None)` when some STwig matched nowhere, which proves the
/// query has no answer (exploration counters and the partial `stwig_rows`
/// are still recorded in `metrics`) — **unless** a `control` interrupt is
/// pending, in which case an empty table may simply mean exploration was
/// cut short; streaming callers check `control` before trusting the `None`.
///
/// `control` is the per-query deadline/cancellation handle: it is checked at
/// every superstep flush inside exploration and at every STwig barrier, and
/// a pending interrupt makes this phase return early with whatever tables it
/// completed. Pass `None` (the materialized entry points do) for the exact
/// legacy behavior.
#[allow(clippy::too_many_arguments)]
pub fn produce_stwig_tables(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    plan: &QueryPlan,
    config: &MatchConfig,
    cache: Option<&StwigCache>,
    control: Option<&QueryControl>,
    metrics: &mut QueryMetrics,
    machine_metrics: &mut [MachineMetrics],
) -> Result<Option<StwigTableSet>, StwigError> {
    if let Some(cache) = cache {
        // Guard here too, not only in the composed entry point: this phase
        // is public, and a foreign cache would serve another cloud's tables.
        if !cache.matches_cloud(cloud) {
            return Err(StwigError::Internal(
                "STwig cache was built for a different memory cloud".into(),
            ));
        }
    }
    let num_machines = cloud.num_machines();
    let threads = config.resolved_num_threads();
    // In `Messages` mode all exploration-phase communication — batched cell
    // loads and binding deltas — travels over this transport; machines never
    // dereference each other's partitions.
    let transport = (config.transport_mode == TransportMode::Messages)
        .then(|| QueryTransport::for_config(cloud, config));
    let mut per_machine_tables: Vec<Vec<ResultTable>> =
        vec![Vec::with_capacity(plan.stwigs.len()); num_machines];
    let mut bindings = Bindings::new(query.num_vertices());
    let mut explore = ExploreCounters::default();

    // A binding set is only ever read while exploring a *later* STwig, so
    // vertices that never appear again need no set built (and no broadcast):
    // `needed_after[t]` is the union of the vertices of stwigs t+1.. — for
    // the last STwig the whole synchronization barrier is skipped.
    let mut needed_after: Vec<HashSet<crate::query::QVid>> =
        vec![HashSet::new(); plan.stwigs.len()];
    for t in (0..plan.stwigs.len().saturating_sub(1)).rev() {
        let mut needed = needed_after[t + 1].clone();
        needed.extend(plan.stwigs[t + 1].vertices());
        needed_after[t] = needed;
    }

    for (t, stwig) in plan.stwigs.iter().enumerate() {
        // Cooperative check at the STwig barrier: an interrupted query stops
        // producing tables (the caller decides what to do with the partial
        // set).
        if control.is_some_and(QueryControl::interrupted) {
            metrics.explore = explore;
            if let Some(tp) = &transport {
                metrics.fault.duplicates_suppressed += tp.duplicates_suppressed();
            }
            return Ok(Some(StwigTableSet {
                per_machine: per_machine_tables,
            }));
        }
        // Every machine produces this STwig's table in parallel against the
        // bindings snapshot from the previous barrier — by exploration, or
        // from the cache when one is supplied; counters and tables come back
        // thread-locally and are merged in machine order.
        let before_explore = cloud.traffic();
        let results = explore_one_stwig(
            cloud,
            transport.as_ref(),
            query,
            stwig,
            &bindings,
            config,
            cache,
            control,
            threads,
        )?;
        let after_explore = cloud.traffic();
        record_phase(
            &before_explore,
            &after_explore,
            &mut metrics.phase_traffic.explore_messages,
            &mut metrics.phase_traffic.explore_bytes,
        );
        let mut new_tables: Vec<ResultTable> = Vec::with_capacity(num_machines);
        for (ki, result) in results.into_iter().enumerate() {
            explore.merge(&result.counters);
            metrics.fault.merge(&result.faults);
            let mm = &mut machine_metrics[ki];
            mm.compute_us += result.compute_us;
            mm.rows_produced += result.table.num_rows() as u64;
            new_tables.push(result.table);
        }

        // Synchronize bindings (barrier): the global binding of each STwig
        // vertex that a later STwig will read is the union of what every
        // machine discovered, intersected (by `bind`) with what previous
        // STwigs already established for shared vertices.
        let synced_cols: Vec<crate::query::QVid> = if config.use_bindings {
            stwig_vertices(stwig)
                .into_iter()
                .filter(|v| needed_after[t].contains(v))
                .collect()
        } else {
            Vec::new()
        };
        if !synced_cols.is_empty() {
            match &transport {
                // `Messages`: every machine posts one `BindingDelta` — its
                // *distinct* newly-discovered values per synced column — to
                // every other machine, and the union is assembled from
                // machine 0's view (its own delta plus its inbox). Every
                // machine's view is the same union; building it once keeps
                // the in-process run cheap without changing what traveled.
                Some(tp) => {
                    let deltas: Vec<Vec<(u16, Vec<VertexId>)>> = new_tables
                        .iter()
                        .map(|table| {
                            synced_cols
                                .iter()
                                .map(|&col| {
                                    let mut vals: Vec<VertexId> = if table.columns().contains(&col)
                                    {
                                        table.distinct_values(col).into_iter().collect()
                                    } else {
                                        Vec::new()
                                    };
                                    // Sorted payloads make the envelope
                                    // deterministic byte for byte.
                                    vals.sort_unstable();
                                    (col.0, vals)
                                })
                                .collect()
                        })
                        .collect();
                    for (k, cols) in deltas.iter().enumerate() {
                        for j in cloud.machines() {
                            if j.index() != k {
                                tp.post(
                                    MachineId(k as u16),
                                    j,
                                    Message::BindingDelta { cols: cols.clone() },
                                );
                            }
                        }
                    }
                    // Drain every mailbox (each machine consumes its inbox);
                    // machine 0's is the one we materialize the union from.
                    // The union is a set, so fault-injected reordering of
                    // the deltas cannot change it; duplicates were already
                    // suppressed by the drain-side dedup.
                    let inboxes: Vec<Vec<trinity_sim::transport::Envelope>> =
                        cloud.machines().map(|m| tp.drain(m)).collect();
                    for (ci, &col) in synced_cols.iter().enumerate() {
                        let mut set = crate::hash::VertexSet::default();
                        set.extend(deltas[0][ci].1.iter().copied());
                        for env in &inboxes[0] {
                            let msg = &env.msg;
                            let Message::BindingDelta { cols } = msg else {
                                // A malformed peer degrades this query only.
                                return Err(StwigError::Transport(
                                    TransportError::UnexpectedMessage {
                                        phase: "binding sync",
                                        got: msg.kind(),
                                    },
                                ));
                            };
                            let Some((_, vals)) = cols.get(ci) else {
                                return Err(StwigError::Transport(
                                    TransportError::MalformedPayload {
                                        detail: format!(
                                            "binding delta carries {} columns, expected {}",
                                            cols.len(),
                                            synced_cols.len()
                                        ),
                                    },
                                ));
                            };
                            set.extend(vals.iter().copied());
                        }
                        bindings.bind(col, set);
                    }
                }
                // `DirectRead`: fill the union set per vertex directly,
                // machine by machine in machine order, and charge the
                // broadcast as a per-entry estimate (each machine ships its
                // newly-discovered entries to every other machine).
                None => {
                    for &col in &synced_cols {
                        let mut set = crate::hash::VertexSet::default();
                        for table in new_tables.iter() {
                            if let Some(ci) = table.columns().iter().position(|&c| c == col) {
                                set.extend(table.rows().map(|r| r[ci]));
                            }
                        }
                        bindings.bind(col, set);
                    }
                    for (k, table) in new_tables.iter().enumerate() {
                        let entries = table.num_rows() as u64 * synced_cols.len() as u64;
                        for j in cloud.machines() {
                            if j.index() != k {
                                cloud.ship_rows(MachineId(k as u16), j, entries, 1);
                            }
                        }
                    }
                }
            }
        }
        let after_sync = cloud.traffic();
        record_phase(
            &after_explore,
            &after_sync,
            &mut metrics.phase_traffic.binding_sync_messages,
            &mut metrics.phase_traffic.binding_sync_bytes,
        );

        let total_rows: usize = new_tables.iter().map(|t| t.num_rows()).sum();
        metrics.stwig_rows.push(total_rows as u64);
        for (k, table) in new_tables.into_iter().enumerate() {
            per_machine_tables[k].push(table);
        }
        let resident: u64 = per_machine_tables
            .iter()
            .flatten()
            .map(|t| t.memory_bytes() as u64)
            .sum();
        metrics.peak_table_bytes = metrics.peak_table_bytes.max(resident);
        if total_rows == 0 {
            // No machine found a match for this STwig: the query has no answer.
            metrics.explore = explore;
            if let Some(tp) = &transport {
                metrics.fault.duplicates_suppressed += tp.duplicates_suppressed();
            }
            return Ok(None);
        }
    }
    metrics.explore = explore;
    if let Some(tp) = &transport {
        metrics.fault.duplicates_suppressed += tp.duplicates_suppressed();
    }
    Ok(Some(StwigTableSet {
        per_machine: per_machine_tables,
    }))
}

/// Accumulates the traffic-total delta between two snapshots into a phase's
/// message/byte counters. Saturating: under concurrent multi-query batches
/// another query may reset the shared counters mid-phase, in which case the
/// attribution is best-effort (like every traffic-derived per-query metric).
fn record_phase(
    before: &TrafficSnapshot,
    after: &TrafficSnapshot,
    messages: &mut u64,
    bytes: &mut u64,
) {
    *messages += after
        .total_messages()
        .saturating_sub(before.total_messages());
    *bytes += after.total_bytes().saturating_sub(before.total_bytes());
}

/// One machine's bound exploration of one STwig, dispatched on the transport
/// mode: partition-local batched matching over the transport when one is in
/// play, the direct-read matcher otherwise. Both emit bit-identical tables
/// and counters. Only the transport path can fail (protocol violations).
#[allow(clippy::too_many_arguments)]
fn explore_machine(
    cloud: &MemoryCloud,
    transport: Option<&QueryTransport<'_>>,
    k: MachineId,
    query: &QueryGraph,
    stwig: &STwig,
    roots: &[VertexId],
    bindings: &Bindings,
    config: &MatchConfig,
    control: Option<&QueryControl>,
    counters: &mut ExploreCounters,
    faults: &mut FaultCounters,
) -> Result<ResultTable, StwigError> {
    match transport {
        Some(tp) => match_stwig_batched(
            cloud, tp, k, query, stwig, roots, bindings, config, control, counters, faults,
        ),
        None => Ok(match_stwig(
            cloud, k, query, stwig, roots, bindings, config, control, counters,
        )),
    }
}

/// Produces one STwig's per-machine tables: from the cache when it holds the
/// canonical shape, by cache-populating unbound exploration on a miss, or by
/// plain bound exploration when no cache is in play (or the populate row cap
/// was hit). All three paths return bit-identical tables — see
/// [`crate::cache`] for the argument.
#[allow(clippy::too_many_arguments)]
fn explore_one_stwig(
    cloud: &MemoryCloud,
    transport: Option<&QueryTransport<'_>>,
    query: &QueryGraph,
    stwig: &STwig,
    bindings: &Bindings,
    config: &MatchConfig,
    cache: Option<&StwigCache>,
    control: Option<&QueryControl>,
    threads: usize,
) -> Result<Vec<MachineExplore>, StwigError> {
    let num_machines = cloud.num_machines();
    if let Some(cache) = cache {
        let shape = StwigShape::of(query, stwig, config.pruning);
        match cache.lookup(&shape, cloud) {
            CacheLookup::Hit(entry) => {
                // Hit: derive each machine's exploration table from the
                // canonical entry under the current bindings and row cap
                // (one fused pass; see `derive_bound_table`).
                return Ok(run_work_stealing(num_machines, threads, |ki| {
                    let t0 = Instant::now();
                    let table = derive_bound_table(&entry[ki], query, stwig, bindings, config);
                    MachineExplore {
                        table,
                        counters: ExploreCounters::default(),
                        faults: FaultCounters::default(),
                        compute_us: t0.elapsed().as_secs_f64() * 1e6,
                    }
                }));
            }
            CacheLookup::Bypass => {
                // Known-uncacheable shape: go straight to bound exploration.
            }
            CacheLookup::Miss => {
                // Explore unbound and untruncated (up to the populate row
                // cap), so the result is reusable under any binding context.
                let populate_cfg = MatchConfig {
                    max_stwig_rows: cache.populate_row_cap(),
                    ..config.clone()
                };
                let unbound_bindings = Bindings::new(query.num_vertices());
                let unbound = collect_explore_results(
                    run_work_stealing(num_machines, threads, |ki| {
                        let k = MachineId(ki as u16);
                        let t0 = Instant::now();
                        let roots = cloud.get_ids(k, query.label(stwig.root)).to_vec();
                        let mut counters = ExploreCounters::default();
                        let mut faults = FaultCounters::default();
                        let table = explore_machine(
                            cloud,
                            transport,
                            k,
                            query,
                            stwig,
                            &roots,
                            &unbound_bindings,
                            &populate_cfg,
                            control,
                            &mut counters,
                            &mut faults,
                        )?;
                        Ok(MachineExplore {
                            table,
                            counters,
                            faults,
                            compute_us: t0.elapsed().as_secs_f64() * 1e6,
                        })
                    }),
                    stwig,
                    config,
                )?;
                // An interrupted populate run may hold truncated tables; do
                // not let them into the cache (or stand in for bound
                // exploration below) — fall through to plain exploration,
                // which the interrupt will also cut short, and let the
                // caller abort.
                let interrupted = control.is_some_and(QueryControl::interrupted);
                let capped = cache
                    .populate_row_cap()
                    .is_some_and(|cap| unbound.iter().any(|r| r.table.num_rows() >= cap));
                // A populate run that lost a machine holds *degraded* tables
                // — sound for this query under `Degrade`, but poison for the
                // cache, which must only ever hold fault-free exploration
                // output. Use them once, cache nothing.
                let degraded = unbound.iter().any(|r| !r.faults.machines_lost.is_empty());
                if !capped && !interrupted {
                    if !degraded {
                        let canonical: Vec<ResultTable> = unbound
                            .iter()
                            .map(|r| canonicalize_table(&r.table, query, stwig))
                            .collect();
                        cache.insert(shape, canonical, cloud);
                    }
                    // Derive this query's tables from the full unbound
                    // tables — the exact derivation a future hit performs.
                    return Ok(unbound
                        .into_iter()
                        .map(|mut r| {
                            let t0 = Instant::now();
                            r.table = apply_bindings_and_cap(r.table, bindings, config);
                            r.compute_us += t0.elapsed().as_secs_f64() * 1e6;
                            r
                        })
                        .collect());
                }
                if capped && !interrupted {
                    // The unbound exploration hit the populate cap (a
                    // potentially pathological cross product): remember the
                    // shape as uncacheable so future queries skip the
                    // populate attempt entirely — unless a lost machine may
                    // have shrunk the tables, in which case the verdict
                    // isn't trustworthy.
                    if !degraded {
                        cache.mark_uncacheable(shape, cloud);
                    }
                    // When nothing distinguishes this run from bound
                    // exploration — no binding constrains the STwig's
                    // vertices and the config's own row cap matches the
                    // populate cap — the capped result *is* the bound
                    // exploration output; reuse it instead of exploring
                    // again.
                    let bindings_unused =
                        !config.use_bindings || stwig.vertices().all(|v| bindings.get(v).is_none());
                    if bindings_unused && config.max_stwig_rows == cache.populate_row_cap() {
                        return Ok(unbound);
                    }
                }
                // Otherwise fall through to plain bound exploration.
            }
        }
    }
    collect_explore_results(
        run_work_stealing(num_machines, threads, |ki| {
            let k = MachineId(ki as u16);
            let t0 = Instant::now();
            let roots = local_roots(cloud, k, query, stwig, bindings, config);
            let mut counters = ExploreCounters::default();
            let mut faults = FaultCounters::default();
            let table = explore_machine(
                cloud,
                transport,
                k,
                query,
                stwig,
                &roots,
                bindings,
                config,
                control,
                &mut counters,
                &mut faults,
            )?;
            Ok(MachineExplore {
                table,
                counters,
                faults,
                compute_us: t0.elapsed().as_secs_f64() * 1e6,
            })
        }),
        stwig,
        config,
    )
}

/// Collapses per-machine exploration results: the first transport error (in
/// machine order, for determinism) fails the query.
///
/// Under [`FailurePolicy::Degrade`] an item that failed whole-machine with
/// [`StwigError::MachineUnavailable`] is replaced by an empty table with the
/// STwig's columns (so the join schema stays intact) and the machine is
/// recorded lost — the safety net behind the chunk-level degradation inside
/// the matcher.
fn collect_explore_results(
    results: Vec<Result<MachineExplore, StwigError>>,
    stwig: &STwig,
    config: &MatchConfig,
) -> Result<Vec<MachineExplore>, StwigError> {
    results
        .into_iter()
        .map(|r| match r {
            Err(StwigError::MachineUnavailable { machine, .. })
                if config.failure_policy == FailurePolicy::Degrade =>
            {
                let mut columns = Vec::with_capacity(1 + stwig.children.len());
                columns.push(stwig.root);
                columns.extend(stwig.children.iter().copied());
                let mut faults = FaultCounters::default();
                faults.record_lost(machine);
                Ok(MachineExplore {
                    table: ResultTable::new(columns),
                    counters: ExploreCounters::default(),
                    faults,
                    compute_us: 0.0,
                })
            }
            other => other,
        })
        .collect()
}

/// Per-STwig label-pair selectivity priors for the join-order cost model:
/// the product, over an STwig's edges, of the smoothed fraction of data-edge
/// incidences carrying that label pair. Smaller means "rarer pair, joins
/// will filter harder", pulling that table earlier in the join order. Only
/// available when pruning is on and the cloud was built with pair tables;
/// `None` falls back to the sampled-only estimator.
pub(crate) fn stwig_join_priors(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    stwigs: &[STwig],
    config: &MatchConfig,
) -> Option<Vec<f64>> {
    if !config.pruning {
        return None;
    }
    let total = cloud.label_pair_total();
    if total == 0 {
        return None;
    }
    Some(
        stwigs
            .iter()
            .map(|s| {
                let root_label = query.label(s.root);
                s.children
                    .iter()
                    .map(|&c| {
                        (cloud.label_pair_count(root_label, query.label(c)) + 1) as f64
                            / (total + 1) as f64
                    })
                    .product()
            })
            .collect(),
    )
}

/// Phase 2 of the distributed execution: each machine fetches its load-set
/// tables (Theorem 4), joins them with the block-based pipeline, and the
/// per-machine answers — disjoint by construction — are unioned on the
/// coordinating thread in machine order. Applies the configured result
/// limit (`MatchConfig::result_limit`) and records join counters,
/// per-machine receive/match counts and the truncation flag in the supplied
/// metrics. Fails with [`StwigError::Transport`] if a peer ships a
/// malformed `JoinRows` message.
pub fn join_stwig_tables(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    plan: &QueryPlan,
    tables: &StwigTableSet,
    config: &MatchConfig,
    metrics: &mut QueryMetrics,
    machine_metrics: &mut [MachineMetrics],
) -> Result<ResultTable, StwigError> {
    let num_machines = cloud.num_machines();
    let priors = stwig_join_priors(cloud, query, &plan.stwigs, config);
    let threads = config.resolved_num_threads();
    let per_machine_tables = &tables.per_machine;
    let before_join = cloud.traffic();
    // `Messages`: ship every load-set table as an explicit `JoinRows`
    // message before the per-machine join work items run — machine `j`
    // pushes its STwig-`t` rows to every machine whose load set names it
    // (Theorem 4 bounds the destinations). Each machine then assembles its
    // R_k from its own tables plus its inbox; the drained envelopes are
    // canonicalized to (STwig, sender, seq) order, so R_k is row-for-row
    // identical to the direct-read assembly below even under fault-injected
    // reordering.
    let transport = (config.transport_mode == TransportMode::Messages)
        .then(|| QueryTransport::for_config(cloud, config));
    if let Some(tp) = &transport {
        for ki in 0..num_machines {
            post_join_rows_to(tp, plan, per_machine_tables, MachineId(ki as u16));
        }
    }
    let join_results: Vec<Result<MachineJoin, StwigError>> =
        run_work_stealing(num_machines, threads, |ki| {
            let t0 = Instant::now();
            let (rk_tables, received) =
                assemble_rk_tables(cloud, plan, per_machine_tables, transport.as_ref(), ki)?;

            let rk_bytes: u64 = rk_tables.iter().map(|t| t.memory_bytes() as u64).sum();
            // If this machine has no head-STwig results it contributes
            // nothing.
            if rk_tables[plan.head.head_index].is_empty() {
                return Ok(MachineJoin {
                    joined: None,
                    counters: JoinCounters::default(),
                    compute_us: t0.elapsed().as_secs_f64() * 1e6,
                    rows_received: received,
                    table_bytes: rk_bytes,
                });
            }
            let mut counters = JoinCounters::default();
            let joined =
                pipelined_join_with_priors(&rk_tables, config, priors.as_deref(), &mut counters);
            let table_bytes = rk_bytes + joined.memory_bytes() as u64;
            Ok(MachineJoin {
                joined: Some(joined),
                counters,
                compute_us: t0.elapsed().as_secs_f64() * 1e6,
                rows_received: received,
                table_bytes,
            })
        });
    let join_results: Vec<MachineJoin> = join_results.into_iter().collect::<Result<_, _>>()?;

    if let Some(tp) = &transport {
        metrics.fault.duplicates_suppressed += tp.duplicates_suppressed();
    }
    let after_join = cloud.traffic();
    record_phase(
        &before_join,
        &after_join,
        &mut metrics.phase_traffic.join_ship_messages,
        &mut metrics.phase_traffic.join_ship_bytes,
    );

    let mut join_counters = JoinCounters::default();
    let mut final_table: Option<ResultTable> = None;
    // Rows each machine appended to the final table, in append order; used to
    // re-attribute per-machine match counts after global truncation.
    let mut contributions: Vec<(usize, u64)> = Vec::new();
    for (ki, result) in join_results.into_iter().enumerate() {
        join_counters.merge(&result.counters);
        metrics.peak_table_bytes = metrics.peak_table_bytes.max(result.table_bytes);
        let mm = &mut machine_metrics[ki];
        mm.rows_received += result.rows_received;
        mm.compute_us += result.compute_us;
        let Some(joined) = result.joined else {
            continue;
        };
        mm.matches_found = joined.num_rows() as u64;
        contributions.push((ki, joined.num_rows() as u64));

        match &mut final_table {
            None => final_table = Some(joined),
            // Columns may differ in order across machines; re-project.
            Some(acc) => acc.append_projected(&joined),
        }
    }
    metrics.join = join_counters;

    let mut table = final_table.unwrap_or_else(|| ResultTable::new(query.vertices().collect()));
    if let Some(limit) = config.result_limit() {
        if table.num_rows() > limit {
            metrics.truncated = true;
        }
        table.truncate(limit);
        // Re-attribute per-machine match counts to the rows that survived the
        // global truncation (the final table keeps a prefix in append order).
        let mut remaining = table.num_rows() as u64;
        for &(machine, produced) in &contributions {
            let kept = produced.min(remaining);
            machine_metrics[machine].matches_found = kept;
            remaining -= kept;
        }
    }
    Ok(table)
}

/// Fetches machine `k`'s postings for `label` over the transport (one
/// `GetIds` exchange from the proxy, retried under `config.retry`),
/// type-checking the reply. Shared by the materialized and streaming
/// single-vertex paths.
///
/// Returns `Ok(None)` when the postings are unavailable but the query goes
/// on: the machine stayed unreachable under [`FailurePolicy::Degrade`]
/// (recorded in `faults.machines_lost`), or the query was interrupted
/// mid-backoff.
fn remote_postings(
    tp: &dyn Transport,
    config: &MatchConfig,
    proxy: MachineId,
    k: MachineId,
    label: trinity_sim::ids::LabelId,
    control: Option<&QueryControl>,
    faults: &mut FaultCounters,
) -> Result<Option<Vec<VertexId>>, StwigError> {
    if faults.is_lost(k.0) {
        return Ok(None);
    }
    let reply = match retry_exchange(
        tp,
        &config.retry,
        proxy,
        k,
        &|| Message::GetIdsRequest { label },
        control,
        faults,
    ) {
        Ok(ExchangeOutcome::Reply(reply)) => reply,
        Ok(ExchangeOutcome::Interrupted) => return Ok(None),
        Err(StwigError::MachineUnavailable { machine, .. })
            if config.failure_policy == FailurePolicy::Degrade =>
        {
            faults.record_lost(machine);
            return Ok(None);
        }
        Err(err) => return Err(err),
    };
    match reply {
        Message::GetIdsReply { ids } => Ok(Some(ids)),
        other => Err(StwigError::Transport(TransportError::UnexpectedReply {
            expected: "GetIdsReply",
            got: other.kind(),
        })),
    }
}

/// Ships every load-set table destined for machine `dest` as `JoinRows`
/// posts (Theorem 4 bounds the senders): one envelope per non-empty
/// (STwig, sender) pair, in (STwig, sender) order — the order
/// [`assemble_rk_tables`] relies on for row-for-row determinism. Shared by
/// the materialized join phase (which posts to every machine up front) and
/// the streaming pass (which posts lazily per machine).
fn post_join_rows_to(
    tp: &dyn Transport,
    plan: &QueryPlan,
    per_machine_tables: &[Vec<ResultTable>],
    dest: MachineId,
) {
    for (t, _stwig) in plan.stwigs.iter().enumerate() {
        for j in load_set(&plan.cluster, &plan.head, dest, t) {
            let remote = &per_machine_tables[j.index()][t];
            if remote.is_empty() {
                continue;
            }
            tp.post(
                j,
                dest,
                Message::JoinRows {
                    stwig: t as u32,
                    columns: remote.columns().iter().map(|c| c.0).collect(),
                    rows: remote.rows().flatten().copied().collect(),
                },
            );
        }
    }
}

/// Assembles machine `ki`'s `R_k(q_t)` tables for every STwig `t`: its own
/// exploration tables plus the load-set rows — drained from its transport
/// mailbox in `Messages` mode, fetched (and charged) in place in
/// `DirectRead` mode. Returns the tables and the number of rows received
/// from other machines. A malformed `JoinRows` envelope (wrong variant,
/// out-of-range STwig index, foreign columns, ragged row payload) fails with
/// [`StwigError::Transport`].
fn assemble_rk_tables(
    cloud: &MemoryCloud,
    plan: &QueryPlan,
    per_machine_tables: &[Vec<ResultTable>],
    transport: Option<&QueryTransport<'_>>,
    ki: usize,
) -> Result<(Vec<ResultTable>, u64), StwigError> {
    let k = MachineId(ki as u16);
    let mut rk_tables: Vec<ResultTable> = Vec::with_capacity(plan.stwigs.len());
    let mut received = 0u64;
    if let Some(tp) = transport {
        rk_tables.extend(per_machine_tables[ki].iter().cloned());
        let mut inbox = tp.drain(k);
        // Canonicalize arrival order. The fault-free posting order per
        // destination is (STwig ascending, sender ascending) with at most
        // one envelope per pair, so this sort is a stable no-op on a clean
        // run — and under fault-injected delay/reorder it restores exactly
        // that order, keeping R_k row-for-row deterministic.
        inbox.sort_by_key(|env| match &env.msg {
            Message::JoinRows { stwig, .. } => (*stwig, env.src.0, env.seq),
            _ => (u32::MAX, env.src.0, env.seq),
        });
        for env in inbox {
            let src = env.src;
            let Message::JoinRows {
                stwig,
                columns,
                rows,
            } = env.msg
            else {
                return Err(StwigError::Transport(TransportError::UnexpectedMessage {
                    phase: "join shipping",
                    got: env.msg.kind(),
                }));
            };
            let Some(rk) = rk_tables.get_mut(stwig as usize) else {
                return Err(StwigError::Transport(TransportError::MalformedPayload {
                    detail: format!(
                        "machine {src} shipped rows for STwig {stwig}, but the plan has {}",
                        plan.stwigs.len()
                    ),
                }));
            };
            let expected: Vec<u16> = rk.columns().iter().map(|c| c.0).collect();
            if columns != expected {
                return Err(StwigError::Transport(TransportError::MalformedPayload {
                    detail: format!(
                        "machine {src} shipped STwig {stwig} with columns {columns:?}, \
                         expected {expected:?}"
                    ),
                }));
            }
            let width = rk.width();
            if width == 0 || rows.len() % width != 0 {
                return Err(StwigError::Transport(TransportError::MalformedPayload {
                    detail: format!(
                        "machine {src} shipped {} ids for width-{width} STwig {stwig}",
                        rows.len()
                    ),
                }));
            }
            for row in rows.chunks(width) {
                rk.push_row(row);
            }
            received += (rows.len() / width) as u64;
        }
    } else {
        for (t, _stwig) in plan.stwigs.iter().enumerate() {
            let mut rk = per_machine_tables[ki][t].clone();
            for j in load_set(&plan.cluster, &plan.head, k, t) {
                let remote = &per_machine_tables[j.index()][t];
                if remote.is_empty() {
                    continue;
                }
                cloud.ship_rows(j, k, remote.num_rows() as u64, remote.width() as u64);
                received += remote.num_rows() as u64;
                rk.append(remote);
            }
            // No dedup pass: rows within one machine's table are
            // distinct (the cross product emits each assignment once),
            // and tables from different machines are root-disjoint
            // because STwig roots are restricted to locally-owned
            // vertices — so R_k is duplicate-free by construction.
            rk_tables.push(rk);
        }
    }
    Ok((rk_tables, received))
}

/// Initial per-machine, per-STwig exploration slab (in rows) for
/// first-k/exists queries, before scaling by the requested `k`.
const FIRST_K_MIN_SLAB: usize = 256;
/// How much the exploration slab grows when a round undershoots `k`.
/// Geometric growth bounds total re-exploration work by a constant factor
/// of the final round.
const SLAB_GROWTH: usize = 8;

/// Tracks streamed delivery: rows handed to the sink, and when the first
/// one left.
struct StreamState<'s> {
    sink: &'s mut dyn ResultSink,
    started: Instant,
    streamed: u64,
    first_us: Option<f64>,
}

impl StreamState<'_> {
    fn deliver(&mut self, row: &[VertexId]) {
        if self.first_us.is_none() {
            self.first_us = Some(self.started.elapsed().as_secs_f64() * 1e6);
        }
        self.streamed += 1;
        self.sink.row(row);
    }
}

/// [`RoundSink`] adapter: re-projects each machine's join output (whose
/// column order depends on its join-order choice) into the canonical column
/// order announced to the client, then forwards row by row — to the live
/// stream for a committed round, or into a staging table for a slab round
/// that may still be discarded and retried bigger (the caller's closure
/// decides). Checks `control` before each forwarded row — an atomic load
/// (the clock is only read while an untripped deadline is armed) — so a
/// cancellation raised by the consumer mid-stream stops delivery without
/// waiting for the round boundary.
struct ProjectingSink<'a, 'c> {
    canonical: &'c [QVid],
    projection: Vec<usize>,
    row_buf: Vec<VertexId>,
    control: &'a QueryControl,
    emit: &'a mut dyn FnMut(&[VertexId]),
}

impl RoundSink for ProjectingSink<'_, '_> {
    fn on_schema(&mut self, columns: &[QVid]) {
        self.projection = self
            .canonical
            .iter()
            .map(|&c| {
                columns
                    .iter()
                    .position(|&mc| mc == c)
                    .expect("final join output covers every query vertex")
            })
            .collect();
    }

    fn on_rows(&mut self, rows: &ResultTable) {
        for row in rows.rows() {
            if self.control.interrupted() {
                return;
            }
            self.row_buf.clear();
            self.row_buf.extend(self.projection.iter().map(|&p| row[p]));
            (self.emit)(&self.row_buf);
        }
    }
}

/// Outcome of one streamed join pass over all machines.
struct StreamJoinPass {
    /// Rows emitted (to the live sink or the staging table).
    rows: u64,
    /// Whether every contributing machine's join ran its driver dry — i.e.
    /// the pass enumerated everything these tables contain.
    exhausted: bool,
    /// Whether a cooperative interrupt stopped the pass.
    interrupted: bool,
}

/// Runs the per-machine load-set joins over `tables`, streaming surviving
/// rows through `emit` up to `limit`. Machines run in machine order with a
/// cooperative `control` check before each; in `Messages` mode each
/// machine's incoming load-set rows are shipped as `JoinRows` posts
/// **lazily, right before that machine joins** — a first-k query satisfied
/// by machine 0 never pays the copy or the simulated traffic for envelopes
/// no one would drain (per-destination posting order is identical to the
/// materialized phase, so assembled tables match row for row).
#[allow(clippy::too_many_arguments)]
fn stream_join_pass(
    cloud: &MemoryCloud,
    plan: &QueryPlan,
    tables: &StwigTableSet,
    config: &MatchConfig,
    priors: Option<&[f64]>,
    limit: Option<usize>,
    control: &QueryControl,
    canonical: &[QVid],
    metrics: &mut QueryMetrics,
    machine_metrics: &mut [MachineMetrics],
    emit: &mut dyn FnMut(&[VertexId]),
) -> Result<StreamJoinPass, StwigError> {
    let num_machines = cloud.num_machines();
    let per_machine_tables = &tables.per_machine;
    let before_join = cloud.traffic();
    let transport = (config.transport_mode == TransportMode::Messages)
        .then(|| QueryTransport::for_config(cloud, config));

    let mut rows = 0u64;
    let mut exhausted = true;
    let mut interrupted = false;
    // A discarded slab round must not leave stale per-machine match counts.
    for mm in machine_metrics.iter_mut() {
        mm.matches_found = 0;
    }
    // `ki` indexes `per_machine_tables` and the transport alongside
    // `machine_metrics`, which needs two disjoint borrows per iteration.
    #[allow(clippy::needless_range_loop)]
    for ki in 0..num_machines {
        if control.interrupted() {
            interrupted = true;
            exhausted = false;
            break;
        }
        let remaining = limit.map(|l| (l as u64).saturating_sub(rows) as usize);
        if remaining == Some(0) {
            exhausted = false;
            break;
        }
        let t0 = Instant::now();
        if let Some(tp) = &transport {
            post_join_rows_to(tp, plan, per_machine_tables, MachineId(ki as u16));
        }
        let (rk_tables, received) =
            assemble_rk_tables(cloud, plan, per_machine_tables, transport.as_ref(), ki)?;
        let rk_bytes: u64 = rk_tables.iter().map(|t| t.memory_bytes() as u64).sum();
        metrics.peak_table_bytes = metrics.peak_table_bytes.max(rk_bytes);
        let mm = &mut machine_metrics[ki];
        mm.rows_received += received;
        if rk_tables[plan.head.head_index].is_empty() {
            mm.compute_us += t0.elapsed().as_secs_f64() * 1e6;
            continue;
        }
        let mut counters = JoinCounters::default();
        // Count what the sink actually accepted, not what the join produced:
        // `ProjectingSink` drops rows once an interrupt latches, and the
        // first-k "satisfied" decision must reflect delivered rows only.
        let mut delivered = 0u64;
        let run = {
            let mut counted = |row: &[VertexId]| {
                delivered += 1;
                emit(row)
            };
            let mut sink = ProjectingSink {
                canonical,
                projection: Vec::new(),
                row_buf: Vec::with_capacity(canonical.len()),
                control,
                emit: &mut counted,
            };
            pipelined_join_streaming(
                &rk_tables,
                config,
                priors,
                remaining,
                Some(control),
                &mut counters,
                &mut sink,
            )
        };
        if !run.exhausted {
            exhausted = false;
        }
        if run.interrupted {
            interrupted = true;
        }
        rows += delivered;
        metrics.join.merge(&counters);
        let mm = &mut machine_metrics[ki];
        mm.compute_us += t0.elapsed().as_secs_f64() * 1e6;
        mm.matches_found = delivered;
        if interrupted {
            break;
        }
    }
    if let Some(tp) = &transport {
        metrics.fault.duplicates_suppressed += tp.duplicates_suppressed();
    }
    let after_join = cloud.traffic();
    record_phase(
        &before_join,
        &after_join,
        &mut metrics.phase_traffic.join_ship_messages,
        &mut metrics.phase_traffic.join_ship_bytes,
    );
    Ok(StreamJoinPass {
        rows,
        exhausted,
        interrupted,
    })
}

/// [`match_query_streaming_with_cache`] without a cache.
pub fn match_query_streaming(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    config: &MatchConfig,
    options: &QueryOptions,
    sink: &mut dyn ResultSink,
) -> Result<QueryMetrics, StwigError> {
    match_query_streaming_with_cache(cloud, query, config, options, None, sink)
}

/// The streaming entry point of the distributed executor: rows are delivered
/// through `sink` (in canonical column order — query vertices ascending) as
/// they are produced, under the per-query deadline/cancellation in
/// `options`, instead of a materialized [`MatchOutput`].
///
/// Under [`crate::config::ResultMode::All`] exploration runs exactly once
/// (uncapped) and the join streams every row. Under `FirstK(k)` / `Exists`
/// the executor interleaves exploration and join incrementally:
///
/// 1. every machine explores each STwig with a bounded slab
///    (`max_stwig_rows` capped at a multiple of `k`), with the usual binding
///    synchronization between STwigs;
/// 2. the pipelined join runs over what is available, counting valid
///    embeddings;
/// 3. only if fewer than `k` embeddings came out **and** some machine's slab
///    was full does exploration resume with a geometrically larger slab —
///    otherwise the joined rows are delivered and the query completes.
///
/// Early stop is legal because any row surviving the join of *truncated*
/// exploration tables is a genuine embedding (each table holds only true
/// STwig matches, and the join checks the same predicates as ever); what is
/// sacrificed is only *which* k embeddings are returned — they are not a
/// prefix of the canonical full-enumeration table. See DESIGN.md,
/// "First-k early stop".
///
/// On a deadline or cancellation the query stops at the next cooperative
/// check (superstep flush, STwig barrier, join round, machine boundary),
/// delivers the valid rows of the round in progress, and reports
/// [`QueryOutcome::Cancelled`] / [`QueryOutcome::DeadlineExceeded`] in the
/// returned metrics. `rows_streamed`, `time_to_first_result_us`,
/// `explore_rounds` and `peak_table_bytes` describe the streamed execution.
pub fn match_query_streaming_with_cache(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    config: &MatchConfig,
    options: &QueryOptions,
    cache: Option<&StwigCache>,
    sink: &mut dyn ResultSink,
) -> Result<QueryMetrics, StwigError> {
    #[cfg(test)]
    if fault::poisoned(cloud, query) {
        return Err(fault::injected_error());
    }
    let started = Instant::now();
    let control = QueryControl::new(options, started);
    cloud.reset_traffic();
    let num_machines = cloud.num_machines();
    let mut metrics = QueryMetrics {
        storage: Some(cloud.storage_bytes()),
        ..QueryMetrics::default()
    };
    let mut machine_metrics: Vec<MachineMetrics> = (0..num_machines)
        .map(|k| MachineMetrics {
            machine: k as u16,
            ..Default::default()
        })
        .collect();
    if let Some(cache) = cache {
        if !cache.matches_cloud(cloud) {
            return Err(StwigError::Internal(
                "STwig cache was built for a different memory cloud".into(),
            ));
        }
    }
    let limit = config.result_limit();

    // Single-vertex queries: stream the per-machine label postings directly,
    // stopping at the limit, with a cooperative check per machine.
    if query.num_edges() == 0 {
        let v0 = query.vertices().next().ok_or(StwigError::EmptyQuery)?;
        sink.begin(&[v0]);
        let mut state = StreamState {
            sink,
            started,
            streamed: 0,
            first_us: None,
        };
        let label = query.label(v0);
        let transport = (config.transport_mode == TransportMode::Messages)
            .then(|| QueryTransport::for_config(cloud, config));
        let before = cloud.traffic();
        let proxy = MachineId(0);
        let mut limit_hit = false;
        'scan: for k in cloud.machines() {
            if control.interrupted() {
                break;
            }
            let owned: Vec<VertexId> = match &transport {
                Some(tp) if k != proxy => remote_postings(
                    tp,
                    config,
                    proxy,
                    k,
                    label,
                    Some(&control),
                    &mut metrics.fault,
                )?
                .unwrap_or_default(),
                _ => cloud.get_ids(k, label).to_vec(),
            };
            for id in owned {
                if limit.is_some_and(|l| state.streamed >= l as u64) {
                    limit_hit = true;
                    break 'scan;
                }
                state.deliver(&[id]);
            }
        }
        if let Some(tp) = &transport {
            metrics.fault.duplicates_suppressed += tp.duplicates_suppressed();
        }
        metrics.truncated = limit_hit;
        metrics.matches_found = state.streamed;
        metrics.rows_streamed = state.streamed;
        metrics.time_to_first_result_us = state.first_us;
        metrics.explore_rounds = 1;
        if let Some(interrupt) = control.check() {
            metrics.outcome = match interrupt {
                Interrupt::Cancelled => QueryOutcome::Cancelled,
                Interrupt::DeadlineExceeded => QueryOutcome::DeadlineExceeded,
            };
        } else if !metrics.fault.machines_lost.is_empty() {
            metrics.outcome = QueryOutcome::Partial;
        }
        let after = cloud.traffic();
        record_phase(
            &before,
            &after,
            &mut metrics.phase_traffic.explore_messages,
            &mut metrics.phase_traffic.explore_bytes,
        );
        metrics.machines = machine_metrics;
        finalize(&mut metrics, cloud, started);
        return Ok(metrics);
    }

    let plan = plan_query_with_config(cloud, query, config)?;
    metrics.num_stwigs = plan.stwigs.len();
    let canonical: Vec<QVid> = query.vertices().collect();
    let priors = stwig_join_priors(cloud, query, &plan.stwigs, config);
    sink.begin(&canonical);
    let mut state = StreamState {
        sink,
        started,
        streamed: 0,
        first_us: None,
    };

    // Slab schedule: `All` explores uncapped in one round; `FirstK`/`Exists`
    // start from a slab sized for k and grow geometrically on undershoot.
    // The user's own `max_stwig_rows` is always an upper bound — a slab
    // capped by the *user's* limit is final, not resumable.
    let user_cap = config.max_stwig_rows;
    let mut slab: Option<usize> = match (config.result_mode, limit) {
        (crate::config::ResultMode::All, _) | (_, None) => None,
        (_, Some(k)) => Some(k.saturating_mul(4).max(FIRST_K_MIN_SLAB)),
    };

    let mut truncated = false;
    let mut interrupt: Option<Interrupt> = None;
    loop {
        metrics.explore_rounds += 1;
        let effective_cap = match (slab, user_cap) {
            (None, u) => u,
            (Some(s), None) => Some(s),
            (Some(s), Some(u)) => Some(s.min(u)),
        };
        let can_grow = match (slab, user_cap) {
            (None, _) => false,
            (Some(s), Some(u)) => s < u,
            (Some(_), None) => true,
        };
        let round_cfg = MatchConfig {
            max_stwig_rows: effective_cap,
            ..config.clone()
        };
        let mut round_metrics = QueryMetrics::default();
        let produced = produce_stwig_tables(
            cloud,
            query,
            &plan,
            &round_cfg,
            cache,
            Some(&control),
            &mut round_metrics,
            &mut machine_metrics,
        )?;
        metrics.explore.merge(&round_metrics.explore);
        metrics.stwig_rows = round_metrics.stwig_rows.clone();
        metrics.phase_traffic.merge(&round_metrics.phase_traffic);
        metrics.fault.merge(&round_metrics.fault);
        metrics.peak_table_bytes = metrics.peak_table_bytes.max(round_metrics.peak_table_bytes);

        if let Some(i) = control.check() {
            interrupt = Some(i);
            break;
        }

        let Some(tables) = produced else {
            // Some STwig matched nowhere. Under a resumable slab that only
            // proves "no answer" if no slab could have truncated a table:
            // per-STwig totals below the cap bound every machine's table
            // below it too.
            let maybe_capped = can_grow
                && effective_cap
                    .is_some_and(|c| round_metrics.stwig_rows.iter().any(|&r| r >= c as u64));
            if !maybe_capped {
                break; // provably no (further) answer
            }
            slab = slab.map(|s| s.saturating_mul(SLAB_GROWTH));
            continue;
        };

        let capped = can_grow
            && effective_cap.is_some_and(|c| {
                tables
                    .per_machine
                    .iter()
                    .flatten()
                    .any(|t| t.num_rows() >= c)
            });

        if !capped {
            // Final round: every row the join produces is part of the full
            // answer — stream it live.
            let remaining = limit.map(|l| (l as u64).saturating_sub(state.streamed) as usize);
            let mut emit = |row: &[VertexId]| state.deliver(row);
            let pass = stream_join_pass(
                cloud,
                &plan,
                &tables,
                config,
                priors.as_deref(),
                remaining,
                &control,
                &canonical,
                &mut metrics,
                &mut machine_metrics,
                &mut emit,
            )?;
            truncated = limit.is_some() && !pass.exhausted && !pass.interrupted;
            if pass.interrupted {
                interrupt = control.check();
            }
            break;
        }

        // Slab round: join into staging; commit only if it satisfies k (or
        // an interrupt forces partial delivery). Otherwise discard and
        // re-explore with a bigger slab — rows must never be streamed twice,
        // and a bigger slab's join output is not a superset of this one's.
        let mut staging = ResultTable::new(canonical.clone());
        let mut emit = |row: &[VertexId]| staging.push_row(row);
        let pass = stream_join_pass(
            cloud,
            &plan,
            &tables,
            config,
            priors.as_deref(),
            limit,
            &control,
            &canonical,
            &mut metrics,
            &mut machine_metrics,
            &mut emit,
        )?;
        metrics.peak_table_bytes = metrics.peak_table_bytes.max(staging.memory_bytes() as u64);
        let satisfied = limit.is_some_and(|l| pass.rows >= l as u64);
        if satisfied || pass.interrupted {
            for row in staging.rows() {
                state.deliver(row);
            }
            truncated = satisfied;
            if pass.interrupted {
                interrupt = control.check();
            }
            break;
        }
        slab = slab.map(|s| s.saturating_mul(SLAB_GROWTH));
    }

    if interrupt.is_none() {
        interrupt = control.check();
    }
    metrics.outcome = match interrupt {
        // An interrupt outranks degradation: the client asked to stop.
        None if !metrics.fault.machines_lost.is_empty() => QueryOutcome::Partial,
        None => QueryOutcome::Complete,
        Some(Interrupt::Cancelled) => QueryOutcome::Cancelled,
        Some(Interrupt::DeadlineExceeded) => QueryOutcome::DeadlineExceeded,
    };
    metrics.truncated = truncated;
    metrics.matches_found = state.streamed;
    metrics.rows_streamed = state.streamed;
    metrics.time_to_first_result_us = state.first_us;
    metrics.machines = machine_metrics;
    finalize(&mut metrics, cloud, started);
    Ok(metrics)
}

/// Root candidates for `stwig` on machine `k`: locally-owned vertices with
/// the root label, filtered by the (global) binding set when bound.
fn local_roots(
    cloud: &MemoryCloud,
    k: MachineId,
    query: &QueryGraph,
    stwig: &STwig,
    bindings: &Bindings,
    config: &MatchConfig,
) -> Vec<VertexId> {
    let postings = cloud.get_ids(k, query.label(stwig.root));
    if config.use_bindings {
        if let Some(bound) = bindings.get(stwig.root) {
            return postings.iter().filter(|v| bound.contains(v)).collect();
        }
    }
    postings.to_vec()
}

fn stwig_vertices(stwig: &STwig) -> Vec<crate::query::QVid> {
    let set: HashSet<_> = stwig.vertices().collect();
    let mut v: Vec<_> = set.into_iter().collect();
    v.sort_unstable();
    v
}

fn finalize(metrics: &mut QueryMetrics, cloud: &MemoryCloud, started: Instant) {
    let traffic = cloud.traffic();
    metrics.network_messages = traffic.total_messages();
    metrics.network_bytes = traffic.total_bytes();
    metrics.wall_us = started.elapsed().as_secs_f64() * 1e6;
    // Per-machine communication time and simulated makespan.
    let mut makespan: f64 = 0.0;
    for mm in &mut metrics.machines {
        mm.comm_us = cloud
            .network()
            .simulated_send_time_us(MachineId(mm.machine));
        makespan = makespan.max(mm.compute_us + mm.comm_us);
    }
    if metrics.machines.is_empty() {
        metrics.simulated_us = metrics.wall_us + cloud.network().simulated_total_time_us();
    } else {
        metrics.simulated_us = makespan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::match_query;
    use crate::verify::{canonical_rows, verify_all};
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn sample_cloud(machines: usize) -> MemoryCloud {
        // A slightly larger labeled graph with multiple triangles and squares.
        let mut gb = GraphBuilder::new_undirected();
        for i in 0..10u64 {
            gb.add_vertex(v(i), "a");
        }
        for i in 10..30u64 {
            gb.add_vertex(v(i), "b");
        }
        for i in 30..50u64 {
            gb.add_vertex(v(i), "c");
        }
        for i in 50..55u64 {
            gb.add_vertex(v(i), "d");
        }
        // a_i - b_{10+2i}, b_{10+2i} - c_{30+2i}, c_{30+2i} - a_i (triangles)
        for i in 0..10u64 {
            gb.add_edge(v(i), v(10 + 2 * i));
            gb.add_edge(v(10 + 2 * i), v(30 + 2 * i));
            gb.add_edge(v(30 + 2 * i), v(i));
        }
        // extra edges to d vertices
        for i in 0..5u64 {
            gb.add_edge(v(50 + i), v(i));
            gb.add_edge(v(50 + i), v(11 + 2 * i));
        }
        gb.build(machines, CostModel::default())
    }

    fn triangle_query(cloud: &MemoryCloud) -> QueryGraph {
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(cloud, "a").unwrap();
        let b = qb.vertex_by_name(cloud, "b").unwrap();
        let c = qb.vertex_by_name(cloud, "c").unwrap();
        qb.edge(a, b).edge(b, c).edge(c, a);
        qb.build().unwrap()
    }

    #[test]
    fn distributed_equals_single_machine() {
        for machines in [1usize, 2, 4, 8] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let single = match_query(&cloud, &query, &MatchConfig::default()).unwrap();
            let distributed =
                match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
            assert_eq!(
                canonical_rows(&query, &single.table),
                canonical_rows(&query, &distributed.table),
                "machines = {machines}"
            );
            verify_all(&cloud, &query, &distributed.table).unwrap();
            assert_eq!(distributed.num_matches(), 10);
        }
    }

    #[test]
    fn per_machine_results_are_disjoint() {
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        // No duplicate embeddings in the union.
        let rows = canonical_rows(&query, &out.table);
        assert_eq!(rows.len(), out.num_matches());
    }

    #[test]
    fn four_vertex_query_with_d() {
        let cloud = sample_cloud(4);
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        let c = qb.vertex_by_name(&cloud, "c").unwrap();
        let d = qb.vertex_by_name(&cloud, "d").unwrap();
        qb.edge(a, b).edge(b, c).edge(c, a).edge(d, a).edge(d, b);
        let query = qb.build().unwrap();
        let single = match_query(&cloud, &query, &MatchConfig::default()).unwrap();
        let distributed = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(
            canonical_rows(&query, &single.table),
            canonical_rows(&query, &distributed.table)
        );
        verify_all(&cloud, &query, &distributed.table).unwrap();
    }

    #[test]
    fn no_match_distributed_query() {
        let cloud = sample_cloud(3);
        let mut qb = QueryGraph::builder();
        let d1 = qb.vertex_by_name(&cloud, "d").unwrap();
        let d2 = qb.vertex_by_name(&cloud, "d").unwrap();
        qb.edge(d1, d2);
        let query = qb.build().unwrap();
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(out.num_matches(), 0);
    }

    #[test]
    fn single_vertex_distributed_query() {
        let cloud = sample_cloud(3);
        let mut qb = QueryGraph::builder();
        qb.vertex_by_name(&cloud, "d").unwrap();
        let query = qb.build().unwrap();
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(out.num_matches(), 5);
    }

    #[test]
    fn metrics_report_per_machine_breakdown() {
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(out.metrics.machines.len(), 4);
        let total_matches: u64 = out.metrics.machines.iter().map(|m| m.matches_found).sum();
        assert_eq!(total_matches, out.num_matches() as u64);
        assert!(out.metrics.simulated_us > 0.0);
        assert!(out.metrics.network_messages > 0);
    }

    #[test]
    fn result_limit_is_respected() {
        let cloud = sample_cloud(2);
        let query = triangle_query(&cloud);
        let cfg = MatchConfig::default().with_result_mode(crate::config::ResultMode::FirstK(3));
        let out = match_query_distributed(&cloud, &query, &cfg).unwrap();
        assert_eq!(out.num_matches(), 3);
        verify_all(&cloud, &query, &out.table).unwrap();
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Any worker-thread count must return the exact table the serial
        // executor returns — same rows, same order, same per-machine totals.
        for machines in [1usize, 3, 4, 8] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let serial_cfg = MatchConfig::default().with_num_threads(Some(1));
            let serial = match_query_distributed(&cloud, &query, &serial_cfg).unwrap();
            for threads in [2usize, 4, 7] {
                let cfg = MatchConfig::default().with_num_threads(Some(threads));
                let parallel = match_query_distributed(&cloud, &query, &cfg).unwrap();
                assert_eq!(
                    serial.table, parallel.table,
                    "machines = {machines}, threads = {threads}"
                );
                assert_eq!(
                    serial.metrics.matches_found, parallel.metrics.matches_found,
                    "machines = {machines}, threads = {threads}"
                );
                assert_eq!(
                    serial.metrics.stwig_rows, parallel.metrics.stwig_rows,
                    "machines = {machines}, threads = {threads}"
                );
                assert_eq!(serial.metrics.explore, parallel.metrics.explore);
                assert_eq!(serial.metrics.join, parallel.metrics.join);
                assert_eq!(
                    serial.metrics.network_bytes, parallel.metrics.network_bytes,
                    "traffic totals are order-independent atomic sums"
                );
                for (s, p) in serial
                    .metrics
                    .machines
                    .iter()
                    .zip(parallel.metrics.machines.iter())
                {
                    assert_eq!(s.machine, p.machine);
                    assert_eq!(s.rows_produced, p.rows_produced);
                    assert_eq!(s.rows_received, p.rows_received);
                    assert_eq!(s.matches_found, p.matches_found);
                }
            }
        }
    }

    #[test]
    fn default_thread_count_matches_serial() {
        // The default config resolves num_threads to the host parallelism;
        // results must still be identical to the serial run.
        let cloud = sample_cloud(7);
        let query = triangle_query(&cloud);
        let auto = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        let serial_cfg = MatchConfig::default().with_num_threads(Some(1));
        let serial = match_query_distributed(&cloud, &query, &serial_cfg).unwrap();
        assert_eq!(auto.table, serial.table);
    }

    #[test]
    fn run_work_stealing_orders_results_and_balances() {
        // Results come back in item order for any thread count, even with
        // skewed per-item work.
        for threads in [1usize, 2, 3, 8] {
            let out = run_work_stealing(13, threads, |i| {
                if i % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i * 10
            });
            assert_eq!(out, (0..13).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cache_hit_and_miss_paths_are_bit_identical_to_exploration() {
        use crate::cache::{CacheConfig, StwigCache};
        for machines in [1usize, 3, 4] {
            let cloud = sample_cloud(machines);
            for (name, config) in [
                ("exhaustive", MatchConfig::default()),
                ("paper", MatchConfig::paper_default()),
                ("no-bindings", MatchConfig::default().with_bindings(false)),
            ] {
                let query = triangle_query(&cloud);
                let cache = StwigCache::new(&cloud, CacheConfig::default());
                let plain = match_query_distributed(&cloud, &query, &config).unwrap();
                // First run populates (all misses), second run hits.
                let miss =
                    match_query_distributed_with_cache(&cloud, &query, &config, Some(&cache))
                        .unwrap();
                let hit = match_query_distributed_with_cache(&cloud, &query, &config, Some(&cache))
                    .unwrap();
                let stats = cache.stats();
                assert!(stats.insertions > 0, "first run must populate ({name})");
                assert!(
                    stats.hits >= stats.insertions,
                    "second run must hit ({name})"
                );
                assert_eq!(
                    plain.table, miss.table,
                    "miss path diverged (machines = {machines}, {name})"
                );
                assert_eq!(
                    plain.table, hit.table,
                    "hit path diverged (machines = {machines}, {name})"
                );
                assert_eq!(plain.metrics.stwig_rows, hit.metrics.stwig_rows);
                assert_eq!(plain.metrics.join, hit.metrics.join);
                assert_eq!(plain.metrics.matches_found, hit.metrics.matches_found);
            }
        }
    }

    #[test]
    fn cache_for_a_different_cloud_is_rejected() {
        use crate::cache::{CacheConfig, StwigCache};
        let cloud = sample_cloud(2);
        let other = sample_cloud(3);
        let cache = StwigCache::new(&other, CacheConfig::default());
        let query = triangle_query(&cloud);
        let err = match_query_distributed_with_cache(
            &cloud,
            &query,
            &MatchConfig::default(),
            Some(&cache),
        );
        assert!(err.is_err(), "mismatched fingerprint must be rejected");
    }

    #[test]
    fn transport_modes_are_bit_identical_and_messages_reads_nothing_remote() {
        use crate::config::TransportMode;
        for machines in [1usize, 2, 4, 7] {
            let cloud = sample_cloud(machines);
            for (name, base) in [
                ("exhaustive", MatchConfig::default()),
                ("paper", MatchConfig::paper_default()),
                ("no-bindings", MatchConfig::default().with_bindings(false)),
            ] {
                let query = triangle_query(&cloud);
                let direct = match_query_distributed(
                    &cloud,
                    &query,
                    &base.clone().with_transport_mode(TransportMode::DirectRead),
                )
                .unwrap();
                let direct_remote = cloud.direct_remote_reads();
                let messages = match_query_distributed(
                    &cloud,
                    &query,
                    &base.clone().with_transport_mode(TransportMode::Messages),
                )
                .unwrap();
                let ctx = format!("machines = {machines}, config = {name}");
                assert_eq!(
                    cloud.direct_remote_reads(),
                    0,
                    "Messages mode dereferenced a remote partition ({ctx})"
                );
                assert_eq!(direct.table, messages.table, "tables diverged ({ctx})");
                assert_eq!(
                    direct.metrics.matches_found, messages.metrics.matches_found,
                    "{ctx}"
                );
                assert_eq!(
                    direct.metrics.stwig_rows, messages.metrics.stwig_rows,
                    "{ctx}"
                );
                assert_eq!(
                    direct.metrics.explore, messages.metrics.explore,
                    "exploration counters must match across modes ({ctx})"
                );
                assert_eq!(direct.metrics.join, messages.metrics.join, "{ctx}");
                if machines > 1 {
                    // The legacy mode really was reading foreign partitions —
                    // which is exactly what this refactor eliminates.
                    assert!(
                        direct_remote > 0,
                        "DirectRead should tally remote reads ({ctx})"
                    );
                    assert!(
                        messages.metrics.network_messages > 0,
                        "Messages mode must charge real envelopes ({ctx})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_vertex_query_is_mode_independent() {
        use crate::config::TransportMode;
        for machines in [1usize, 3, 4] {
            let cloud = sample_cloud(machines);
            let mut qb = QueryGraph::builder();
            qb.vertex_by_name(&cloud, "d").unwrap();
            let query = qb.build().unwrap();
            let direct = match_query_distributed(
                &cloud,
                &query,
                &MatchConfig::default().with_transport_mode(TransportMode::DirectRead),
            )
            .unwrap();
            let messages = match_query_distributed(
                &cloud,
                &query,
                &MatchConfig::default().with_transport_mode(TransportMode::Messages),
            )
            .unwrap();
            assert_eq!(cloud.direct_remote_reads(), 0);
            assert_eq!(direct.table, messages.table, "machines = {machines}");
            assert_eq!(messages.metrics.matches_found, 5);
            // The posting-gather envelopes belong to the explore phase, so
            // the breakdown partitions the totals here too.
            assert_eq!(
                messages.metrics.phase_traffic.total_messages(),
                messages.metrics.network_messages,
                "machines = {machines}"
            );
            assert_eq!(
                messages.metrics.phase_traffic.total_bytes(),
                messages.metrics.network_bytes,
                "machines = {machines}"
            );
        }
    }

    #[test]
    fn phase_traffic_accounts_the_whole_query() {
        use crate::config::TransportMode;
        for mode in [TransportMode::DirectRead, TransportMode::Messages] {
            let cloud = sample_cloud(4);
            let query = triangle_query(&cloud);
            let cfg = MatchConfig::default().with_transport_mode(mode);
            let out = match_query_distributed(&cloud, &query, &cfg).unwrap();
            let pt = out.metrics.phase_traffic;
            // Exploration and join shipping both cross machines on this
            // graph; every message belongs to exactly one phase.
            assert!(pt.explore_messages > 0, "mode = {mode:?}");
            assert!(pt.join_ship_messages > 0, "mode = {mode:?}");
            assert_eq!(
                pt.total_messages(),
                out.metrics.network_messages,
                "phase breakdown must partition the totals (mode = {mode:?})"
            );
            assert_eq!(
                pt.total_bytes(),
                out.metrics.network_bytes,
                "mode = {mode:?}"
            );
        }
    }

    #[test]
    fn messages_mode_caching_stays_transparent() {
        use crate::cache::{CacheConfig, StwigCache};
        use crate::config::TransportMode;
        for machines in [1usize, 4] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let config = MatchConfig::default().with_transport_mode(TransportMode::Messages);
            let cache = StwigCache::new(&cloud, CacheConfig::default());
            let plain = match_query_distributed(&cloud, &query, &config).unwrap();
            let miss =
                match_query_distributed_with_cache(&cloud, &query, &config, Some(&cache)).unwrap();
            let hit =
                match_query_distributed_with_cache(&cloud, &query, &config, Some(&cache)).unwrap();
            assert!(cache.stats().hits > 0);
            assert_eq!(plain.table, miss.table, "machines = {machines}");
            assert_eq!(plain.table, hit.table, "machines = {machines}");
            assert_eq!(
                cloud.direct_remote_reads(),
                0,
                "cache populate path must stay partition-local"
            );
        }
    }

    #[test]
    fn streaming_all_mode_delivers_every_match_in_canonical_order() {
        use crate::stream::CollectSink;
        for machines in [1usize, 3, 4] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let config = MatchConfig::default();
            let materialized = match_query_distributed(&cloud, &query, &config).unwrap();
            let mut sink = CollectSink::new();
            let metrics = match_query_streaming(
                &cloud,
                &query,
                &config,
                &crate::stream::QueryOptions::none(),
                &mut sink,
            )
            .unwrap();
            let table = sink.into_table().unwrap();
            assert_eq!(
                table.columns(),
                query.vertices().collect::<Vec<_>>(),
                "streamed rows use canonical column order"
            );
            assert_eq!(table.num_rows(), materialized.num_matches());
            assert_eq!(
                canonical_rows(&query, &table),
                canonical_rows(&query, &materialized.table),
                "machines = {machines}"
            );
            assert_eq!(metrics.outcome, crate::metrics::QueryOutcome::Complete);
            assert_eq!(metrics.rows_streamed, table.num_rows() as u64);
            assert_eq!(metrics.matches_found, table.num_rows() as u64);
            assert!(metrics.time_to_first_result_us.is_some());
            assert_eq!(metrics.explore_rounds, 1, "All mode explores once");
            assert!(metrics.peak_table_bytes > 0);
            verify_all(&cloud, &query, &table).unwrap();
        }
    }

    #[test]
    fn streaming_first_k_returns_exactly_k_valid_embeddings() {
        use crate::config::ResultMode;
        use crate::stream::CollectSink;
        for machines in [1usize, 4] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let full = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
            let full_rows: std::collections::HashSet<Vec<VertexId>> =
                canonical_rows(&query, &full.table).into_iter().collect();
            assert_eq!(full_rows.len(), 10);
            for k in [1usize, 3, 10, 25] {
                let config = MatchConfig::default().with_result_mode(ResultMode::FirstK(k));
                let mut sink = CollectSink::new();
                let metrics = match_query_streaming(
                    &cloud,
                    &query,
                    &config,
                    &crate::stream::QueryOptions::none(),
                    &mut sink,
                )
                .unwrap();
                let table = sink.into_table().unwrap();
                assert_eq!(
                    table.num_rows(),
                    k.min(10),
                    "machines = {machines}, k = {k}"
                );
                assert_eq!(metrics.rows_streamed, k.min(10) as u64);
                assert_eq!(metrics.outcome, crate::metrics::QueryOutcome::Complete);
                let rows = canonical_rows(&query, &table);
                let distinct: std::collections::HashSet<_> = rows.iter().cloned().collect();
                assert_eq!(distinct.len(), rows.len(), "no duplicate embeddings");
                for row in &rows {
                    assert!(
                        full_rows.contains(row),
                        "streamed row must be a genuine embedding"
                    );
                }
                verify_all(&cloud, &query, &table).unwrap();
            }
        }
    }

    #[test]
    fn streaming_exists_mode_answers_with_one_row_or_none() {
        use crate::config::ResultMode;
        let cloud = sample_cloud(3);
        let config = MatchConfig::default().with_result_mode(ResultMode::Exists);
        // Positive: the triangle query has matches; exactly one row streams.
        let mut rows = 0u64;
        let mut sink = |_row: &[VertexId]| rows += 1;
        let metrics = match_query_streaming(
            &cloud,
            &triangle_query(&cloud),
            &config,
            &crate::stream::QueryOptions::none(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(rows, 1);
        assert_eq!(metrics.rows_streamed, 1);
        // Negative: d-d edges do not exist; zero rows, Complete outcome.
        let mut qb = QueryGraph::builder();
        let d1 = qb.vertex_by_name(&cloud, "d").unwrap();
        let d2 = qb.vertex_by_name(&cloud, "d").unwrap();
        qb.edge(d1, d2);
        let none_query = qb.build().unwrap();
        let mut rows = 0u64;
        let mut sink = |_row: &[VertexId]| rows += 1;
        let metrics = match_query_streaming(
            &cloud,
            &none_query,
            &config,
            &crate::stream::QueryOptions::none(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(rows, 0);
        assert_eq!(metrics.outcome, crate::metrics::QueryOutcome::Complete);
        assert_eq!(metrics.rows_streamed, 0);
    }

    #[test]
    fn streaming_resumes_exploration_until_k_is_satisfied() {
        use crate::config::ResultMode;
        use crate::stream::CollectSink;
        // One `a` hub fanning out to 300 b's and 300 c's: the (a, {b, c})
        // STwig has 90_000 unconstrained rows, but only the lexicographically
        // *last* (b, c) pair closes a triangle. The first slab (k = 1 → 256
        // rows) provably misses it, so the executor must resume with bigger
        // slabs and still deliver the single valid embedding.
        let mut gb = GraphBuilder::new_undirected();
        gb.add_vertex(v(0), "a");
        for i in 0..300u64 {
            gb.add_vertex(v(100 + i), "b");
            gb.add_vertex(v(1000 + i), "c");
            gb.add_edge(v(0), v(100 + i));
            gb.add_edge(v(0), v(1000 + i));
        }
        gb.add_edge(v(399), v(1299)); // the only b-c edge: b_299 - c_299
        let cloud = gb.build(1, CostModel::default());
        let query = triangle_query(&cloud);
        let full = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(full.num_matches(), 1, "exactly one triangle by design");
        let config = MatchConfig::default().with_result_mode(ResultMode::FirstK(1));
        let mut sink = CollectSink::new();
        let metrics = match_query_streaming(
            &cloud,
            &query,
            &config,
            &crate::stream::QueryOptions::none(),
            &mut sink,
        )
        .unwrap();
        let table = sink.into_table().unwrap();
        assert_eq!(table.num_rows(), 1);
        assert_eq!(
            canonical_rows(&query, &table),
            canonical_rows(&query, &full.table)
        );
        assert!(
            metrics.explore_rounds >= 2,
            "the first slab must undershoot and resume (rounds = {})",
            metrics.explore_rounds
        );
        assert_eq!(metrics.outcome, crate::metrics::QueryOutcome::Complete);
    }

    #[test]
    fn streaming_honors_pre_set_cancellation_and_deadlines() {
        use crate::metrics::QueryOutcome;
        use crate::stream::{CancelToken, CollectSink, QueryOptions};
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        // Pre-cancelled token: the first cooperative check fires before any
        // row is produced.
        let token = CancelToken::new();
        token.cancel();
        let mut sink = CollectSink::new();
        let metrics = match_query_streaming(
            &cloud,
            &query,
            &MatchConfig::default(),
            &QueryOptions::none().with_cancel(token),
            &mut sink,
        )
        .unwrap();
        assert_eq!(metrics.outcome, QueryOutcome::Cancelled);
        assert_eq!(metrics.rows_streamed, 0);
        // Already-expired deadline.
        let mut sink = CollectSink::new();
        let metrics = match_query_streaming(
            &cloud,
            &query,
            &MatchConfig::default(),
            &QueryOptions::none().with_deadline(std::time::Duration::ZERO),
            &mut sink,
        )
        .unwrap();
        assert_eq!(metrics.outcome, QueryOutcome::DeadlineExceeded);
        assert_eq!(metrics.rows_streamed, 0);
    }

    #[test]
    fn streaming_single_vertex_query_streams_postings() {
        use crate::config::ResultMode;
        let cloud = sample_cloud(3);
        let mut qb = QueryGraph::builder();
        qb.vertex_by_name(&cloud, "d").unwrap();
        let query = qb.build().unwrap();
        let mut rows: Vec<Vec<VertexId>> = Vec::new();
        let mut sink = |row: &[VertexId]| rows.push(row.to_vec());
        let metrics = match_query_streaming(
            &cloud,
            &query,
            &MatchConfig::default(),
            &crate::stream::QueryOptions::none(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(metrics.rows_streamed, 5);
        assert!(!metrics.truncated);
        // FirstK(2) on the same scan truncates the stream.
        let config = MatchConfig::default().with_result_mode(ResultMode::FirstK(2));
        let mut rows = 0u64;
        let mut sink = |_row: &[VertexId]| rows += 1;
        let metrics = match_query_streaming(
            &cloud,
            &query,
            &config,
            &crate::stream::QueryOptions::none(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(rows, 2);
        assert!(metrics.truncated);
    }

    #[test]
    fn plan_exposes_head_and_cluster() {
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        let plan = plan_query(&cloud, &query).unwrap();
        assert!(!plan.stwigs.is_empty());
        assert!(plan.head.head_index < plan.stwigs.len());
        assert_eq!(plan.cluster.num_machines(), 4);
    }
}
