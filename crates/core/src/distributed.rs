//! Distributed, parallel subgraph matching (§4.3).
//!
//! Execution model (one logical *machine* per graph partition):
//!
//! 1. The proxy decomposes the query and orders the STwigs (Algorithm 2),
//!    builds the query-specific cluster graph, selects the head STwig and
//!    computes per-machine load sets (§5.3). This happens once, centrally.
//! 2. **Exploration.** Every machine matches each STwig in order with root
//!    candidates restricted to *locally-owned* vertices (`Index.getID` is a
//!    local index). After each STwig, binding sets are synchronized across
//!    machines (a broadcast whose volume is charged to the simulated
//!    network). Ownership-restricted roots keep per-machine result sets
//!    disjoint by root and make Theorem 4's load sets sound; global binding
//!    synchronization keeps the pruning lossless. This is the substitution we
//!    document in DESIGN.md for the paper's informally-specified binding
//!    exchange.
//! 3. **Join.** Every machine fetches, for each non-head STwig, the partial
//!    results of the machines in its load set (Theorem 4), unions them with
//!    its own, and runs the pipelined join locally. Because head-STwig
//!    results are never fetched remotely and the graph is disjointly
//!    partitioned, per-machine answers are disjoint and the final union needs
//!    no deduplication.
//!
//! The simulated time of the run is the makespan over machines of
//! (measured per-machine compute time + simulated communication time).
//!
//! **Threading model.** Logical machines really run in parallel: each
//! machine's exploration step (per STwig) and its load-set join step are work
//! items fanned out over `MatchConfig::num_threads` worker threads via
//! [`std::thread::scope`], with dynamic work-stealing over the machine list.
//! Binding synchronization stays a barrier between STwigs, as the algorithm
//! requires. Per-machine counters and tables are produced thread-locally and
//! merged on the coordinating thread in machine order, so results and
//! metrics totals are identical for every thread count — `num_threads = 1`
//! reproduces the serial execution bit-for-bit. See DESIGN.md for the full
//! determinism argument.

use crate::bindings::Bindings;
use crate::config::MatchConfig;
use crate::decompose::decompose_ordered;
use crate::error::StwigError;
use crate::executor::MatchOutput;
use crate::head::{load_set, select_head, HeadSelection};
use crate::matcher::match_stwig;
use crate::metrics::{ExploreCounters, JoinCounters, MachineMetrics, QueryMetrics};
use crate::pipeline::pipelined_join;
use crate::query::QueryGraph;
use crate::stwig::STwig;
use crate::table::ResultTable;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use trinity_sim::cluster_graph::ClusterGraph;
use trinity_sim::ids::{MachineId, VertexId};
use trinity_sim::MemoryCloud;

/// Runs `work` once per machine index, fanning the machines out over
/// `threads` worker threads with dynamic work-stealing (an atomic cursor over
/// the machine list, so unevenly-loaded machines balance). Results are
/// returned in machine order regardless of scheduling, which is what lets
/// callers merge them deterministically. `threads <= 1` runs inline on the
/// calling thread — the exact serial execution.
///
/// A panic on any worker propagates to the caller.
fn run_per_machine<R, F>(num_machines: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || num_machines <= 1 {
        return (0..num_machines).map(work).collect();
    }
    let workers = threads.min(num_machines);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(num_machines);
    slots.resize_with(num_machines, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let work = &work;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= num_machines {
                            break;
                        }
                        done.push((i, work(i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("machine worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every machine index was processed"))
        .collect()
}

/// Per-machine output of one exploration step.
struct MachineExplore {
    table: ResultTable,
    counters: ExploreCounters,
    compute_us: f64,
}

/// Per-machine output of the load-set join step.
struct MachineJoin {
    /// `None` when the machine had no head-STwig results (it contributes
    /// nothing, per §5.3).
    joined: Option<ResultTable>,
    counters: JoinCounters,
    compute_us: f64,
    rows_received: u64,
}

/// The centrally-computed query plan broadcast to every machine.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Ordered STwig decomposition (Algorithm 2).
    pub stwigs: Vec<STwig>,
    /// The query-specific cluster graph.
    pub cluster: ClusterGraph,
    /// Head STwig selection and root distances.
    pub head: HeadSelection,
}

/// Builds the query plan: decomposition + ordering, cluster graph, head
/// STwig and the data needed for load sets.
pub fn plan_query(cloud: &MemoryCloud, query: &QueryGraph) -> Result<QueryPlan, StwigError> {
    let stwigs = decompose_ordered(query, cloud)?;
    let cluster = ClusterGraph::build(cloud.catalog(), &query.label_edges());
    if stwigs.is_empty() {
        return Err(StwigError::Internal(
            "plan_query requires a query with at least one edge".into(),
        ));
    }
    let head = select_head(query, &stwigs, &cluster);
    Ok(QueryPlan {
        stwigs,
        cluster,
        head,
    })
}

/// Runs a subgraph query with every logical machine participating, as in
/// §4.3. Returns the union of per-machine results (disjoint by construction)
/// plus per-machine metrics and the simulated makespan.
pub fn match_query_distributed(
    cloud: &MemoryCloud,
    query: &QueryGraph,
    config: &MatchConfig,
) -> Result<MatchOutput, StwigError> {
    let started = Instant::now();
    cloud.reset_traffic();
    let num_machines = cloud.num_machines();
    let mut metrics = QueryMetrics::default();
    let mut machine_metrics: Vec<MachineMetrics> = (0..num_machines)
        .map(|k| MachineMetrics {
            machine: k as u16,
            ..Default::default()
        })
        .collect();

    // Single-vertex queries: a per-machine label scan.
    if query.num_edges() == 0 {
        let v0 = query.vertices().next().ok_or(StwigError::EmptyQuery)?;
        let mut table = ResultTable::new(vec![v0]);
        for k in cloud.machines() {
            for &id in cloud.get_ids(k, query.label(v0)) {
                table.push_row(&[id]);
            }
        }
        if let Some(limit) = config.max_results {
            if table.num_rows() > limit {
                metrics.truncated = true;
            }
            table.truncate(limit);
        }
        metrics.matches_found = table.num_rows() as u64;
        metrics.machines = machine_metrics;
        finalize(&mut metrics, cloud, started);
        return Ok(MatchOutput { table, metrics });
    }

    // ---- 1. Planning (proxy side) ----
    let plan = plan_query(cloud, query)?;
    metrics.num_stwigs = plan.stwigs.len();

    // ---- 2. Exploration with global binding synchronization ----
    // per_machine_tables[k][t] = G_k(q_t)
    let mut per_machine_tables: Vec<Vec<ResultTable>> =
        vec![Vec::with_capacity(plan.stwigs.len()); num_machines];
    let mut bindings = Bindings::new(query.num_vertices());
    let mut explore = ExploreCounters::default();
    let threads = config.resolved_num_threads();

    for stwig in plan.stwigs.iter() {
        // Every machine explores this STwig in parallel against the bindings
        // snapshot from the previous barrier; counters and tables come back
        // thread-locally and are merged in machine order.
        let results = run_per_machine(num_machines, threads, |ki| {
            let k = MachineId(ki as u16);
            let t0 = Instant::now();
            let roots = local_roots(cloud, k, query, stwig, &bindings, config);
            let mut counters = ExploreCounters::default();
            let table = match_stwig(
                cloud,
                k,
                query,
                stwig,
                &roots,
                &bindings,
                config,
                &mut counters,
            );
            MachineExplore {
                table,
                counters,
                compute_us: t0.elapsed().as_secs_f64() * 1e6,
            }
        });
        let mut new_tables: Vec<ResultTable> = Vec::with_capacity(num_machines);
        for (ki, result) in results.into_iter().enumerate() {
            explore.merge(&result.counters);
            let mm = &mut machine_metrics[ki];
            mm.compute_us += result.compute_us;
            mm.rows_produced += result.table.num_rows() as u64;
            new_tables.push(result.table);
        }

        // Synchronize bindings (barrier): the global binding of each STwig
        // vertex is the union of what every machine discovered. Charge the
        // broadcast.
        if config.use_bindings {
            let mut stwig_bindings = Bindings::new(query.num_vertices());
            for (ki, table) in new_tables.iter().enumerate() {
                let mut local = Bindings::new(query.num_vertices());
                local.update_from_table(table);
                if ki == 0 {
                    stwig_bindings = local;
                } else {
                    stwig_bindings.union_in_place(&local);
                }
            }
            // Broadcast volume: each machine ships its newly-discovered
            // binding entries to every other machine.
            for (k, table) in new_tables.iter().enumerate() {
                let entries = table.num_rows() as u64 * table.width() as u64;
                for j in cloud.machines() {
                    if j.index() != k {
                        cloud.ship_rows(MachineId(k as u16), j, entries, 1);
                    }
                }
            }
            // Merge into the running bindings (intersecting with what previous
            // STwigs already established for shared vertices).
            for &col in stwig_vertices(stwig).iter() {
                if let Some(set) = stwig_bindings.get(col) {
                    bindings.bind(col, set.clone());
                }
            }
        }

        let total_rows: usize = new_tables.iter().map(|t| t.num_rows()).sum();
        metrics.stwig_rows.push(total_rows as u64);
        for (k, table) in new_tables.into_iter().enumerate() {
            per_machine_tables[k].push(table);
        }
        if total_rows == 0 {
            // No machine found a match for this STwig: the query has no answer.
            metrics.explore = explore;
            metrics.machines = machine_metrics;
            let table = ResultTable::new(query.vertices().collect());
            finalize(&mut metrics, cloud, started);
            return Ok(MatchOutput { table, metrics });
        }
    }
    metrics.explore = explore;

    // ---- 3. Per-machine join over load sets ----
    // Each machine assembles its R_k tables and joins them independently, so
    // the whole step fans out in parallel; the union below runs on the
    // coordinating thread in machine order.
    let join_results = run_per_machine(num_machines, threads, |ki| {
        let k = MachineId(ki as u16);
        let t0 = Instant::now();
        // Assemble R_k(q_t) for every STwig t.
        let mut rk_tables: Vec<ResultTable> = Vec::with_capacity(plan.stwigs.len());
        let mut received = 0u64;
        for (t, _stwig) in plan.stwigs.iter().enumerate() {
            let mut rk = per_machine_tables[ki][t].clone();
            for j in load_set(&plan.cluster, &plan.head, k, t) {
                let remote = &per_machine_tables[j.index()][t];
                if remote.is_empty() {
                    continue;
                }
                cloud.ship_rows(j, k, remote.num_rows() as u64, remote.width() as u64);
                received += remote.num_rows() as u64;
                rk.append(remote);
            }
            rk.dedup_rows();
            rk_tables.push(rk);
        }

        // If this machine has no head-STwig results it contributes nothing.
        if rk_tables[plan.head.head_index].is_empty() {
            return MachineJoin {
                joined: None,
                counters: JoinCounters::default(),
                compute_us: t0.elapsed().as_secs_f64() * 1e6,
                rows_received: received,
            };
        }
        let mut counters = JoinCounters::default();
        let joined = pipelined_join(&rk_tables, config, &mut counters);
        MachineJoin {
            joined: Some(joined),
            counters,
            compute_us: t0.elapsed().as_secs_f64() * 1e6,
            rows_received: received,
        }
    });

    let mut join_counters = JoinCounters::default();
    let mut final_table: Option<ResultTable> = None;
    // Rows each machine appended to the final table, in append order; used to
    // re-attribute per-machine match counts after global truncation.
    let mut contributions: Vec<(usize, u64)> = Vec::new();
    for (ki, result) in join_results.into_iter().enumerate() {
        join_counters.merge(&result.counters);
        let mm = &mut machine_metrics[ki];
        mm.rows_received += result.rows_received;
        mm.compute_us += result.compute_us;
        let Some(joined) = result.joined else {
            continue;
        };
        mm.matches_found = joined.num_rows() as u64;
        contributions.push((ki, joined.num_rows() as u64));

        match &mut final_table {
            None => final_table = Some(joined),
            Some(acc) => {
                // Columns may differ in order across machines; re-project.
                if acc.columns() == joined.columns() {
                    acc.append(&joined);
                } else {
                    let mut row_buf = Vec::with_capacity(acc.width());
                    for r in 0..joined.num_rows() {
                        row_buf.clear();
                        for &c in acc.columns() {
                            row_buf.push(joined.value(r, c));
                        }
                        acc.push_row(&row_buf);
                    }
                }
            }
        }
    }
    metrics.join = join_counters;

    let mut table = final_table.unwrap_or_else(|| ResultTable::new(query.vertices().collect()));
    if let Some(limit) = config.max_results {
        if table.num_rows() > limit {
            metrics.truncated = true;
        }
        table.truncate(limit);
        // Re-attribute per-machine match counts to the rows that survived the
        // global truncation (the final table keeps a prefix in append order).
        let mut remaining = table.num_rows() as u64;
        for &(machine, produced) in &contributions {
            let kept = produced.min(remaining);
            machine_metrics[machine].matches_found = kept;
            remaining -= kept;
        }
    }
    metrics.matches_found = table.num_rows() as u64;
    metrics.machines = machine_metrics;
    finalize(&mut metrics, cloud, started);
    Ok(MatchOutput { table, metrics })
}

/// Root candidates for `stwig` on machine `k`: locally-owned vertices with
/// the root label, filtered by the (global) binding set when bound.
fn local_roots(
    cloud: &MemoryCloud,
    k: MachineId,
    query: &QueryGraph,
    stwig: &STwig,
    bindings: &Bindings,
    config: &MatchConfig,
) -> Vec<VertexId> {
    let postings = cloud.get_ids(k, query.label(stwig.root));
    if config.use_bindings {
        if let Some(bound) = bindings.get(stwig.root) {
            return postings
                .iter()
                .copied()
                .filter(|v| bound.contains(v))
                .collect();
        }
    }
    postings.to_vec()
}

fn stwig_vertices(stwig: &STwig) -> Vec<crate::query::QVid> {
    let set: HashSet<_> = stwig.vertices().collect();
    let mut v: Vec<_> = set.into_iter().collect();
    v.sort_unstable();
    v
}

fn finalize(metrics: &mut QueryMetrics, cloud: &MemoryCloud, started: Instant) {
    let traffic = cloud.traffic();
    metrics.network_messages = traffic.total_messages();
    metrics.network_bytes = traffic.total_bytes();
    metrics.wall_us = started.elapsed().as_secs_f64() * 1e6;
    // Per-machine communication time and simulated makespan.
    let mut makespan: f64 = 0.0;
    for mm in &mut metrics.machines {
        mm.comm_us = cloud
            .network()
            .simulated_send_time_us(MachineId(mm.machine));
        makespan = makespan.max(mm.compute_us + mm.comm_us);
    }
    if metrics.machines.is_empty() {
        metrics.simulated_us = metrics.wall_us + cloud.network().simulated_total_time_us();
    } else {
        metrics.simulated_us = makespan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::match_query;
    use crate::verify::{canonical_rows, verify_all};
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn sample_cloud(machines: usize) -> MemoryCloud {
        // A slightly larger labeled graph with multiple triangles and squares.
        let mut gb = GraphBuilder::new_undirected();
        for i in 0..10u64 {
            gb.add_vertex(v(i), "a");
        }
        for i in 10..30u64 {
            gb.add_vertex(v(i), "b");
        }
        for i in 30..50u64 {
            gb.add_vertex(v(i), "c");
        }
        for i in 50..55u64 {
            gb.add_vertex(v(i), "d");
        }
        // a_i - b_{10+2i}, b_{10+2i} - c_{30+2i}, c_{30+2i} - a_i (triangles)
        for i in 0..10u64 {
            gb.add_edge(v(i), v(10 + 2 * i));
            gb.add_edge(v(10 + 2 * i), v(30 + 2 * i));
            gb.add_edge(v(30 + 2 * i), v(i));
        }
        // extra edges to d vertices
        for i in 0..5u64 {
            gb.add_edge(v(50 + i), v(i));
            gb.add_edge(v(50 + i), v(11 + 2 * i));
        }
        gb.build(machines, CostModel::default())
    }

    fn triangle_query(cloud: &MemoryCloud) -> QueryGraph {
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(cloud, "a").unwrap();
        let b = qb.vertex_by_name(cloud, "b").unwrap();
        let c = qb.vertex_by_name(cloud, "c").unwrap();
        qb.edge(a, b).edge(b, c).edge(c, a);
        qb.build().unwrap()
    }

    #[test]
    fn distributed_equals_single_machine() {
        for machines in [1usize, 2, 4, 8] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let single = match_query(&cloud, &query, &MatchConfig::default()).unwrap();
            let distributed =
                match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
            assert_eq!(
                canonical_rows(&query, &single.table),
                canonical_rows(&query, &distributed.table),
                "machines = {machines}"
            );
            verify_all(&cloud, &query, &distributed.table).unwrap();
            assert_eq!(distributed.num_matches(), 10);
        }
    }

    #[test]
    fn per_machine_results_are_disjoint() {
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        // No duplicate embeddings in the union.
        let rows = canonical_rows(&query, &out.table);
        assert_eq!(rows.len(), out.num_matches());
    }

    #[test]
    fn four_vertex_query_with_d() {
        let cloud = sample_cloud(4);
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(&cloud, "a").unwrap();
        let b = qb.vertex_by_name(&cloud, "b").unwrap();
        let c = qb.vertex_by_name(&cloud, "c").unwrap();
        let d = qb.vertex_by_name(&cloud, "d").unwrap();
        qb.edge(a, b).edge(b, c).edge(c, a).edge(d, a).edge(d, b);
        let query = qb.build().unwrap();
        let single = match_query(&cloud, &query, &MatchConfig::default()).unwrap();
        let distributed = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(
            canonical_rows(&query, &single.table),
            canonical_rows(&query, &distributed.table)
        );
        verify_all(&cloud, &query, &distributed.table).unwrap();
    }

    #[test]
    fn no_match_distributed_query() {
        let cloud = sample_cloud(3);
        let mut qb = QueryGraph::builder();
        let d1 = qb.vertex_by_name(&cloud, "d").unwrap();
        let d2 = qb.vertex_by_name(&cloud, "d").unwrap();
        qb.edge(d1, d2);
        let query = qb.build().unwrap();
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(out.num_matches(), 0);
    }

    #[test]
    fn single_vertex_distributed_query() {
        let cloud = sample_cloud(3);
        let mut qb = QueryGraph::builder();
        qb.vertex_by_name(&cloud, "d").unwrap();
        let query = qb.build().unwrap();
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(out.num_matches(), 5);
    }

    #[test]
    fn metrics_report_per_machine_breakdown() {
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        let out = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        assert_eq!(out.metrics.machines.len(), 4);
        let total_matches: u64 = out.metrics.machines.iter().map(|m| m.matches_found).sum();
        assert_eq!(total_matches, out.num_matches() as u64);
        assert!(out.metrics.simulated_us > 0.0);
        assert!(out.metrics.network_messages > 0);
    }

    #[test]
    fn result_limit_is_respected() {
        let cloud = sample_cloud(2);
        let query = triangle_query(&cloud);
        let cfg = MatchConfig::default().with_max_results(Some(3));
        let out = match_query_distributed(&cloud, &query, &cfg).unwrap();
        assert_eq!(out.num_matches(), 3);
        verify_all(&cloud, &query, &out.table).unwrap();
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Any worker-thread count must return the exact table the serial
        // executor returns — same rows, same order, same per-machine totals.
        for machines in [1usize, 3, 4, 8] {
            let cloud = sample_cloud(machines);
            let query = triangle_query(&cloud);
            let serial_cfg = MatchConfig::default().with_num_threads(Some(1));
            let serial = match_query_distributed(&cloud, &query, &serial_cfg).unwrap();
            for threads in [2usize, 4, 7] {
                let cfg = MatchConfig::default().with_num_threads(Some(threads));
                let parallel = match_query_distributed(&cloud, &query, &cfg).unwrap();
                assert_eq!(
                    serial.table, parallel.table,
                    "machines = {machines}, threads = {threads}"
                );
                assert_eq!(
                    serial.metrics.matches_found, parallel.metrics.matches_found,
                    "machines = {machines}, threads = {threads}"
                );
                assert_eq!(
                    serial.metrics.stwig_rows, parallel.metrics.stwig_rows,
                    "machines = {machines}, threads = {threads}"
                );
                assert_eq!(serial.metrics.explore, parallel.metrics.explore);
                assert_eq!(serial.metrics.join, parallel.metrics.join);
                assert_eq!(
                    serial.metrics.network_bytes, parallel.metrics.network_bytes,
                    "traffic totals are order-independent atomic sums"
                );
                for (s, p) in serial
                    .metrics
                    .machines
                    .iter()
                    .zip(parallel.metrics.machines.iter())
                {
                    assert_eq!(s.machine, p.machine);
                    assert_eq!(s.rows_produced, p.rows_produced);
                    assert_eq!(s.rows_received, p.rows_received);
                    assert_eq!(s.matches_found, p.matches_found);
                }
            }
        }
    }

    #[test]
    fn default_thread_count_matches_serial() {
        // The default config resolves num_threads to the host parallelism;
        // results must still be identical to the serial run.
        let cloud = sample_cloud(7);
        let query = triangle_query(&cloud);
        let auto = match_query_distributed(&cloud, &query, &MatchConfig::default()).unwrap();
        let serial_cfg = MatchConfig::default().with_num_threads(Some(1));
        let serial = match_query_distributed(&cloud, &query, &serial_cfg).unwrap();
        assert_eq!(auto.table, serial.table);
    }

    #[test]
    fn run_per_machine_orders_results_and_balances() {
        // Results come back in machine order for any thread count, even with
        // skewed per-machine work.
        for threads in [1usize, 2, 3, 8] {
            let out = run_per_machine(13, threads, |i| {
                if i % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i * 10
            });
            assert_eq!(out, (0..13).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn plan_exposes_head_and_cluster() {
        let cloud = sample_cloud(4);
        let query = triangle_query(&cloud);
        let plan = plan_query(&cloud, &query).unwrap();
        assert!(!plan.stwigs.is_empty());
        assert!(plan.head.head_index < plan.stwigs.len());
        assert_eq!(plan.cluster.num_machines(), 4);
    }
}
