//! Streaming result delivery and per-query control (deadlines,
//! cancellation).
//!
//! A serving system cannot let one hub-heavy query hold a worker and its
//! memory hostage: every query carries [`QueryOptions`] — an optional
//! deadline and an optional [`CancelToken`] — and the streaming executor
//! checks them cooperatively at every superstep flush and join round. Rows
//! are delivered through a [`ResultSink`] *as they are produced* instead of
//! a materialized table, so a first-k client sees its first embedding long
//! before exhaustive enumeration would finish, and an interrupted query
//! still hands over the valid rows it produced (partial delivery + a
//! [`crate::metrics::QueryOutcome`] describing why it stopped).

use crate::query::QVid;
use crate::table::ResultTable;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag: clone it, hand one copy to the query and
/// keep the other; [`CancelToken::cancel`] makes every in-flight check on
/// any clone observe the cancellation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Per-query serving options, orthogonal to the algorithmic knobs in
/// [`crate::config::MatchConfig`].
///
/// Besides the execution controls (deadline, cancellation, result mode),
/// options carry the *serving identity* of a query — the
/// [`crate::serve::TenantId`] it is charged to and its
/// [`crate::serve::Priority`] within that tenant — so a fully-specified
/// request can be built with one fluent chain and handed to
/// [`crate::engine::QueryEngine::submit`] (via
/// [`crate::serve::QueryRequest::with_options`]).
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Wall-clock budget measured from query admission. When it expires the
    /// query stops at the next cooperative check and reports
    /// [`crate::metrics::QueryOutcome::DeadlineExceeded`]; rows already
    /// streamed remain delivered. Submitted queries may additionally be
    /// rejected or shed when the engine predicts the deadline cannot be met
    /// (see [`crate::serve`]).
    pub deadline: Option<Duration>,
    /// External cancellation; see [`CancelToken`]. Reported as
    /// [`crate::metrics::QueryOutcome::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// The tenant this query is charged to and scheduled under; `None`
    /// means the submitting request's tenant (or the default tenant).
    pub tenant: Option<crate::serve::TenantId>,
    /// Scheduling priority within the tenant.
    pub priority: crate::serve::Priority,
    /// Per-query override of the engine's [`crate::config::ResultMode`]
    /// (`None` inherits the engine configuration).
    pub result_mode: Option<crate::config::ResultMode>,
}

impl QueryOptions {
    /// Options with neither deadline nor cancellation.
    pub fn none() -> Self {
        QueryOptions::default()
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the tenant the query is charged to.
    pub fn with_tenant(mut self, tenant: impl Into<crate::serve::TenantId>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the scheduling priority within the tenant.
    pub fn with_priority(mut self, priority: crate::serve::Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Overrides the engine's result mode for this query.
    pub fn with_result_mode(mut self, mode: crate::config::ResultMode) -> Self {
        self.result_mode = Some(mode);
        self
    }
}

/// Why a cooperative check asked the query to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The [`CancelToken`] fired.
    Cancelled,
    /// The deadline expired.
    DeadlineExceeded,
}

/// The resolved, checkable form of [`QueryOptions`]: the deadline pinned to
/// an absolute [`Instant`] at query admission. Checks are cheap (one atomic
/// load, plus one clock read while a deadline is armed) and latch: once a
/// check observes an interrupt, every later check reports the same one, so
/// all layers of the executor agree on the outcome.
#[derive(Debug)]
pub struct QueryControl {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// Latched interrupt (0 = none, 1 = cancelled, 2 = deadline), so the
    /// deadline race (cancel and expiry in the same superstep) resolves to
    /// whichever check fired first.
    latched: std::sync::atomic::AtomicU8,
}

impl QueryControl {
    /// Resolves `options` against the query's admission time.
    pub fn new(options: &QueryOptions, admitted: Instant) -> Self {
        QueryControl {
            deadline: options.deadline.map(|d| admitted + d),
            cancel: options.cancel.clone(),
            latched: std::sync::atomic::AtomicU8::new(0),
        }
    }

    /// The cooperative check: returns the interrupt to honor, if any.
    pub fn check(&self) -> Option<Interrupt> {
        match self.latched.load(Ordering::Acquire) {
            1 => return Some(Interrupt::Cancelled),
            2 => return Some(Interrupt::DeadlineExceeded),
            _ => {}
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                let _ = self
                    .latched
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
                return self.check();
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                let _ = self
                    .latched
                    .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire);
                return self.check();
            }
        }
        None
    }

    /// Whether an interrupt is pending (convenience for loop guards).
    pub fn interrupted(&self) -> bool {
        self.check().is_some()
    }
}

/// Receives streamed embedding rows.
///
/// [`ResultSink::begin`] is called exactly once before the first row with
/// the column order every subsequent row uses — for streamed queries that is
/// the *canonical* order (query vertices ascending), independent of which
/// machine produced a row or which join order it chose. `begin` is called
/// even when the query ends up producing no rows.
pub trait ResultSink {
    /// Announces the column order of all subsequent rows.
    fn begin(&mut self, columns: &[QVid]) {
        let _ = columns;
    }

    /// Delivers one valid embedding.
    fn row(&mut self, row: &[trinity_sim::ids::VertexId]);
}

/// Every `FnMut(&[VertexId])` closure is a sink (column order implied).
impl<F: FnMut(&[trinity_sim::ids::VertexId])> ResultSink for F {
    fn row(&mut self, row: &[trinity_sim::ids::VertexId]) {
        self(row)
    }
}

/// A sink that materializes the stream into a [`ResultTable`] (canonical
/// column order) — the bridge from streaming delivery back to the
/// table-shaped API.
#[derive(Debug, Default)]
pub struct CollectSink {
    table: Option<ResultTable>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The collected table; empty-with-no-columns only if the query never
    /// started streaming (errored before `begin`).
    pub fn into_table(self) -> Option<ResultTable> {
        self.table
    }

    /// Rows collected so far.
    pub fn num_rows(&self) -> usize {
        self.table.as_ref().map_or(0, ResultTable::num_rows)
    }
}

impl ResultSink for CollectSink {
    fn begin(&mut self, columns: &[QVid]) {
        self.table = Some(ResultTable::new(columns.to_vec()));
    }

    fn row(&mut self, row: &[trinity_sim::ids::VertexId]) {
        self.table
            .as_mut()
            .expect("begin precedes rows")
            .push_row(row);
    }
}

/// A sink that forwards each row to an [`std::sync::mpsc`] channel — the
/// natural adapter when a consumer thread renders results while the query
/// is still running. Send failures (receiver dropped) are ignored; pair the
/// sink with a [`CancelToken`] to actually stop the query when the consumer
/// goes away.
#[derive(Debug)]
pub struct ChannelSink {
    sender: std::sync::mpsc::Sender<Vec<trinity_sim::ids::VertexId>>,
}

impl ChannelSink {
    /// Wraps a channel sender.
    pub fn new(sender: std::sync::mpsc::Sender<Vec<trinity_sim::ids::VertexId>>) -> Self {
        ChannelSink { sender }
    }
}

impl ResultSink for ChannelSink {
    fn row(&mut self, row: &[trinity_sim::ids::VertexId]) {
        let _ = self.sender.send(row.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;
    use trinity_sim::ids::VertexId;

    #[test]
    fn cancel_token_propagates_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn control_latches_first_interrupt() {
        let token = CancelToken::new();
        let options = QueryOptions::none()
            .with_cancel(token.clone())
            .with_deadline(Duration::ZERO);
        // Deadline already expired at admission; the first check latches it
        // even if cancellation arrives later.
        let control = QueryControl::new(&options, Instant::now() - Duration::from_secs(1));
        assert_eq!(control.check(), Some(Interrupt::DeadlineExceeded));
        token.cancel();
        assert_eq!(control.check(), Some(Interrupt::DeadlineExceeded));
        assert!(control.interrupted());
    }

    #[test]
    fn control_without_options_never_interrupts() {
        let control = QueryControl::new(&QueryOptions::none(), Instant::now());
        assert_eq!(control.check(), None);
        assert!(!control.interrupted());
    }

    #[test]
    fn cancellation_is_observed_by_check() {
        let token = CancelToken::new();
        let control = QueryControl::new(
            &QueryOptions::none().with_cancel(token.clone()),
            Instant::now(),
        );
        assert_eq!(control.check(), None);
        token.cancel();
        assert_eq!(control.check(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn collect_sink_materializes_rows_in_order() {
        let mut sink = CollectSink::new();
        sink.begin(&[QVid(0), QVid(1)]);
        sink.row(&[VertexId(1), VertexId(2)]);
        sink.row(&[VertexId(3), VertexId(4)]);
        assert_eq!(sink.num_rows(), 2);
        let table = sink.into_table().unwrap();
        assert_eq!(table.row(1), &[VertexId(3), VertexId(4)]);
    }

    #[test]
    fn channel_sink_forwards_and_survives_dropped_receiver() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut sink = ChannelSink::new(tx);
        sink.row(&[VertexId(7)]);
        assert_eq!(rx.recv().unwrap(), vec![VertexId(7)]);
        drop(rx);
        sink.row(&[VertexId(8)]); // must not panic
    }

    #[test]
    fn closure_sinks_count_rows() {
        let mut n = 0usize;
        {
            let mut sink = |_row: &[VertexId]| n += 1;
            let sink: &mut dyn ResultSink = &mut sink;
            sink.begin(&[QVid(0)]);
            sink.row(&[VertexId(1)]);
            sink.row(&[VertexId(2)]);
        }
        assert_eq!(n, 2);
    }
}
