//! Binding information (§4.2, step 2).
//!
//! After an STwig is processed, each of its query vertices becomes *bound*:
//! the set `H_v` of data vertices that matched it so far. Later STwigs use
//! these sets to restrict root candidates and filter children, which is the
//! exploration-side pruning that replaces most of the join work.

use crate::hash::VertexSet;
use crate::query::QVid;
use crate::table::ResultTable;
use trinity_sim::ids::VertexId;

/// Per-query-vertex binding sets. `None` means the vertex is still unbound
/// (any data vertex with the right label is eligible).
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    sets: Vec<Option<VertexSet>>,
}

impl Bindings {
    /// Creates unbound bindings for a query with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Bindings {
            sets: vec![None; num_vertices],
        }
    }

    /// Whether query vertex `q` is bound.
    pub fn is_bound(&self, q: QVid) -> bool {
        self.sets[q.index()].is_some()
    }

    /// The binding set of `q`, if bound.
    pub fn get(&self, q: QVid) -> Option<&VertexSet> {
        self.sets[q.index()].as_ref()
    }

    /// Whether data vertex `v` is admissible for query vertex `q`
    /// (always true when `q` is unbound).
    #[inline]
    pub fn admits(&self, q: QVid, v: VertexId) -> bool {
        match &self.sets[q.index()] {
            None => true,
            Some(s) => s.contains(&v),
        }
    }

    /// Number of bound query vertices.
    pub fn num_bound(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    /// Binds `q` to exactly `values` if unbound, or intersects the existing
    /// binding with `values` if already bound.
    pub fn bind(&mut self, q: QVid, values: VertexSet) {
        let slot = &mut self.sets[q.index()];
        match slot {
            None => *slot = Some(values),
            Some(existing) => existing.retain(|v| values.contains(v)),
        }
    }

    /// Updates bindings from the result table of one processed STwig: every
    /// column of the table binds (or narrows) its query vertex to the set of
    /// values appearing in that column.
    pub fn update_from_table(&mut self, table: &ResultTable) {
        for &col in table.columns() {
            let values = table.distinct_values(col);
            self.bind(col, values);
        }
    }

    /// Total number of vertex ids stored across all binding sets (used to
    /// charge binding-synchronization traffic).
    pub fn total_entries(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.as_ref().map(|x| x.len()).unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    #[test]
    fn unbound_admits_everything() {
        let b = Bindings::new(3);
        assert!(!b.is_bound(q(0)));
        assert!(b.admits(q(0), v(42)));
        assert_eq!(b.num_bound(), 0);
    }

    #[test]
    fn bind_then_admit() {
        let mut b = Bindings::new(2);
        b.bind(q(0), [v(1), v(2)].into_iter().collect());
        assert!(b.is_bound(q(0)));
        assert!(b.admits(q(0), v(1)));
        assert!(!b.admits(q(0), v(3)));
        assert_eq!(b.get(q(0)).unwrap().len(), 2);
        assert_eq!(b.num_bound(), 1);
    }

    #[test]
    fn rebinding_intersects() {
        let mut b = Bindings::new(1);
        b.bind(q(0), [v(1), v(2), v(3)].into_iter().collect());
        b.bind(q(0), [v(2), v(3), v(4)].into_iter().collect());
        let s = b.get(q(0)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&v(2)) && s.contains(&v(3)));
    }

    #[test]
    fn update_from_table_binds_columns() {
        let mut t = ResultTable::new(vec![q(0), q(1)]);
        t.push_row(&[v(10), v(20)]);
        t.push_row(&[v(11), v(20)]);
        let mut b = Bindings::new(3);
        b.update_from_table(&t);
        assert_eq!(b.get(q(0)).unwrap().len(), 2);
        assert_eq!(b.get(q(1)).unwrap().len(), 1);
        assert!(!b.is_bound(q(2)));
    }

    #[test]
    fn total_entries_counts_everything() {
        let mut b = Bindings::new(2);
        b.bind(q(0), [v(1), v(2)].into_iter().collect());
        b.bind(q(1), [v(3)].into_iter().collect());
        assert_eq!(b.total_entries(), 3);
    }
}
