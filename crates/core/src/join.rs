//! Join processing (§4.2 step 3): hash joins over STwig result tables,
//! sample-based join-cardinality estimation and greedy join-order selection.
//!
//! The join is the per-row hot path of the whole matcher, so the build and
//! probe sides avoid heap allocation: the shared-column key is a bare `u64`
//! when one column is shared (the common case for STwig decompositions), a
//! stack-allocated [`InlineKey`] for 2–4 shared columns, and only degrades to
//! a `Vec` key beyond that. The build index is a chained hash index —
//! one pre-sized map from key to chain head/tail plus one pre-sized `next`
//! array — so building it performs no per-row allocation either.

use crate::hash::{FxHashMap, InlineKey, INLINE_KEY_COLUMNS};
use crate::metrics::JoinCounters;
use crate::query::QVid;
use crate::stream::QueryControl;
use crate::table::ResultTable;
use std::collections::hash_map::Entry;
use std::hash::Hash;
use trinity_sim::ids::VertexId;

/// Output rows between cooperative deadline/cancel checks inside one probe
/// pass: a single block can fan out into millions of rows, so the join must
/// observe interrupts without waiting for the round boundary. The check is
/// an atomic load; with no control in play the cost is one predictable
/// branch.
const CONTROL_CHECK_JOIN_ROWS: u64 = 256;

/// Sentinel terminating a row chain in [`ChainedIndex`].
const NO_ROW: u32 = u32::MAX;

/// A chained hash index over the rows of a build-side table: `map` points at
/// the first and last row of each key's chain and `next` links rows with the
/// same key in insertion (ascending) order. Both structures are pre-sized
/// from the row count, so inserting performs no per-row allocation.
struct ChainedIndex<K> {
    map: FxHashMap<K, (u32, u32)>,
    next: Vec<u32>,
}

impl<K: Hash + Eq> ChainedIndex<K> {
    fn with_rows(rows: usize) -> Self {
        assert!(
            rows < NO_ROW as usize,
            "build side exceeds u32 row indexing"
        );
        ChainedIndex {
            map: FxHashMap::with_capacity_and_hasher(rows, Default::default()),
            next: vec![NO_ROW; rows],
        }
    }

    #[inline]
    fn insert(&mut self, key: K, row: u32) {
        match self.map.entry(key) {
            Entry::Occupied(mut e) => {
                let (_, tail) = e.get_mut();
                self.next[*tail as usize] = row;
                *tail = row;
            }
            Entry::Vacant(e) => {
                e.insert((row, row));
            }
        }
    }

    /// Iterates the rows stored under `key` in insertion order.
    #[inline]
    fn probe(&self, key: &K) -> ChainIter<'_> {
        ChainIter {
            next: &self.next,
            cur: self.map.get(key).map_or(NO_ROW, |&(head, _)| head),
        }
    }
}

struct ChainIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.cur == NO_ROW {
            return None;
        }
        let row = self.cur as usize;
        self.cur = self.next[row];
        Some(row)
    }
}

/// The shared columns of a left schema and a right table as
/// `(left_index, right_index)` pairs.
fn shared_columns(left_columns: &[QVid], right: &ResultTable) -> Vec<(usize, usize)> {
    left_columns
        .iter()
        .enumerate()
        .filter_map(|(li, lc)| right.column_index(*lc).map(|ri| (li, ri)))
        .collect()
}

/// The build-side hash index, pre-built over the shared columns at one of
/// the three key widths [`hash_join`] monomorphizes over.
enum BuildIndex {
    /// No shared column: cartesian product, nothing to index.
    Cross,
    Single(ChainedIndex<u64>),
    Inline(ChainedIndex<InlineKey>),
    Wide(ChainedIndex<Vec<VertexId>>),
}

/// A hash join whose build side has been indexed once and can be probed by
/// many left tables sharing one column schema.
///
/// This is the shape of the block-based pipelined join (§4.2 step 3): every
/// round probes the *same* rest tables with a different driver block, so
/// rebuilding (or worse, cloning) the build side per round would make
/// per-round work proportional to the rest tables instead of the block.
/// Prepare once against the left schema, then [`PreparedJoin::join`] each
/// block.
pub struct PreparedJoin<'a> {
    right: &'a ResultTable,
    /// Shared columns as `(left_index, right_index)` pairs, in left-schema
    /// order.
    shared: Vec<(usize, usize)>,
    /// Right-side columns that are not shared (appended to the output).
    right_extra: Vec<usize>,
    index: BuildIndex,
}

impl<'a> PreparedJoin<'a> {
    /// Indexes `right` for natural joins against left tables whose columns
    /// are exactly `left_columns`.
    pub fn new(left_columns: &[QVid], right: &'a ResultTable) -> Self {
        let shared = shared_columns(left_columns, right);
        let right_extra: Vec<usize> = (0..right.width())
            .filter(|ri| !shared.iter().any(|&(_, r)| r == *ri))
            .collect();
        let right_cols: Vec<usize> = shared.iter().map(|&(_, rc)| rc).collect();
        let index = match shared.len() {
            0 => BuildIndex::Cross,
            1 => {
                let rc = right_cols[0];
                BuildIndex::Single(build_index(right, |row| row[rc].0))
            }
            2..=INLINE_KEY_COLUMNS => BuildIndex::Inline(build_index(right, |row| {
                InlineKey::from_row(row, &right_cols)
            })),
            _ => BuildIndex::Wide(build_index(right, |row| {
                right_cols
                    .iter()
                    .map(|&c| row[c])
                    .collect::<Vec<VertexId>>()
            })),
        };
        PreparedJoin {
            right,
            shared,
            right_extra,
            index,
        }
    }

    /// The columns the join output will have for a left table with
    /// `left_columns`: the left columns followed by the right table's
    /// non-shared columns.
    pub fn output_columns(&self, left_columns: &[QVid]) -> Vec<QVid> {
        let mut columns = left_columns.to_vec();
        columns.extend(self.right_extra.iter().map(|&ri| self.right.columns()[ri]));
        columns
    }

    /// Probes the prepared index with every row of `left`. Semantics are
    /// identical to [`hash_join`]; `left` must have the column schema this
    /// join was prepared for.
    pub fn join(
        &self,
        left: &ResultTable,
        limit: Option<usize>,
        counters: &mut JoinCounters,
    ) -> ResultTable {
        self.join_with_control(left, limit, None, counters)
    }

    /// [`PreparedJoin::join`] with a cooperative interrupt check every
    /// [`CONTROL_CHECK_JOIN_ROWS`] output rows: an interrupted probe stops
    /// early and returns the (valid) rows produced so far. With
    /// `control = None` the output is identical to `join`.
    pub fn join_with_control(
        &self,
        left: &ResultTable,
        limit: Option<usize>,
        control: Option<&QueryControl>,
        counters: &mut JoinCounters,
    ) -> ResultTable {
        debug_assert!(
            self.shared
                .iter()
                .all(|&(lc, rc)| left.columns()[lc] == self.right.columns()[rc]),
            "left table does not match the schema this join was prepared for"
        );
        counters.joins_performed += 1;
        let mut out = ResultTable::new(self.output_columns(left.columns()));
        match &self.index {
            BuildIndex::Cross => {
                cross_join_into(
                    left,
                    self.right,
                    &self.right_extra,
                    limit,
                    control,
                    counters,
                    &mut out,
                );
            }
            BuildIndex::Single(index) => {
                let lc = self.shared[0].0;
                self.probe_into(
                    left,
                    index,
                    |row| row[lc].0,
                    limit,
                    control,
                    counters,
                    &mut out,
                );
            }
            BuildIndex::Inline(index) => {
                let left_cols: Vec<usize> = self.shared.iter().map(|&(lc, _)| lc).collect();
                self.probe_into(
                    left,
                    index,
                    |row| InlineKey::from_row(row, &left_cols),
                    limit,
                    control,
                    counters,
                    &mut out,
                );
            }
            BuildIndex::Wide(index) => {
                let left_cols: Vec<usize> = self.shared.iter().map(|&(lc, _)| lc).collect();
                self.probe_into(
                    left,
                    index,
                    |row| left_cols.iter().map(|&c| row[c]).collect::<Vec<VertexId>>(),
                    limit,
                    control,
                    counters,
                    &mut out,
                );
            }
        }
        out
    }

    /// The keyed probe core, generic over the key type so each shared-column
    /// arity monomorphizes to its own allocation-free loop.
    #[allow(clippy::too_many_arguments)]
    fn probe_into<K, LK>(
        &self,
        left: &ResultTable,
        index: &ChainedIndex<K>,
        left_key: LK,
        limit: Option<usize>,
        control: Option<&QueryControl>,
        counters: &mut JoinCounters,
        out: &mut ResultTable,
    ) where
        K: Hash + Eq,
        LK: Fn(&[VertexId]) -> K,
    {
        let mut row_buf: Vec<VertexId> = Vec::with_capacity(out.width());
        'outer: for lrow in left.rows() {
            let key = left_key(lrow);
            for ri in index.probe(&key) {
                let rrow = self.right.row(ri);
                row_buf.clear();
                row_buf.extend_from_slice(lrow);
                row_buf.extend(self.right_extra.iter().map(|&rc| rrow[rc]));
                if ResultTable::row_has_duplicates(&row_buf) {
                    counters.rows_pruned_injective += 1;
                    continue;
                }
                if counters
                    .intermediate_rows
                    .is_multiple_of(CONTROL_CHECK_JOIN_ROWS)
                    && control.is_some_and(QueryControl::interrupted)
                {
                    break 'outer;
                }
                out.push_row(&row_buf);
                counters.intermediate_rows += 1;
                if let Some(l) = limit {
                    if out.num_rows() >= l {
                        break 'outer;
                    }
                }
            }
        }
    }
}

/// Builds a chained hash index over `right`, pre-sized from its row count.
fn build_index<K, F>(right: &ResultTable, key: F) -> ChainedIndex<K>
where
    K: Hash + Eq,
    F: Fn(&[VertexId]) -> K,
{
    let mut index = ChainedIndex::with_rows(right.num_rows());
    for (ri, row) in right.rows().enumerate() {
        index.insert(key(row), ri as u32);
    }
    index
}

/// Hash-joins two tables on their shared columns (natural join).
///
/// * Output columns are `left`'s columns followed by `right`'s non-shared
///   columns.
/// * Rows that map two different query vertices to the same data vertex are
///   dropped (`enforce injectivity`): a valid embedding is a bijection.
/// * If the tables share no column the result is the (injectivity-filtered)
///   cartesian product.
/// * `limit` caps the number of output rows.
///
/// With exactly one shared column the key is a bare `u64` and neither side
/// allocates per row; 2–4 shared columns use a stack [`InlineKey`]; only a
/// wider overlap falls back to `Vec` keys. Callers that probe the same build
/// side repeatedly should hold a [`PreparedJoin`] instead.
pub fn hash_join(
    left: &ResultTable,
    right: &ResultTable,
    limit: Option<usize>,
    counters: &mut JoinCounters,
) -> ResultTable {
    PreparedJoin::new(left.columns(), right).join(left, limit, counters)
}

/// Cartesian product (no shared column), with the same injectivity filter,
/// limit handling and interrupt checks as the keyed paths.
fn cross_join_into(
    left: &ResultTable,
    right: &ResultTable,
    right_extra: &[usize],
    limit: Option<usize>,
    control: Option<&QueryControl>,
    counters: &mut JoinCounters,
    out: &mut ResultTable,
) {
    let mut row_buf: Vec<VertexId> = Vec::with_capacity(out.width());
    'outer: for lrow in left.rows() {
        for rrow in right.rows() {
            row_buf.clear();
            row_buf.extend_from_slice(lrow);
            row_buf.extend(right_extra.iter().map(|&rc| rrow[rc]));
            if ResultTable::row_has_duplicates(&row_buf) {
                counters.rows_pruned_injective += 1;
                continue;
            }
            if counters
                .intermediate_rows
                .is_multiple_of(CONTROL_CHECK_JOIN_ROWS)
                && control.is_some_and(QueryControl::interrupted)
            {
                break 'outer;
            }
            out.push_row(&row_buf);
            counters.intermediate_rows += 1;
            if let Some(l) = limit {
                if out.num_rows() >= l {
                    break 'outer;
                }
            }
        }
    }
}

/// Estimates the number of rows `left ⨝ right` would produce, by sampling up
/// to `sample_size` rows of `left` and probing a per-key count table of
/// `right` built on the shared columns (the sample-based method of
/// [Garcia-Molina et al.]). Uses the same fixed-width keys as [`hash_join`].
pub fn estimate_join_size(left: &ResultTable, right: &ResultTable, sample_size: usize) -> f64 {
    if left.is_empty() || right.is_empty() {
        return 0.0;
    }
    let shared = shared_columns(left.columns(), right);
    match shared.len() {
        0 => {
            // Cartesian product.
            left.num_rows() as f64 * right.num_rows() as f64
        }
        1 => {
            let (lc, rc) = shared[0];
            estimate_keyed(left, right, sample_size, |row| row[lc].0, |row| row[rc].0)
        }
        2..=INLINE_KEY_COLUMNS => {
            let left_cols: Vec<usize> = shared.iter().map(|&(lc, _)| lc).collect();
            let right_cols: Vec<usize> = shared.iter().map(|&(_, rc)| rc).collect();
            estimate_keyed(
                left,
                right,
                sample_size,
                |row| InlineKey::from_row(row, &left_cols),
                |row| InlineKey::from_row(row, &right_cols),
            )
        }
        _ => {
            let left_cols: Vec<usize> = shared.iter().map(|&(lc, _)| lc).collect();
            let right_cols: Vec<usize> = shared.iter().map(|&(_, rc)| rc).collect();
            estimate_keyed(
                left,
                right,
                sample_size,
                |row| left_cols.iter().map(|&c| row[c]).collect::<Vec<VertexId>>(),
                |row| {
                    right_cols
                        .iter()
                        .map(|&c| row[c])
                        .collect::<Vec<VertexId>>()
                },
            )
        }
    }
}

fn estimate_keyed<K, LK, RK>(
    left: &ResultTable,
    right: &ResultTable,
    sample_size: usize,
    left_key: LK,
    right_key: RK,
) -> f64
where
    K: Hash + Eq,
    LK: Fn(&[VertexId]) -> K,
    RK: Fn(&[VertexId]) -> K,
{
    // Count right rows per key — over a stratified sample of the right side
    // when it is large (estimation sits on the per-machine join path of
    // every query, so a full build per candidate pair would cost more than
    // the joins it orders). Sampled counts are scaled back up by the
    // sampling fraction.
    //
    // Strides are computed with a *ceiling* division so the sampled rows
    // span the whole table: a floored `n / sample` stride with a
    // sampled-count stop reads only the first `sample` rows whenever
    // `n < 2 * sample` — a pure prefix, which is systematically biased
    // because exploration tables are lexicographically sorted (low-id
    // vertices first, and on power-law graphs id correlates with degree).
    let rn = right.num_rows();
    let build_cap = sample_size.max(1).saturating_mul(8).max(512);
    let rstep = rn.div_ceil(build_cap).max(1);
    let mut key_counts: FxHashMap<K, u64> =
        FxHashMap::with_capacity_and_hasher(rn.min(build_cap) + 1, Default::default());
    let mut rsampled = 0u64;
    let mut ri = 0usize;
    while ri < rn {
        *key_counts.entry(right_key(right.row(ri))).or_insert(0) += 1;
        rsampled += 1;
        ri += rstep;
    }
    if rsampled == 0 {
        return 0.0;
    }
    let rscale = rn as f64 / rsampled as f64;
    let n = left.num_rows();
    let sample = sample_size.max(1).min(n);
    // Deterministic stratified sample: every ceil(n / sample)-th row, first
    // to last — at most `sample` rows by construction, no prefix clustering.
    let step = n.div_ceil(sample).max(1);
    let mut total_matches = 0u64;
    let mut sampled = 0u64;
    let mut i = 0usize;
    while i < n {
        let key = left_key(left.row(i));
        total_matches += key_counts.get(&key).copied().unwrap_or(0);
        sampled += 1;
        i += step;
    }
    if sampled == 0 {
        return 0.0;
    }
    (total_matches as f64 / sampled as f64) * n as f64 * rscale
}

/// Greedy left-deep join-order selection: start from the smallest table, then
/// repeatedly pick the table whose estimated join with the accumulated
/// intermediate result is cheapest, preferring tables that share at least one
/// column with it.
///
/// The intermediate is never materialized here, so each candidate is
/// estimated against the *joined-columns set*: the per-key fanout is measured
/// from the already-ordered table sharing the most columns with the
/// candidate, then scaled to the current intermediate-size estimate (see
/// [`estimate_step`]).
///
/// Returns a permutation of `0..tables.len()`.
pub fn select_join_order(tables: &[ResultTable], sample_size: usize) -> Vec<usize> {
    select_join_order_with_priors(tables, sample_size, None)
}

/// [`select_join_order`] biased by per-table selectivity priors.
///
/// `priors[i]` in `(0, 1]` is an a-priori shrink factor for table `i` —
/// e.g. the label-pair selectivity of its STwig's edges — with smaller
/// values meaning "rarer, will filter harder". Priors scale both the driver
/// choice (effective size `rows * prior`) and each candidate's step
/// estimate, so a rare-pair table is pulled earlier in the order even when
/// its sampled row count ties a common one. `None` (or a missing entry)
/// reproduces [`select_join_order`] exactly.
pub fn select_join_order_with_priors(
    tables: &[ResultTable],
    sample_size: usize,
    priors: Option<&[f64]>,
) -> Vec<usize> {
    let n = tables.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let prior = |i: usize| -> f64 {
        priors
            .and_then(|p| p.get(i).copied())
            .filter(|p| p.is_finite() && *p > 0.0)
            .unwrap_or(1.0)
    };
    let mut remaining: Vec<usize> = (0..n).collect();
    // Start from the smallest effective table (stable sort: exact ties keep
    // index order, matching the prior-free behaviour).
    remaining.sort_by(|&a, &b| {
        let ea = tables[a].num_rows() as f64 * prior(a);
        let eb = tables[b].num_rows() as f64 * prior(b);
        ea.total_cmp(&eb)
    });
    let first = remaining.remove(0);
    let mut order = vec![first];
    let mut joined_columns: Vec<QVid> = tables[first].columns().to_vec();
    let mut current_size = tables[first].num_rows() as f64 * prior(first);

    while !remaining.is_empty() {
        let mut best: Option<(usize, f64, bool)> = None; // (pos in remaining, est, shares)
        for (pos, &ti) in remaining.iter().enumerate() {
            let shares = tables[ti]
                .columns()
                .iter()
                .any(|c| joined_columns.contains(c));
            let est =
                estimate_step(tables, &order, ti, current_size, shares, sample_size) * prior(ti);
            let better = match best {
                None => true,
                Some((_, be, bshares)) => (shares && !bshares) || (shares == bshares && est < be),
            };
            if better {
                best = Some((pos, est, shares));
            }
        }
        let (pos, est, _) = best.expect("remaining not empty");
        let ti = remaining.remove(pos);
        for c in tables[ti].columns() {
            if !joined_columns.contains(c) {
                joined_columns.push(*c);
            }
        }
        current_size = est;
        order.push(ti);
    }
    order
}

/// Estimates `|acc ⨝ tables[ti]|` where `acc` is the (unmaterialized)
/// intermediate of the tables already in `order`, holding an estimated
/// `current_size` rows over the union of their columns.
///
/// `shares` says whether `ti` shares any column with that union. If not, the
/// join is a cartesian product of the intermediate with `ti`. Otherwise the
/// per-row fanout of `acc ⨝ ti` is approximated by the fanout of
/// `tables[base] ⨝ ti` for the already-ordered table `base` sharing the most
/// columns with `ti` (the best available proxy for the intermediate on the
/// join key), scaled from `|base|` rows to `current_size` rows.
fn estimate_step(
    tables: &[ResultTable],
    order: &[usize],
    ti: usize,
    current_size: f64,
    shares: bool,
    sample_size: usize,
) -> f64 {
    if !shares {
        return current_size.max(1.0) * tables[ti].num_rows() as f64;
    }
    // The already-ordered table sharing the most columns with the candidate;
    // earliest ordered table wins ties for determinism.
    let mut base = order[0];
    let mut base_shared = 0usize;
    for &tj in order {
        let cnt = tables[tj]
            .columns()
            .iter()
            .filter(|c| tables[ti].column_index(**c).is_some())
            .count();
        if cnt > base_shared {
            base = tj;
            base_shared = cnt;
        }
    }
    let pair = estimate_join_size(&tables[base], &tables[ti], sample_size).max(1.0);
    pair * (current_size.max(1.0) / tables[base].num_rows().max(1) as f64)
}

/// Joins all tables in the given order, applying a result limit.
pub fn multiway_join(
    tables: &[ResultTable],
    order: &[usize],
    limit: Option<usize>,
    counters: &mut JoinCounters,
) -> ResultTable {
    assert!(!tables.is_empty(), "cannot join zero tables");
    assert_eq!(tables.len(), order.len());
    let mut acc = tables[order[0]].clone();
    if tables.len() == 1 {
        if let Some(l) = limit {
            acc.truncate(l);
        }
        return acc;
    }
    for &ti in &order[1..] {
        // No limit on intermediate joins: a limit is only safe on the final
        // output (earlier truncation could drop rows that would survive).
        let is_last = ti == order[order.len() - 1];
        let step_limit = if is_last { limit } else { None };
        acc = hash_join(&acc, &tables[ti], step_limit, counters);
        if acc.is_empty() {
            break;
        }
    }
    if let Some(l) = limit {
        acc.truncate(l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn table(cols: &[u16], rows: &[&[u64]]) -> ResultTable {
        let mut t = ResultTable::new(cols.iter().map(|&c| q(c)).collect());
        for r in rows {
            let row: Vec<VertexId> = r.iter().map(|&x| v(x)).collect();
            t.push_row(&row);
        }
        t
    }

    #[test]
    fn join_on_shared_column() {
        let a = table(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let b = table(&[1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.columns(), &[q(0), q(1), q(2)]);
        assert_eq!(joined.num_rows(), 3);
        assert_eq!(c.joins_performed, 1);
        assert_eq!(c.intermediate_rows, 3);
    }

    #[test]
    fn single_key_fast_path_preserves_row_order() {
        // Multiple build rows per key: the chained index must yield them in
        // insertion order, so the output matches a nested-loop join.
        let a = table(&[0, 1], &[&[1, 10], &[2, 10], &[3, 30]]);
        let b = table(&[1, 2], &[&[10, 100], &[10, 101], &[10, 102], &[30, 300]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.num_rows(), 7);
        // Probe row (1, 10) matches build rows in build order: 100, 101, 102.
        assert_eq!(joined.row(0), &[v(1), v(10), v(100)]);
        assert_eq!(joined.row(1), &[v(1), v(10), v(101)]);
        assert_eq!(joined.row(2), &[v(1), v(10), v(102)]);
        assert_eq!(joined.row(3), &[v(2), v(10), v(100)]);
        assert_eq!(joined.row(6), &[v(3), v(30), v(300)]);
    }

    #[test]
    fn multi_column_inline_key_join() {
        // Two shared columns (1 and 2) exercise the InlineKey path.
        let a = table(&[0, 1, 2], &[&[1, 10, 20], &[2, 10, 21], &[3, 11, 20]]);
        let b = table(&[1, 2, 3], &[&[10, 20, 90], &[11, 20, 91], &[10, 22, 92]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.columns(), &[q(0), q(1), q(2), q(3)]);
        assert_eq!(joined.num_rows(), 2);
        assert_eq!(joined.row(0), &[v(1), v(10), v(20), v(90)]);
        assert_eq!(joined.row(1), &[v(3), v(11), v(20), v(91)]);
    }

    #[test]
    fn wide_key_join_falls_back_to_vec_keys() {
        // Five shared columns exceed INLINE_KEY_COLUMNS.
        let a = table(
            &[0, 1, 2, 3, 4, 5],
            &[&[1, 2, 3, 4, 5, 100], &[1, 2, 3, 4, 6, 101]],
        );
        let b = table(
            &[0, 1, 2, 3, 4, 6],
            &[&[1, 2, 3, 4, 5, 200], &[9, 2, 3, 4, 5, 201]],
        );
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.num_rows(), 1);
        assert_eq!(
            joined.row(0),
            &[v(1), v(2), v(3), v(4), v(5), v(100), v(200)]
        );
    }

    #[test]
    fn join_enforces_injectivity() {
        // Row would map q0 and q2 to the same data vertex 10.
        let a = table(&[0, 1], &[&[10, 5]]);
        let b = table(&[1, 2], &[&[5, 10], &[5, 11]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.num_rows(), 1);
        assert_eq!(joined.row(0), &[v(10), v(5), v(11)]);
        assert_eq!(c.rows_pruned_injective, 1);
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let a = table(&[0], &[&[1], &[2]]);
        let b = table(&[1], &[&[3], &[4]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn join_respects_limit() {
        let a = table(&[0], &[&[1], &[2], &[3]]);
        let b = table(&[1], &[&[7], &[8], &[9]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, Some(4), &mut c);
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn estimate_matches_exact_for_uniform_keys() {
        let a = table(&[0, 1], &[&[1, 10], &[2, 10], &[3, 20]]);
        let b = table(&[1, 2], &[&[10, 100], &[20, 200]]);
        let est = estimate_join_size(&a, &b, 100);
        let mut c = JoinCounters::default();
        let exact = hash_join(&a, &b, None, &mut c).num_rows();
        assert!((est - exact as f64).abs() < 1.0, "est={est}, exact={exact}");
    }

    #[test]
    fn estimate_multi_column_key() {
        let a = table(&[0, 1, 2], &[&[1, 10, 20], &[2, 10, 21]]);
        let b = table(&[1, 2, 3], &[&[10, 20, 90], &[10, 20, 91], &[10, 21, 92]]);
        let est = estimate_join_size(&a, &b, 100);
        let mut c = JoinCounters::default();
        let exact = hash_join(&a, &b, None, &mut c).num_rows();
        assert!((est - exact as f64).abs() < 1.0, "est={est}, exact={exact}");
    }

    #[test]
    fn estimate_sample_spans_the_whole_table() {
        // Regression for the floored-stride prefix bias: with `sample = 8`
        // and `n = 15` (i.e. `sample <= n < 2 * sample`), the old
        // `step = n / sample = 1` with a `sampled < sample` stop read rows
        // 0..8 only. Here the first 8 left rows match nothing and all the
        // join fanout hides in the tail — exactly the layout sorted
        // exploration tables produce — so the old estimate was 0.0 while
        // the true join yields 7 rows. The ceil stride (step = 2, rows
        // 0,2,..,14) must see the tail.
        let sample = 8usize;
        let left_rows: Vec<Vec<u64>> = (0..15u64)
            .map(|i| {
                if i < 8 {
                    vec![i, 500 + i]
                } else {
                    vec![100, 500 + i]
                }
            })
            .collect();
        let left = {
            let refs: Vec<&[u64]> = left_rows.iter().map(|r| r.as_slice()).collect();
            table(&[0, 1], &refs)
        };
        let right = table(&[0, 2], &[&[100, 900]]);
        let est = estimate_join_size(&left, &right, sample);
        assert!(est > 0.0, "tail matches must be sampled, got {est}");
        let mut c = JoinCounters::default();
        let exact = hash_join(&left, &right, None, &mut c).num_rows() as f64;
        // The stratified estimate cannot be exact, but it must be the right
        // order of magnitude instead of a systematic zero.
        assert!(
            est >= exact / 4.0 && est <= exact * 4.0,
            "est = {est}, exact = {exact}"
        );
    }

    #[test]
    fn estimate_right_side_stride_spans_the_build_table() {
        // The right side had the same flooring: for `rn` up to
        // `2 * build_cap - 1` the floored stride stayed 1 and the "sample"
        // silently built counts for *every* row (up to 2x the cap). The
        // ceil stride keeps the build sample within its cap — and this
        // pins that striding still spans the table: keys that appear only
        // in the build tail must contribute to the estimate.
        let sample = 1usize; // build_cap = 512
        let build_cap = 512usize;
        let rn = build_cap + build_cap / 2;
        let right_rows: Vec<Vec<u64>> = (0..rn as u64)
            .map(|i| {
                if (i as usize) < build_cap {
                    vec![i + 10_000, 900] // keys matching nothing
                } else {
                    vec![7, 900 + i] // the joinable key, tail only
                }
            })
            .collect();
        let right = {
            let refs: Vec<&[u64]> = right_rows.iter().map(|r| r.as_slice()).collect();
            table(&[0, 2], &refs)
        };
        let left = table(&[0, 1], &[&[7, 1]]);
        let est = estimate_join_size(&left, &right, sample);
        assert!(est > 0.0, "build-side tail keys must be sampled, got {est}");
    }

    #[test]
    fn estimate_empty_tables_is_zero() {
        let a = table(&[0], &[]);
        let b = table(&[0], &[&[1]]);
        assert_eq!(estimate_join_size(&a, &b, 10), 0.0);
    }

    #[test]
    fn order_selection_starts_with_smallest_and_prefers_shared_columns() {
        let big = table(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let small = table(&[2, 3], &[&[9, 10]]);
        let linking = table(&[1, 2], &[&[2, 9], &[4, 9]]);
        let tables = vec![big, small, linking];
        let order = select_join_order(&tables, 16);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 1, "smallest table first");
        assert_eq!(order[1], 2, "then the table sharing a column");
    }

    #[test]
    fn order_selection_estimates_against_accumulated_columns() {
        // Regression for the old behaviour of estimating every candidate
        // against tables[order[0]] instead of the accumulated intermediate:
        //
        //   t0 [0]    : 1 row   (smallest → picked first)
        //   t1 [0, 1] : 1 row   (selective against t0 → picked second)
        //   t2 [1, 2] : 100 rows, exactly 1 matching the intermediate's col 1
        //   t3 [0, 3] : 50 rows, ALL matching the intermediate's col 0
        //
        // After [t0, t1] the intermediate has columns {0, 1}. Joining t2 next
        // keeps it at 1 row; joining t3 next blows it up to 50 rows. The old
        // code estimated both candidates against t0 only: t2 shares no column
        // with t0, so it was scored as a 100-row cartesian product and t3
        // (estimate 50) won — the provably worse order.
        let t0 = table(&[0], &[&[1]]);
        let t1 = table(&[0, 1], &[&[1, 10]]);
        let t2_rows: Vec<Vec<u64>> = std::iter::once(vec![10u64, 200])
            .chain((0..99u64).map(|i| vec![300 + i, 500 + i]))
            .collect();
        let t2 = {
            let refs: Vec<&[u64]> = t2_rows.iter().map(|r| r.as_slice()).collect();
            table(&[1, 2], &refs)
        };
        let t3_rows: Vec<Vec<u64>> = (0..50u64).map(|i| vec![1, 1000 + i]).collect();
        let t3 = {
            let refs: Vec<&[u64]> = t3_rows.iter().map(|r| r.as_slice()).collect();
            table(&[0, 3], &refs)
        };
        let tables = vec![t0, t1, t2, t3];

        let order = select_join_order(&tables, 256);
        assert_eq!(order, vec![0, 1, 2, 3], "selective table must come third");

        // The fixed order is provably cheaper: count intermediate rows.
        let mut c_good = JoinCounters::default();
        multiway_join(&tables, &order, None, &mut c_good);
        let mut c_bad = JoinCounters::default();
        multiway_join(&tables, &[0, 1, 3, 2], None, &mut c_bad);
        assert!(
            c_good.intermediate_rows < c_bad.intermediate_rows,
            "good = {}, bad = {}",
            c_good.intermediate_rows,
            c_bad.intermediate_rows
        );
    }

    #[test]
    fn priors_bias_the_driver_and_reproduce_default_when_absent() {
        // Two same-size tables sharing column 1: without priors the stable
        // sort keeps index order, so t0 drives. A strong prior on t1 (its
        // STwig covers a rare label pair) must flip the driver.
        let t0 = table(&[0, 1], &[&[1, 2], &[3, 4]]);
        let t1 = table(&[1, 2], &[&[2, 5], &[4, 6]]);
        let tables = vec![t0, t1];
        assert_eq!(select_join_order(&tables, 16), vec![0, 1]);
        assert_eq!(
            select_join_order_with_priors(&tables, 16, None),
            vec![0, 1],
            "no priors must reproduce select_join_order"
        );
        assert_eq!(
            select_join_order_with_priors(&tables, 16, Some(&[1.0, 1.0])),
            vec![0, 1],
            "unit priors must reproduce select_join_order"
        );
        assert_eq!(
            select_join_order_with_priors(&tables, 16, Some(&[1.0, 0.1])),
            vec![1, 0],
            "a rare-pair prior must pull its table forward"
        );
        // Degenerate priors (zero, NaN) are ignored rather than poisoning
        // the order.
        assert_eq!(
            select_join_order_with_priors(&tables, 16, Some(&[0.0, f64::NAN])),
            vec![0, 1]
        );
    }

    #[test]
    fn multiway_join_produces_full_embeddings() {
        // q0-q1 pairs, q1-q2 pairs, q2-q3 pairs chained.
        let t1 = table(&[0, 1], &[&[1, 2], &[10, 20]]);
        let t2 = table(&[1, 2], &[&[2, 3], &[20, 30]]);
        let t3 = table(&[2, 3], &[&[3, 4], &[30, 40]]);
        let tables = vec![t1, t2, t3];
        let order = select_join_order(&tables, 8);
        let mut c = JoinCounters::default();
        let result = multiway_join(&tables, &order, None, &mut c);
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.width(), 4);
        assert_eq!(c.joins_performed, 2);
    }

    #[test]
    fn multiway_join_limit_truncates() {
        let t1 = table(&[0], &[&[1], &[2], &[3]]);
        let t2 = table(&[1], &[&[4], &[5]]);
        let tables = vec![t1, t2];
        let mut c = JoinCounters::default();
        let result = multiway_join(&tables, &[0, 1], Some(2), &mut c);
        assert_eq!(result.num_rows(), 2);
    }

    #[test]
    fn multiway_join_single_table() {
        let t1 = table(&[0], &[&[1], &[2], &[3]]);
        let mut c = JoinCounters::default();
        let result = multiway_join(&[t1], &[0], Some(2), &mut c);
        assert_eq!(result.num_rows(), 2);
        assert_eq!(c.joins_performed, 0);
    }

    #[test]
    fn empty_join_short_circuits() {
        let t1 = table(&[0, 1], &[&[1, 2]]);
        let t2 = table(&[1, 2], &[]);
        let t3 = table(&[2, 3], &[&[5, 6]]);
        let tables = vec![t1, t2, t3];
        let mut c = JoinCounters::default();
        let result = multiway_join(&tables, &[0, 1, 2], None, &mut c);
        assert!(result.is_empty());
    }
}
