//! Join processing (§4.2 step 3): hash joins over STwig result tables,
//! sample-based join-cardinality estimation and greedy join-order selection.

use crate::metrics::JoinCounters;
use crate::table::ResultTable;
use std::collections::HashMap;
use trinity_sim::ids::VertexId;

/// Hash-joins two tables on their shared columns (natural join).
///
/// * Output columns are `left`'s columns followed by `right`'s non-shared
///   columns.
/// * Rows that map two different query vertices to the same data vertex are
///   dropped (`enforce injectivity`): a valid embedding is a bijection.
/// * If the tables share no column the result is the (injectivity-filtered)
///   cartesian product.
/// * `limit` caps the number of output rows.
pub fn hash_join(
    left: &ResultTable,
    right: &ResultTable,
    limit: Option<usize>,
    counters: &mut JoinCounters,
) -> ResultTable {
    counters.joins_performed += 1;

    let shared: Vec<(usize, usize)> = left
        .columns()
        .iter()
        .enumerate()
        .filter_map(|(li, lc)| right.column_index(*lc).map(|ri| (li, ri)))
        .collect();
    let right_extra: Vec<usize> = (0..right.width())
        .filter(|ri| !shared.iter().any(|&(_, r)| r == *ri))
        .collect();

    let mut columns = left.columns().to_vec();
    columns.extend(right_extra.iter().map(|&ri| right.columns()[ri]));
    let mut out = ResultTable::new(columns);

    // Build a hash index on the right table keyed by the shared columns.
    let mut index: HashMap<Vec<VertexId>, Vec<usize>> = HashMap::new();
    for (ri, row) in right.rows().enumerate() {
        let key: Vec<VertexId> = shared.iter().map(|&(_, rc)| row[rc]).collect();
        index.entry(key).or_default().push(ri);
    }

    let mut row_buf: Vec<VertexId> = Vec::with_capacity(out.width());
    'outer: for lrow in left.rows() {
        let key: Vec<VertexId> = shared.iter().map(|&(lc, _)| lrow[lc]).collect();
        let Some(matches) = index.get(&key) else {
            continue;
        };
        for &ri in matches {
            let rrow = right.row(ri);
            row_buf.clear();
            row_buf.extend_from_slice(lrow);
            row_buf.extend(right_extra.iter().map(|&rc| rrow[rc]));
            if ResultTable::row_has_duplicates(&row_buf) {
                counters.rows_pruned_injective += 1;
                continue;
            }
            out.push_row(&row_buf);
            counters.intermediate_rows += 1;
            if let Some(l) = limit {
                if out.num_rows() >= l {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Estimates the number of rows `left ⨝ right` would produce, by sampling up
/// to `sample_size` rows of `left` and probing a hash index of `right` built
/// on the shared columns (the sample-based method of [Garcia-Molina et al.]).
pub fn estimate_join_size(left: &ResultTable, right: &ResultTable, sample_size: usize) -> f64 {
    if left.is_empty() || right.is_empty() {
        return 0.0;
    }
    let shared: Vec<(usize, usize)> = left
        .columns()
        .iter()
        .enumerate()
        .filter_map(|(li, lc)| right.column_index(*lc).map(|ri| (li, ri)))
        .collect();
    if shared.is_empty() {
        // Cartesian product.
        return left.num_rows() as f64 * right.num_rows() as f64;
    }
    // Count right rows per key.
    let mut key_counts: HashMap<Vec<VertexId>, u64> = HashMap::new();
    for row in right.rows() {
        let key: Vec<VertexId> = shared.iter().map(|&(_, rc)| row[rc]).collect();
        *key_counts.entry(key).or_insert(0) += 1;
    }
    let n = left.num_rows();
    let sample = sample_size.max(1).min(n);
    // Deterministic stratified sample: every (n / sample)-th row.
    let step = (n / sample).max(1);
    let mut total_matches = 0u64;
    let mut sampled = 0u64;
    let mut i = 0usize;
    while i < n && sampled < sample as u64 {
        let row = left.row(i);
        let key: Vec<VertexId> = shared.iter().map(|&(lc, _)| row[lc]).collect();
        total_matches += key_counts.get(&key).copied().unwrap_or(0);
        sampled += 1;
        i += step;
    }
    if sampled == 0 {
        return 0.0;
    }
    (total_matches as f64 / sampled as f64) * n as f64
}

/// Greedy left-deep join-order selection: start from the smallest table, then
/// repeatedly pick the table whose estimated join with the accumulated result
/// is cheapest, preferring tables that share at least one column with it.
///
/// Returns a permutation of `0..tables.len()`.
pub fn select_join_order(tables: &[ResultTable], sample_size: usize) -> Vec<usize> {
    let n = tables.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    // Start from the smallest table.
    remaining.sort_by_key(|&i| tables[i].num_rows());
    let first = remaining.remove(0);
    let mut order = vec![first];
    let mut joined_columns: Vec<_> = tables[first].columns().to_vec();
    let mut current_size = tables[first].num_rows() as f64;

    while !remaining.is_empty() {
        let mut best: Option<(usize, f64, bool)> = None; // (pos in remaining, est, shares)
        for (pos, &ti) in remaining.iter().enumerate() {
            let shares = tables[ti]
                .columns()
                .iter()
                .any(|c| joined_columns.contains(c));
            // Estimate against the actual table; scale by how much the
            // accumulated result has grown relative to the starting table.
            let est = estimate_join_size(&tables[order[0]], &tables[ti], sample_size).max(1.0)
                * (current_size.max(1.0) / tables[order[0]].num_rows().max(1) as f64);
            let better = match best {
                None => true,
                Some((_, be, bshares)) => (shares && !bshares) || (shares == bshares && est < be),
            };
            if better {
                best = Some((pos, est, shares));
            }
        }
        let (pos, est, _) = best.expect("remaining not empty");
        let ti = remaining.remove(pos);
        for c in tables[ti].columns() {
            if !joined_columns.contains(c) {
                joined_columns.push(*c);
            }
        }
        current_size = est;
        order.push(ti);
    }
    order
}

/// Joins all tables in the given order, applying a result limit.
pub fn multiway_join(
    tables: &[ResultTable],
    order: &[usize],
    limit: Option<usize>,
    counters: &mut JoinCounters,
) -> ResultTable {
    assert!(!tables.is_empty(), "cannot join zero tables");
    assert_eq!(tables.len(), order.len());
    let mut acc = tables[order[0]].clone();
    if tables.len() == 1 {
        if let Some(l) = limit {
            acc.truncate(l);
        }
        return acc;
    }
    for &ti in &order[1..] {
        // No limit on intermediate joins: a limit is only safe on the final
        // output (earlier truncation could drop rows that would survive).
        let is_last = ti == order[order.len() - 1];
        let step_limit = if is_last { limit } else { None };
        acc = hash_join(&acc, &tables[ti], step_limit, counters);
        if acc.is_empty() {
            break;
        }
    }
    if let Some(l) = limit {
        acc.truncate(l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn table(cols: &[u16], rows: &[&[u64]]) -> ResultTable {
        let mut t = ResultTable::new(cols.iter().map(|&c| q(c)).collect());
        for r in rows {
            let row: Vec<VertexId> = r.iter().map(|&x| v(x)).collect();
            t.push_row(&row);
        }
        t
    }

    #[test]
    fn join_on_shared_column() {
        let a = table(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let b = table(&[1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.columns(), &[q(0), q(1), q(2)]);
        assert_eq!(joined.num_rows(), 3);
        assert_eq!(c.joins_performed, 1);
        assert_eq!(c.intermediate_rows, 3);
    }

    #[test]
    fn join_enforces_injectivity() {
        // Row would map q0 and q2 to the same data vertex 10.
        let a = table(&[0, 1], &[&[10, 5]]);
        let b = table(&[1, 2], &[&[5, 10], &[5, 11]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.num_rows(), 1);
        assert_eq!(joined.row(0), &[v(10), v(5), v(11)]);
        assert_eq!(c.rows_pruned_injective, 1);
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let a = table(&[0], &[&[1], &[2]]);
        let b = table(&[1], &[&[3], &[4]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, None, &mut c);
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn join_respects_limit() {
        let a = table(&[0], &[&[1], &[2], &[3]]);
        let b = table(&[1], &[&[7], &[8], &[9]]);
        let mut c = JoinCounters::default();
        let joined = hash_join(&a, &b, Some(4), &mut c);
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn estimate_matches_exact_for_uniform_keys() {
        let a = table(&[0, 1], &[&[1, 10], &[2, 10], &[3, 20]]);
        let b = table(&[1, 2], &[&[10, 100], &[20, 200]]);
        let est = estimate_join_size(&a, &b, 100);
        let mut c = JoinCounters::default();
        let exact = hash_join(&a, &b, None, &mut c).num_rows();
        assert!((est - exact as f64).abs() < 1.0, "est={est}, exact={exact}");
    }

    #[test]
    fn estimate_empty_tables_is_zero() {
        let a = table(&[0], &[]);
        let b = table(&[0], &[&[1]]);
        assert_eq!(estimate_join_size(&a, &b, 10), 0.0);
    }

    #[test]
    fn order_selection_starts_with_smallest_and_prefers_shared_columns() {
        let big = table(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let small = table(&[2, 3], &[&[9, 10]]);
        let linking = table(&[1, 2], &[&[2, 9], &[4, 9]]);
        let tables = vec![big, small, linking];
        let order = select_join_order(&tables, 16);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 1, "smallest table first");
        assert_eq!(order[1], 2, "then the table sharing a column");
    }

    #[test]
    fn multiway_join_produces_full_embeddings() {
        // q0-q1 pairs, q1-q2 pairs, q2-q3 pairs chained.
        let t1 = table(&[0, 1], &[&[1, 2], &[10, 20]]);
        let t2 = table(&[1, 2], &[&[2, 3], &[20, 30]]);
        let t3 = table(&[2, 3], &[&[3, 4], &[30, 40]]);
        let tables = vec![t1, t2, t3];
        let order = select_join_order(&tables, 8);
        let mut c = JoinCounters::default();
        let result = multiway_join(&tables, &order, None, &mut c);
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.width(), 4);
        assert_eq!(c.joins_performed, 2);
    }

    #[test]
    fn multiway_join_limit_truncates() {
        let t1 = table(&[0], &[&[1], &[2], &[3]]);
        let t2 = table(&[1], &[&[4], &[5]]);
        let tables = vec![t1, t2];
        let mut c = JoinCounters::default();
        let result = multiway_join(&tables, &[0, 1], Some(2), &mut c);
        assert_eq!(result.num_rows(), 2);
    }

    #[test]
    fn multiway_join_single_table() {
        let t1 = table(&[0], &[&[1], &[2], &[3]]);
        let mut c = JoinCounters::default();
        let result = multiway_join(&[t1], &[0], Some(2), &mut c);
        assert_eq!(result.num_rows(), 2);
        assert_eq!(c.joins_performed, 0);
    }

    #[test]
    fn empty_join_short_circuits() {
        let t1 = table(&[0, 1], &[&[1, 2]]);
        let t2 = table(&[1, 2], &[]);
        let t3 = table(&[2, 3], &[&[5, 6]]);
        let tables = vec![t1, t2, t3];
        let mut c = JoinCounters::default();
        let result = multiway_join(&tables, &[0, 1, 2], None, &mut c);
        assert!(result.is_empty());
    }
}
