//! # stwig
//!
//! A from-scratch Rust reproduction of the STwig subgraph-matching system of
//! *Efficient Subgraph Matching on Billion Node Graphs* (Sun, Wang, Wang,
//! Shao, Li — PVLDB 5(9), 2012), running on the simulated Trinity memory
//! cloud provided by the [`trinity_sim`] crate.
//!
//! The approach uses **no structural index** — only the linear-size string
//! index mapping labels to vertex ids. A query is decomposed into two-level
//! tree units (*STwigs*), matched by in-memory graph exploration with binding
//! propagation between STwigs, and assembled by a pipelined multi-way join.
//! A head-STwig / load-set optimizer keeps the distributed execution's
//! per-machine answers disjoint while bounding communication.
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §2.1 query model | [`query`] |
//! | §4.1 STwig + Algorithm 1 | [`stwig`], [`matcher`] |
//! | §4.2 exploration & bindings | [`bindings`], [`executor`] |
//! | §4.2 step 3 joins | [`table`], [`join`], [`pipeline`] |
//! | §5.1–5.2 decomposition + ordering (Algorithm 2) | [`decompose`] |
//! | §5.3 head STwig & load sets | [`head`] |
//! | §4.3 distributed execution | [`distributed`] |
//! | — | [`config`], [`hash`], [`metrics`], [`verify`], [`error`] |
//!
//! ## Quick start
//!
//! ```
//! use trinity_sim::prelude::*;
//! use stwig::prelude::*;
//!
//! // Build a small labeled graph partitioned over 2 logical machines.
//! let mut gb = GraphBuilder::new_undirected();
//! gb.add_vertex(VertexId(1), "person");
//! gb.add_vertex(VertexId(2), "person");
//! gb.add_vertex(VertexId(3), "city");
//! gb.add_edge(VertexId(1), VertexId(2));
//! gb.add_edge(VertexId(1), VertexId(3));
//! gb.add_edge(VertexId(2), VertexId(3));
//! let cloud = gb.build(2, CostModel::default());
//!
//! // Query: two persons that know each other and live in the same city.
//! let mut qb = QueryGraph::builder();
//! let p1 = qb.vertex_by_name(&cloud, "person").unwrap();
//! let p2 = qb.vertex_by_name(&cloud, "person").unwrap();
//! let c = qb.vertex_by_name(&cloud, "city").unwrap();
//! qb.edge(p1, p2).edge(p1, c).edge(p2, c);
//! let query = qb.build().unwrap();
//!
//! let out = stwig::match_query(&cloud, &query, &MatchConfig::default()).unwrap();
//! assert_eq!(out.num_matches(), 2); // (1,2,3) and (2,1,3)
//! ```

#![warn(missing_docs)]

pub mod bindings;
pub mod cache;
pub mod config;
pub mod decompose;
pub mod distributed;
pub mod engine;
pub mod error;
pub mod executor;
pub mod hash;
pub mod head;
pub mod join;
pub mod matcher;
pub mod metrics;
pub mod pattern;
pub mod pipeline;
pub mod query;
pub mod retry;
pub mod serve;
pub mod stream;
pub mod stwig;
pub mod table;
pub mod verify;

pub use cache::{CacheConfig, CacheLookup, StwigCache};
pub use config::{FailurePolicy, MatchConfig, ResultMode, RetryPolicy, TransportMode};
pub use distributed::{
    join_stwig_tables, match_query_distributed, match_query_distributed_with_cache,
    match_query_streaming, match_query_streaming_with_cache, plan_query, plan_query_with_config,
    produce_stwig_tables, QueryPlan, StwigTableSet,
};
pub use engine::{EngineConfig, QueryEngine};
pub use error::StwigError;
pub use executor::{match_query, MatchOutput};
pub use metrics::{
    CacheStats, EngineStats, FaultCounters, MetricsSnapshot, PhaseTraffic, QueryMetrics,
    QueryOutcome, SchedulerStats,
};
pub use pattern::parse_pattern;
pub use query::{QVid, QueryGraph, QueryGraphBuilder};
pub use serve::{
    AdmissionConfig, BreakerConfig, CostEstimator, Priority, QueryHandle, QueryRequest,
    QueryResponse, QueryStatus, RejectReason, SchedulerConfig, ServeConfig, Submit, TenantId,
    TenantStats,
};
pub use stream::{CancelToken, ChannelSink, CollectSink, QueryOptions, ResultSink};
pub use stwig::STwig;
pub use table::ResultTable;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::cache::{CacheConfig, StwigCache, StwigShape};
    pub use crate::config::{FailurePolicy, MatchConfig, ResultMode, RetryPolicy, TransportMode};
    pub use crate::decompose::{
        decompose_ordered, decompose_random, LabelStatistics, PairAwareStats, UniformStats,
    };
    pub use crate::distributed::{
        join_stwig_tables, match_query_distributed, match_query_distributed_with_cache,
        match_query_streaming, match_query_streaming_with_cache, plan_query,
        plan_query_with_config, produce_stwig_tables, QueryPlan, StwigTableSet,
    };
    pub use crate::engine::{EngineConfig, QueryEngine};
    pub use crate::error::StwigError;
    pub use crate::executor::{match_query, MatchOutput};
    pub use crate::head::{load_set, select_head, HeadSelection};
    pub use crate::metrics::{
        CacheStats, EngineStats, FaultCounters, MetricsSnapshot, PhaseTraffic, QueryMetrics,
        QueryOutcome, SchedulerStats,
    };
    pub use crate::pattern::parse_pattern;
    pub use crate::query::{QVid, QueryGraph, QueryGraphBuilder};
    pub use crate::serve::{
        AdmissionConfig, BreakerConfig, CostEstimator, Priority, QueryHandle, QueryRequest,
        QueryResponse, QueryStatus, RejectReason, SchedulerConfig, ServeConfig, Submit, TenantId,
        TenantStats,
    };
    pub use crate::stream::{CancelToken, ChannelSink, CollectSink, QueryOptions, ResultSink};
    pub use crate::stwig::STwig;
    pub use crate::table::ResultTable;
    pub use crate::verify::{canonical_rows, is_valid_embedding, verify_all};
}
