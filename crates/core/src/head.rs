//! Head-STwig and load-set selection (§5.3).
//!
//! In the distributed join phase each machine `k` must fetch, for every STwig
//! `q_t`, the partial results produced by other machines. Theorem 4 bounds
//! the set of machines that can possibly contribute joinable results by the
//! cluster-graph distance: `F_{k,t} = { j : D_C(k, j) ≤ d(r_s, r_t) }` where
//! `q_s` is the *head* STwig (whose results are never fetched remotely, which
//! is what makes per-machine answers disjoint). The head is chosen to
//! minimize the total communication cost `T(s)` of Eq. 2, which reduces to
//! minimizing the head root's eccentricity among STwig roots.

use crate::query::QueryGraph;
use crate::stwig::STwig;
use serde::{Deserialize, Serialize};
use trinity_sim::cluster_graph::{communication_cost, ClusterGraph};
use trinity_sim::ids::MachineId;

/// The outcome of head-STwig selection for one decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadSelection {
    /// Index (into the decomposition) of the chosen head STwig.
    pub head_index: usize,
    /// For every STwig `t`, the query-graph distance `d(r_head, r_t)` between
    /// the head root and `t`'s root.
    pub root_distances: Vec<u32>,
    /// The head root's eccentricity among STwig roots, `d(s) = max_t d(r_s, r_t)`.
    pub eccentricity: u32,
    /// The communication cost `T(s)` of Eq. 2 for the chosen head.
    pub communication_cost: u64,
}

/// Selects the head STwig: the one whose root minimizes the communication
/// cost `T(s)` over the given cluster graph (Eq. 2). Ties are broken towards
/// the smaller eccentricity, then the earlier STwig in processing order.
///
/// `stwigs` must be non-empty.
pub fn select_head(query: &QueryGraph, stwigs: &[STwig], cluster: &ClusterGraph) -> HeadSelection {
    assert!(
        !stwigs.is_empty(),
        "cannot select a head from an empty decomposition"
    );
    let dist = query.all_pairs_distances();
    let roots: Vec<usize> = stwigs.iter().map(|t| t.root.index()).collect();

    let mut best: Option<(usize, u32, u64)> = None; // (index, ecc, cost)
    for (i, &ri) in roots.iter().enumerate() {
        let ecc = roots.iter().map(|&rj| dist[ri][rj]).max().unwrap_or(0);
        let cost = communication_cost(cluster, ecc);
        let better = match best {
            None => true,
            Some((_, becc, bcost)) => cost < bcost || (cost == bcost && ecc < becc),
        };
        if better {
            best = Some((i, ecc, cost));
        }
    }
    let (head_index, eccentricity, cost) = best.expect("non-empty decomposition");
    let head_root = roots[head_index];
    let root_distances = roots.iter().map(|&rj| dist[head_root][rj]).collect();
    HeadSelection {
        head_index,
        root_distances,
        eccentricity,
        communication_cost: cost,
    }
}

/// The load set `F_{k,t}` (Theorem 4): machines whose results for STwig `t`
/// machine `k` must fetch before joining. Empty for the head STwig itself.
pub fn load_set(
    cluster: &ClusterGraph,
    selection: &HeadSelection,
    machine: MachineId,
    stwig_index: usize,
) -> Vec<MachineId> {
    if stwig_index == selection.head_index {
        return Vec::new();
    }
    let d = selection.root_distances[stwig_index];
    cluster.machines_within(machine, d)
}

/// The full load-set matrix: `result[k][t]` is `F_{k,t}`.
pub fn load_sets(
    cluster: &ClusterGraph,
    selection: &HeadSelection,
    num_stwigs: usize,
) -> Vec<Vec<Vec<MachineId>>> {
    (0..cluster.num_machines() as u16)
        .map(|k| {
            (0..num_stwigs)
                .map(|t| load_set(cluster, selection, MachineId(k), t))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;
    use trinity_sim::cluster_graph::LabelPairCatalog;
    use trinity_sim::ids::LabelId;

    fn l(x: u32) -> LabelId {
        LabelId(x)
    }

    /// Path query a(0) - b(1) - c(2) - d(3), decomposed into two STwigs rooted
    /// at b and d.
    fn path_query() -> (QueryGraph, Vec<STwig>) {
        let mut builder = QueryGraph::builder();
        let a = builder.vertex(l(0));
        let b = builder.vertex(l(1));
        let c = builder.vertex(l(2));
        let d = builder.vertex(l(3));
        builder.edge(a, b).edge(b, c).edge(c, d);
        let q = builder.build().unwrap();
        let stwigs = vec![STwig::new(b, vec![a, c]), STwig::new(d, vec![c])];
        (q, stwigs)
    }

    fn chain_cluster(n: usize) -> ClusterGraph {
        // machines 0-1-2-...-n-1 connected in a chain via label pair (0,0)
        let mut cat = LabelPairCatalog::new(n);
        for i in 0..(n - 1) {
            cat.record_edge(MachineId(i as u16), l(0), MachineId(i as u16 + 1), l(0));
            cat.record_edge(MachineId(i as u16 + 1), l(0), MachineId(i as u16), l(0));
        }
        ClusterGraph::build(&cat, &[(l(0), l(0))])
    }

    #[test]
    fn head_minimizes_eccentricity() {
        let (q, stwigs) = path_query();
        let cluster = chain_cluster(4);
        let sel = select_head(&q, &stwigs, &cluster);
        // Roots are b (index 1 in query) and d (index 3). Eccentricities over
        // the root set: ecc(b) = dist(b,d) = 2, ecc(d) = 2 as well (only two
        // roots) — so the head is the first by tie-break.
        assert_eq!(sel.head_index, 0);
        assert_eq!(sel.eccentricity, 2);
        assert_eq!(sel.root_distances, vec![0, 2]);
    }

    #[test]
    fn head_prefers_central_root() {
        // Query: star of 3 paths around center x; STwigs rooted at center and
        // at one leaf end. The center has smaller eccentricity.
        let mut b = QueryGraph::builder();
        let x = b.vertex(l(0));
        let p1 = b.vertex(l(1));
        let p2 = b.vertex(l(2));
        let p3 = b.vertex(l(3));
        let q1 = b.vertex(l(4));
        b.edge(x, p1).edge(x, p2).edge(x, p3).edge(p1, q1);
        let q = b.build().unwrap();
        let stwigs = vec![STwig::new(q1, vec![p1]), STwig::new(x, vec![p1, p2, p3])];
        let cluster = chain_cluster(6);
        let sel = select_head(&q, &stwigs, &cluster);
        // ecc(root=q1) = dist(q1, x) = 2; ecc(root=x) = dist(x, q1) = 2.
        // Equal here, but with the chain cluster cost is equal too → first wins.
        assert_eq!(sel.head_index, 0);

        // Add a third STwig rooted at p2 to break the tie: ecc(x)=2, ecc(q1)=3.
        let stwigs = vec![
            STwig::new(q1, vec![p1]),
            STwig::new(x, vec![p1, p2, p3]),
            STwig::new(p2, vec![x]),
        ];
        let sel = select_head(&q, &stwigs, &cluster);
        assert_eq!(sel.head_index, 1, "central root should win");
        assert_eq!(sel.eccentricity, 2);
    }

    #[test]
    fn load_set_is_empty_for_head_and_bounded_for_others() {
        let (q, stwigs) = path_query();
        let cluster = chain_cluster(4);
        let sel = select_head(&q, &stwigs, &cluster);
        let head = sel.head_index;
        let other = 1 - head;
        for k in 0..4u16 {
            assert!(load_set(&cluster, &sel, MachineId(k), head).is_empty());
        }
        // For the non-head STwig, distance is 2 → machines within 2 hops.
        let f0 = load_set(&cluster, &sel, MachineId(0), other);
        assert_eq!(f0, vec![MachineId(1), MachineId(2)]);
        let f1 = load_set(&cluster, &sel, MachineId(1), other);
        assert_eq!(f1, vec![MachineId(0), MachineId(2), MachineId(3)]);
    }

    #[test]
    fn load_sets_matrix_shape() {
        let (q, stwigs) = path_query();
        let cluster = chain_cluster(3);
        let sel = select_head(&q, &stwigs, &cluster);
        let all = load_sets(&cluster, &sel, stwigs.len());
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].len(), 2);
    }

    #[test]
    fn single_stwig_query_has_trivial_selection() {
        let mut b = QueryGraph::builder();
        let x = b.vertex(l(0));
        let y = b.vertex(l(1));
        b.edge(x, y);
        let q = b.build().unwrap();
        let stwigs = vec![STwig::new(x, vec![y])];
        let cluster = ClusterGraph::complete(4);
        let sel = select_head(&q, &stwigs, &cluster);
        assert_eq!(sel.head_index, 0);
        assert_eq!(sel.eccentricity, 0);
        assert_eq!(sel.communication_cost, 0);
        assert_eq!(sel.root_distances, vec![0]);
        let qvid_check: QVid = stwigs[0].root;
        assert_eq!(qvid_check, x);
    }
}
