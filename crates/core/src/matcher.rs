//! `MatchSTwig` (Algorithm 1): match one STwig against the memory cloud by
//! graph exploration, optionally pruned by binding information from
//! previously-processed STwigs.
//!
//! Two entry points share one emission core ([`explore_roots`]), so their
//! output tables are bit-identical row for row:
//!
//! * [`match_stwig`] — the `DirectRead` path: candidate labels are checked
//!   with `Index.hasLabel`, which may dereference a remote partition in
//!   place (tallied as a direct remote read).
//! * [`match_stwig_batched`] — the partition-local path: a frontier pass
//!   collects every remote neighbor id, one batched `Load` request per
//!   owning machine is exchanged over the [`Transport`], and matching then
//!   runs entirely against the local partition plus the owned
//!   [`trinity_sim::partition::CellBuf`] replies.

use crate::bindings::Bindings;
use crate::config::{FailurePolicy, MatchConfig};
use crate::error::StwigError;
use crate::hash::FxHashMap;
use crate::metrics::{ExploreCounters, FaultCounters};
use crate::query::QueryGraph;
use crate::retry::{retry_exchange, ExchangeOutcome};
use crate::stream::QueryControl;
use crate::stwig::STwig;
use crate::table::ResultTable;
use trinity_sim::ids::{LabelId, MachineId, VertexId};
use trinity_sim::partition::Cell;
use trinity_sim::transport::{Message, Transport};
use trinity_sim::MemoryCloud;

/// Matches one STwig from the given root candidates.
///
/// For every root candidate `n` (the caller decides whether these come from
/// the local string index or from a binding set, see §4.2):
///
/// 1. `Cloud.Load(n)` fetches the cell (label + neighbors);
/// 2. for each child query vertex, candidate children are the neighbors of
///    `n` that carry the child's label (`Index.hasLabel`, a possibly-remote
///    probe) and are admitted by the child's binding set;
/// 3. the cross product of child candidate sets is emitted, skipping rows
///    that map two query vertices to the same data vertex (a valid embedding
///    is injective).
///
/// The output table's columns are `[root, child_1, .., child_k]`.
#[allow(clippy::too_many_arguments)]
pub fn match_stwig(
    cloud: &MemoryCloud,
    machine: MachineId,
    query: &QueryGraph,
    stwig: &STwig,
    roots: &[VertexId],
    bindings: &Bindings,
    config: &MatchConfig,
    control: Option<&QueryControl>,
    counters: &mut ExploreCounters,
) -> ResultTable {
    explore_roots(
        query,
        stwig,
        roots,
        bindings,
        config,
        control,
        counters,
        |n| cloud.load(machine, n),
        |m, label| cloud.has_label(machine, m, label),
        |n| cloud.signature_of(n),
    )
}

/// The signature prune of one root: `true` when the root provably cannot
/// satisfy the STwig, so its neighbors need never be collected or probed.
/// Sound on both prongs — a root with fewer neighbors than the STwig has
/// children admits no injective child assignment, and a signature missing a
/// required child-label bit proves no neighbor carries that label (the
/// signature over-approximates the neighbor-label set). A root without a
/// signature (`None`) is never pruned on labels.
///
/// Both the frontier pass of [`match_stwig_batched`] and the emission core
/// call exactly this predicate, so a root pruned before frontier collection
/// is guaranteed to also be pruned at emission (no row can need a label the
/// frontier never fetched).
#[inline]
fn root_pruned(num_neighbors: usize, num_children: usize, sig: Option<u64>, required: u64) -> bool {
    num_neighbors < num_children || sig.is_some_and(|s| s & required != required)
}

/// [`match_stwig`] over the explicit message transport: frontier/superstep
/// exploration that never dereferences a remote partition.
///
/// Differences from [`match_stwig`]:
///
/// * `roots` must be **owned by `machine`** (the distributed executor's root
///   candidates always are — `Index.getID` is a local index); unowned roots
///   are skipped exactly like nonexistent vertices.
/// * Remote neighbor labels arrive as owned cells in batched `Load` replies
///   (one request per owning machine, split at
///   `config.transport_batch_ids` ids per envelope) instead of per-neighbor
///   `Index.hasLabel` probes.
///
/// The emitted table — and every [`ExploreCounters`] field — is
/// bit-identical to the `DirectRead` path; only the recorded network traffic
/// differs (actual envelopes instead of per-access estimates).
///
/// A transport protocol violation (a peer answering `LoadRequest` with the
/// wrong variant) fails this exploration with [`StwigError::Transport`] —
/// the malformed peer degrades one query, never the process. A pending
/// `control` interrupt is honored at every superstep flush: outstanding
/// envelopes are skipped and the emission pass runs against whatever labels
/// already arrived (missing labels only suppress rows, so every emitted row
/// stays a valid partial match).
///
/// Every exchange runs under `config.retry` (see [`crate::retry`]); what the
/// retry layer absorbed is tallied into `faults`. A machine that stays
/// unreachable after the budget fails the exploration with
/// [`StwigError::MachineUnavailable`] under [`FailurePolicy::Fail`]; under
/// [`FailurePolicy::Degrade`] the machine is recorded in
/// `faults.machines_lost` and its frontier labels stay unknown — rows
/// needing them are pruned, so every emitted row remains a verified partial
/// match over the surviving machines.
#[allow(clippy::too_many_arguments)]
pub fn match_stwig_batched(
    cloud: &MemoryCloud,
    transport: &dyn Transport,
    machine: MachineId,
    query: &QueryGraph,
    stwig: &STwig,
    roots: &[VertexId],
    bindings: &Bindings,
    config: &MatchConfig,
    control: Option<&QueryControl>,
    counters: &mut ExploreCounters,
    faults: &mut FaultCounters,
) -> Result<ResultTable, StwigError> {
    // ---- Superstep 1: frontier collection (local-only reads) ----
    // Visit every root that could emit rows and gather the neighbor ids
    // whose labels live on other machines, deduplicated as they stream in
    // (hubs are many roots' neighbor, so the set stays far smaller than the
    // scan). The root-level binding/label filters mirror the emission pass;
    // the `max_stwig_rows` early exit deliberately does not — a prefetch
    // cannot know where the cap will land before the frontier labels
    // arrive, so capped configs fetch labels for roots the emission pass
    // may never reach (extra prefetch traffic only; rows stay identical).
    let root_label = query.label(stwig.root);
    let required =
        trinity_sim::neighbor_index::required_mask(stwig.children.iter().map(|&c| query.label(c)));
    let mut frontier: crate::hash::VertexSet = crate::hash::VertexSet::default();
    for (root_idx, &n) in roots.iter().enumerate() {
        if root_idx % CONTROL_CHECK_ROOTS == 0 && control.is_some_and(QueryControl::interrupted) {
            // Ship only what was collected; the emission pass (and the
            // caller) observe the same interrupt.
            break;
        }
        if config.use_bindings && !bindings.admits(stwig.root, n) {
            continue;
        }
        let Some(cell) = cloud.load_local(machine, n) else {
            continue;
        };
        if cell.label != root_label {
            continue;
        }
        // Signature prune *before* neighbor collection: a pruned root's
        // neighbors never enter the frontier, so no Load envelope is spent
        // on them — this is where the exploration-phase traffic saving
        // comes from. The predicate is identical to the emission pass's, so
        // the skip can never starve a row of its labels; counting
        // (`roots_pruned`) happens only in the emission pass — this
        // frontier pass touches no counters, exactly like Degrade-mode
        // placeholder tables carry default counters.
        if config.pruning
            && root_pruned(
                cell.neighbors.len(),
                stwig.children.len(),
                cloud.signature_of(n),
                required,
            )
        {
            continue;
        }
        for m in cell.neighbors {
            if m != n && !cloud.owns_local(machine, m) {
                frontier.insert(m);
            }
        }
    }

    // ---- Superstep 2: one batched Load request per owning machine ----
    // (split into `transport_batch_ids`-sized envelopes), replies are owned
    // cells. STwig matching only consumes the frontier's *labels* (children
    // are depth-1), so the cells are requested projected — the owners keep
    // their adjacency at home. Ids are sorted per owner so the envelopes
    // are deterministic byte for byte.
    let mut remote_labels: FxHashMap<VertexId, LabelId> = FxHashMap::default();
    remote_labels.reserve(frontier.len());
    let mut per_owner: Vec<Vec<VertexId>> = vec![Vec::new(); cloud.num_machines()];
    for id in frontier {
        per_owner[cloud.machine_of(id).index()].push(id);
    }
    'flush: for (owner, mut ids) in per_owner.into_iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        ids.sort_unstable();
        let owner = MachineId(owner as u16);
        // A machine already lost earlier in this query stays lost — don't
        // burn another retry ladder rediscovering the same corpse.
        if faults.is_lost(owner.0) {
            continue;
        }
        for chunk in ids.chunks(config.transport_batch_ids.max(1)) {
            // Cooperative check at every superstep flush: a cancelled or
            // deadline-expired query stops issuing envelopes immediately.
            if control.is_some_and(QueryControl::interrupted) {
                break 'flush;
            }
            let reply = match retry_exchange(
                transport,
                &config.retry,
                machine,
                owner,
                &|| Message::LoadRequest {
                    ids: chunk.to_vec(),
                    with_neighbors: false,
                },
                control,
                faults,
            ) {
                Ok(ExchangeOutcome::Reply(reply)) => reply,
                Ok(ExchangeOutcome::Interrupted) => break 'flush,
                Err(StwigError::MachineUnavailable { machine: lost, .. })
                    if config.failure_policy == FailurePolicy::Degrade =>
                {
                    // Graceful degradation: this owner's labels stay
                    // unknown, which only suppresses rows needing them.
                    faults.record_lost(lost);
                    continue 'flush;
                }
                Err(err) => return Err(err),
            };
            let cells = match reply {
                Message::LoadReply { cells } => cells,
                other => {
                    return Err(StwigError::Transport(
                        trinity_sim::transport::TransportError::UnexpectedReply {
                            expected: "LoadReply",
                            got: other.kind(),
                        },
                    ))
                }
            };
            for cell in cells {
                remote_labels.insert(cell.id, cell.label);
            }
        }
    }

    // ---- Superstep 3: emission, entirely partition-local ----
    Ok(explore_roots(
        query,
        stwig,
        roots,
        bindings,
        config,
        control,
        counters,
        |n| cloud.load_local(machine, n),
        |m, label| {
            if cloud.owns_local(machine, m) {
                cloud.label_of_local(machine, m) == Some(label)
            } else {
                remote_labels.get(&m) == Some(&label)
            }
        },
        |n| cloud.signature_of(n),
    ))
}

/// How many roots are processed between cooperative `control` checks: small
/// enough to stay responsive, large enough that the clock read disappears
/// next to the per-root cell load.
const CONTROL_CHECK_ROOTS: usize = 32;

/// How many emitted rows between cooperative `control` checks *inside* the
/// cross-product emission — one hub root can emit millions of rows, so the
/// root-granularity check alone would let a single root blow through a
/// deadline.
const CONTROL_CHECK_ROWS: u64 = 256;

/// The shared emission core of [`match_stwig`] / [`match_stwig_batched`]:
/// the root loop, child-candidate construction and injective cross-product
/// emission of Algorithm 1, parameterized over how a cell is loaded and how
/// a neighbor's label is checked. Both callers must present the same data
/// through `load` / `has_label` for the outputs to agree — which is exactly
/// what the transport's owned replies guarantee.
#[allow(clippy::too_many_arguments)]
fn explore_roots<'a>(
    query: &QueryGraph,
    stwig: &STwig,
    roots: &[VertexId],
    bindings: &Bindings,
    config: &MatchConfig,
    control: Option<&QueryControl>,
    counters: &mut ExploreCounters,
    load: impl Fn(VertexId) -> Option<Cell<'a>>,
    has_label: impl Fn(VertexId, LabelId) -> bool,
    signature: impl Fn(VertexId) -> Option<u64>,
) -> ResultTable {
    let mut columns = Vec::with_capacity(1 + stwig.children.len());
    columns.push(stwig.root);
    columns.extend(stwig.children.iter().copied());
    let mut table = ResultTable::new(columns);

    let root_label = query.label(stwig.root);
    let child_labels: Vec<_> = stwig.children.iter().map(|&c| query.label(c)).collect();
    let required = trinity_sim::neighbor_index::required_mask(child_labels.iter().copied());

    let mut row_buf: Vec<VertexId> = Vec::with_capacity(1 + stwig.children.len());
    let mut child_candidates: Vec<Vec<VertexId>> = vec![Vec::new(); stwig.children.len()];
    // Compact-tier cells hand out encoded neighbor runs. The per-child scan
    // below walks the run once per child, so decode it once per root into a
    // reusable scratch (inline stack array for small degrees); plain-tier
    // cells pass their slice through `materialize` untouched.
    let mut scratch = trinity_sim::compact::NeighborScratch::new();

    'roots: for (root_idx, &n) in roots.iter().enumerate() {
        if let Some(limit) = config.max_stwig_rows {
            if table.num_rows() >= limit {
                break;
            }
        }
        if root_idx % CONTROL_CHECK_ROOTS == 0 && control.is_some_and(QueryControl::interrupted) {
            // Stop exploring; every row already emitted is a valid partial
            // match, and the caller aborts the query at its next check.
            break;
        }
        counters.roots_scanned += 1;
        // The root itself must be admitted by its own binding (when the
        // caller passes a broader candidate list than the binding set).
        if config.use_bindings && !bindings.admits(stwig.root, n) {
            counters.rows_pruned_by_bindings += 1;
            continue;
        }
        let cell = match load(n) {
            Some(c) => c,
            None => continue,
        };
        counters.cells_loaded += 1;
        if cell.label != root_label {
            continue;
        }
        // Signature prune: skip roots that provably cannot cover the
        // STwig's child-label multiset, before a single neighbor is probed.
        // A pruned root would have emitted zero rows anyway (some child's
        // candidate set is empty, or injectivity is impossible by
        // pigeonhole), so the emitted table — and `rows_emitted` — are
        // bit-identical with pruning on and off; only `label_probes` (and
        // binding-filter work) shrink.
        if config.pruning
            && root_pruned(
                cell.neighbors.len(),
                stwig.children.len(),
                signature(n),
                required,
            )
        {
            counters.roots_pruned += 1;
            continue;
        }

        // Candidate children per child query vertex.
        let neighbors = cell.neighbors.materialize(&mut scratch);
        for (ci, (&child, &label)) in stwig.children.iter().zip(child_labels.iter()).enumerate() {
            let cands = &mut child_candidates[ci];
            cands.clear();
            for &m in neighbors {
                if m == n {
                    continue;
                }
                counters.label_probes += 1;
                if !has_label(m, label) {
                    continue;
                }
                if config.use_bindings && !bindings.admits(child, m) {
                    counters.rows_pruned_by_bindings += 1;
                    continue;
                }
                cands.push(m);
            }
            if cands.is_empty() {
                continue 'roots;
            }
        }

        // Emit the cross product with injectivity among the STwig's vertices.
        row_buf.clear();
        row_buf.push(n);
        emit_rows(
            &child_candidates,
            0,
            &mut row_buf,
            &mut table,
            config.max_stwig_rows,
            control,
            counters,
        );
    }
    table
}

/// Recursively enumerates the cross product of child candidate lists,
/// skipping assignments that reuse a data vertex already in the row.
/// Returns `false` when emission must stop entirely — the row cap was
/// reached, or an interrupt was observed (a hub root mid-emission must not
/// outlive the deadline; rows already emitted remain valid partial matches).
#[allow(clippy::too_many_arguments)]
fn emit_rows(
    child_candidates: &[Vec<VertexId>],
    depth: usize,
    row: &mut Vec<VertexId>,
    table: &mut ResultTable,
    limit: Option<usize>,
    control: Option<&QueryControl>,
    counters: &mut ExploreCounters,
) -> bool {
    if let Some(l) = limit {
        if table.num_rows() >= l {
            return false;
        }
    }
    if depth == child_candidates.len() {
        if counters.rows_emitted.is_multiple_of(CONTROL_CHECK_ROWS)
            && control.is_some_and(QueryControl::interrupted)
        {
            return false;
        }
        table.push_row(row);
        counters.rows_emitted += 1;
        return true;
    }
    for &cand in &child_candidates[depth] {
        if row.contains(&cand) {
            continue;
        }
        row.push(cand);
        let keep_going = emit_rows(
            child_candidates,
            depth + 1,
            row,
            table,
            limit,
            control,
            counters,
        );
        row.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    /// Builds the paper's Figure 5 data graph (a1..a3, b1..b4, c1..c3, d, e, f
    /// vertices with the edges needed for the q1 = (a, {b, c}) example).
    fn fig5_like_cloud(machines: usize) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        // a-nodes: 0..3 → a1, a2, a3
        for i in 0..3u64 {
            b.add_vertex(v(i), "a");
        }
        // b-nodes: 10..14 → b1..b4
        for i in 10..14u64 {
            b.add_vertex(v(i), "b");
        }
        // c-nodes: 20..23 → c1..c3
        for i in 20..23u64 {
            b.add_vertex(v(i), "c");
        }
        // a1: b1, b4, c1
        b.add_edge(v(0), v(10));
        b.add_edge(v(0), v(13));
        b.add_edge(v(0), v(20));
        // a2: b1, b2, c1, c2, c3
        b.add_edge(v(1), v(10));
        b.add_edge(v(1), v(11));
        b.add_edge(v(1), v(20));
        b.add_edge(v(1), v(21));
        b.add_edge(v(1), v(22));
        // a3: b2, c2, c3
        b.add_edge(v(2), v(11));
        b.add_edge(v(2), v(21));
        b.add_edge(v(2), v(22));
        b.build(machines, CostModel::default())
    }

    fn simple_query(cloud: &MemoryCloud) -> (QueryGraph, QVid, QVid, QVid) {
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(cloud, "a").unwrap();
        let b = qb.vertex_by_name(cloud, "b").unwrap();
        let c = qb.vertex_by_name(cloud, "c").unwrap();
        qb.edge(a, b).edge(a, c).edge(b, c);
        (qb.build().unwrap(), a, b, c)
    }

    #[test]
    fn match_stwig_finds_all_root_child_combinations() {
        let cloud = fig5_like_cloud(1);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let roots = cloud.all_ids_with_label(query.label(a));
        let bindings = Bindings::new(query.num_vertices());
        let mut counters = ExploreCounters::default();
        let table = match_stwig(
            &cloud,
            MachineId(0),
            &query,
            &stwig,
            &roots,
            &bindings,
            &MatchConfig::default(),
            None,
            &mut counters,
        );
        // a1 pairs: (b1|b4) x (c1) = 2; a2: (b1|b2) x (c1|c2|c3) = 6;
        // a3: (b2) x (c2|c3) = 2 → 10 rows, matching the paper's G(q1).
        assert_eq!(table.num_rows(), 10);
        assert_eq!(counters.rows_emitted, 10);
        assert_eq!(counters.cells_loaded, 3);
        assert!(counters.label_probes > 0);
        assert_eq!(table.columns(), &[a, b, c]);
    }

    #[test]
    fn bindings_prune_candidates() {
        let cloud = fig5_like_cloud(1);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let roots = cloud.all_ids_with_label(query.label(a));
        let mut bindings = Bindings::new(query.num_vertices());
        // Restrict b to b1 only.
        bindings.bind(b, [v(10)].into_iter().collect());
        let mut counters = ExploreCounters::default();
        let table = match_stwig(
            &cloud,
            MachineId(0),
            &query,
            &stwig,
            &roots,
            &bindings,
            &MatchConfig::default(),
            None,
            &mut counters,
        );
        // a1 with b1: c1 → 1; a2 with b1: c1,c2,c3 → 3; a3 has no b1 → 0.
        assert_eq!(table.num_rows(), 4);
        assert!(counters.rows_pruned_by_bindings > 0);
    }

    #[test]
    fn disabled_bindings_ignore_filters() {
        let cloud = fig5_like_cloud(1);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let roots = cloud.all_ids_with_label(query.label(a));
        let mut bindings = Bindings::new(query.num_vertices());
        bindings.bind(b, [v(10)].into_iter().collect());
        let mut counters = ExploreCounters::default();
        let cfg = MatchConfig::default().with_bindings(false);
        let table = match_stwig(
            &cloud,
            MachineId(0),
            &query,
            &stwig,
            &roots,
            &bindings,
            &cfg,
            None,
            &mut counters,
        );
        assert_eq!(table.num_rows(), 10);
    }

    #[test]
    fn row_limit_truncates_output() {
        let cloud = fig5_like_cloud(1);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let roots = cloud.all_ids_with_label(query.label(a));
        let bindings = Bindings::new(query.num_vertices());
        let mut counters = ExploreCounters::default();
        let cfg = MatchConfig {
            max_stwig_rows: Some(3),
            ..Default::default()
        };
        let table = match_stwig(
            &cloud,
            MachineId(0),
            &query,
            &stwig,
            &roots,
            &bindings,
            &cfg,
            None,
            &mut counters,
        );
        assert_eq!(table.num_rows(), 3);
    }

    #[test]
    fn wrong_label_roots_are_skipped() {
        let cloud = fig5_like_cloud(1);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        // Pass b-labeled vertices as roots: none match the root label.
        let roots = cloud.all_ids_with_label(query.label(b));
        let bindings = Bindings::new(query.num_vertices());
        let mut counters = ExploreCounters::default();
        let table = match_stwig(
            &cloud,
            MachineId(0),
            &query,
            &stwig,
            &roots,
            &bindings,
            &MatchConfig::default(),
            None,
            &mut counters,
        );
        assert!(table.is_empty());
    }

    #[test]
    fn remote_probes_are_charged_to_the_network() {
        let cloud = fig5_like_cloud(4);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let bindings = Bindings::new(query.num_vertices());
        cloud.reset_traffic();
        let mut counters = ExploreCounters::default();
        let mut total_rows = 0;
        for m in cloud.machines() {
            let roots = cloud.get_ids(m, query.label(a)).to_vec();
            let t = match_stwig(
                &cloud,
                m,
                &query,
                &stwig,
                &roots,
                &bindings,
                &MatchConfig::default(),
                None,
                &mut counters,
            );
            total_rows += t.num_rows();
        }
        assert_eq!(total_rows, 10);
        assert!(cloud.traffic().total_messages() > 0);
    }

    #[test]
    fn batched_matcher_is_bit_identical_and_partition_local() {
        use trinity_sim::transport::ChannelTransport;
        for machines in [1usize, 2, 4] {
            let cloud = fig5_like_cloud(machines);
            let (query, a, b, c) = simple_query(&cloud);
            let stwig = STwig::new(a, vec![b, c]);
            let transport = ChannelTransport::new(&cloud);
            // Sweep tiny batch caps so multi-envelope splitting is covered,
            // and both prune settings so signature pruning provably keeps
            // the two transports in lockstep.
            for batch in [1usize, 2, 4096] {
                for pruning in [false, true] {
                    let cfg = MatchConfig::default()
                        .with_transport_batch_ids(batch)
                        .with_pruning(pruning);
                    let mut total = 0usize;
                    for k in cloud.machines() {
                        let roots = cloud.get_ids(k, query.label(a)).to_vec();
                        let bindings = Bindings::new(query.num_vertices());
                        let mut direct_counters = ExploreCounters::default();
                        let direct = match_stwig(
                            &cloud,
                            k,
                            &query,
                            &stwig,
                            &roots,
                            &bindings,
                            &cfg,
                            None,
                            &mut direct_counters,
                        );
                        cloud.reset_traffic();
                        let mut batched_counters = ExploreCounters::default();
                        let mut faults = FaultCounters::default();
                        let batched = match_stwig_batched(
                            &cloud,
                            &transport,
                            k,
                            &query,
                            &stwig,
                            &roots,
                            &bindings,
                            &cfg,
                            None,
                            &mut batched_counters,
                            &mut faults,
                        )
                        .unwrap();
                        assert!(!faults.any(), "fault-free run must count nothing");
                        assert_eq!(direct, batched, "machine {k}, batch {batch}");
                        assert_eq!(direct_counters, batched_counters);
                        if !pruning {
                            assert_eq!(direct_counters.roots_pruned, 0);
                        }
                        assert_eq!(
                            cloud.direct_remote_reads(),
                            0,
                            "batched matching must never dereference a remote partition"
                        );
                        total += batched.num_rows();
                    }
                    assert_eq!(total, 10, "the G(q1) rows of the paper's Fig. 5");
                }
            }
        }
    }

    #[test]
    fn smaller_transport_batches_send_more_envelopes() {
        use trinity_sim::transport::ChannelTransport;
        let cloud = fig5_like_cloud(4);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let transport = ChannelTransport::new(&cloud);
        let bindings = Bindings::new(query.num_vertices());
        let mut messages = Vec::new();
        for batch in [1usize, 64] {
            let cfg = MatchConfig::default().with_transport_batch_ids(batch);
            cloud.reset_traffic();
            for k in cloud.machines() {
                let roots = cloud.get_ids(k, query.label(a)).to_vec();
                let mut counters = ExploreCounters::default();
                let _ = match_stwig_batched(
                    &cloud,
                    &transport,
                    k,
                    &query,
                    &stwig,
                    &roots,
                    &bindings,
                    &cfg,
                    None,
                    &mut counters,
                    &mut FaultCounters::default(),
                )
                .unwrap();
            }
            messages.push(cloud.traffic().total_messages());
        }
        assert!(
            messages[0] > messages[1],
            "1-id envelopes ({}) must outnumber 64-id envelopes ({})",
            messages[0],
            messages[1]
        );
    }

    #[test]
    fn malformed_peer_reply_degrades_the_query_not_the_process() {
        use trinity_sim::transport::TransportError;
        // A peer that answers every request with the wrong variant: the
        // batched matcher must surface a typed `StwigError::Transport`
        // instead of panicking the worker.
        struct LyingTransport;
        impl Transport for LyingTransport {
            fn exchange(
                &self,
                _src: MachineId,
                _dst: MachineId,
                _msg: Message,
            ) -> Result<Message, TransportError> {
                Ok(Message::GetIdsReply { ids: vec![] })
            }
            fn alloc_seq(&self, _src: MachineId, _dst: MachineId) -> u64 {
                0
            }
            fn post_envelope(&self, _dst: MachineId, _env: trinity_sim::transport::Envelope) {}
            fn drain(&self, _dst: MachineId) -> Vec<trinity_sim::transport::Envelope> {
                Vec::new()
            }
        }
        let cloud = fig5_like_cloud(4);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let bindings = Bindings::new(query.num_vertices());
        // Find a machine whose frontier actually crosses partitions so an
        // exchange happens.
        let mut saw_error = false;
        for k in cloud.machines() {
            let roots = cloud.get_ids(k, query.label(a)).to_vec();
            let mut counters = ExploreCounters::default();
            match match_stwig_batched(
                &cloud,
                &LyingTransport,
                k,
                &query,
                &stwig,
                &roots,
                &bindings,
                &MatchConfig::default(),
                None,
                &mut counters,
                &mut FaultCounters::default(),
            ) {
                Err(crate::error::StwigError::Transport(TransportError::UnexpectedReply {
                    expected,
                    got,
                })) => {
                    assert_eq!(expected, "LoadReply");
                    assert_eq!(got, "GetIdsReply");
                    saw_error = true;
                }
                Err(other) => panic!("unexpected error kind: {other}"),
                Ok(_) => {} // machine had no remote frontier
            }
        }
        assert!(saw_error, "some machine must need a remote exchange");
    }

    /// Fig-5-like cloud plus two dead "a" roots: one with only b-neighbors
    /// (label prune) and one with a single neighbor (degree prune).
    fn fig5_with_dead_roots(machines: usize) -> MemoryCloud {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..3u64 {
            b.add_vertex(v(i), "a");
        }
        b.add_vertex(v(3), "a"); // b-neighbors only: fails the c-label bit
        b.add_vertex(v(4), "a"); // one neighbor: fails the degree check
        for i in 10..14u64 {
            b.add_vertex(v(i), "b");
        }
        for i in 20..23u64 {
            b.add_vertex(v(i), "c");
        }
        b.add_edge(v(0), v(10));
        b.add_edge(v(0), v(13));
        b.add_edge(v(0), v(20));
        b.add_edge(v(1), v(10));
        b.add_edge(v(1), v(11));
        b.add_edge(v(1), v(20));
        b.add_edge(v(1), v(21));
        b.add_edge(v(1), v(22));
        b.add_edge(v(2), v(11));
        b.add_edge(v(2), v(21));
        b.add_edge(v(2), v(22));
        b.add_edge(v(3), v(12));
        b.add_edge(v(3), v(13));
        b.add_edge(v(4), v(10));
        b.build(machines, CostModel::default())
    }

    #[test]
    fn pruning_skips_dead_roots_without_changing_rows() {
        let cloud = fig5_with_dead_roots(1);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let roots = cloud.all_ids_with_label(query.label(a));
        let bindings = Bindings::new(query.num_vertices());

        let run = |pruning: bool| {
            let mut counters = ExploreCounters::default();
            let cfg = MatchConfig::default().with_pruning(pruning);
            let table = match_stwig(
                &cloud,
                MachineId(0),
                &query,
                &stwig,
                &roots,
                &bindings,
                &cfg,
                None,
                &mut counters,
            );
            (table, counters)
        };
        let (off_table, off) = run(false);
        let (on_table, on) = run(true);

        assert_eq!(off_table, on_table, "pruning must never change rows");
        assert_eq!(off_table.num_rows(), 10);
        assert_eq!(off.roots_pruned, 0);
        assert_eq!(on.roots_pruned, 2, "both dead roots are pruned");
        // Pruning happens after the cell load, so the scan-side counters
        // stay equal; only the probe work shrinks.
        assert_eq!(on.roots_scanned, off.roots_scanned);
        assert_eq!(on.cells_loaded, off.cells_loaded);
        assert_eq!(on.rows_emitted, off.rows_emitted);
        assert!(
            on.label_probes < off.label_probes,
            "pruned roots must not be probed ({} vs {})",
            on.label_probes,
            off.label_probes
        );
    }

    #[test]
    fn pruning_reduces_batched_frontier_traffic() {
        use trinity_sim::transport::ChannelTransport;
        // Distribute the dead roots across machines: their neighbors must
        // never enter the frontier, so fewer Load envelopes cross machines.
        let cloud = fig5_with_dead_roots(4);
        let (query, a, b, c) = simple_query(&cloud);
        let stwig = STwig::new(a, vec![b, c]);
        let transport = ChannelTransport::new(&cloud);
        let bindings = Bindings::new(query.num_vertices());
        let mut bytes = Vec::new();
        let mut rows = Vec::new();
        for pruning in [false, true] {
            let cfg = MatchConfig::default().with_pruning(pruning);
            cloud.reset_traffic();
            let mut total = 0usize;
            for k in cloud.machines() {
                let roots = cloud.get_ids(k, query.label(a)).to_vec();
                let mut counters = ExploreCounters::default();
                let t = match_stwig_batched(
                    &cloud,
                    &transport,
                    k,
                    &query,
                    &stwig,
                    &roots,
                    &bindings,
                    &cfg,
                    None,
                    &mut counters,
                    &mut FaultCounters::default(),
                )
                .unwrap();
                total += t.num_rows();
            }
            bytes.push(cloud.traffic().total_bytes());
            rows.push(total);
        }
        assert_eq!(rows[0], rows[1], "identical rows either way");
        assert!(
            bytes[1] < bytes[0],
            "pruned frontier must ship fewer bytes ({} vs {})",
            bytes[1],
            bytes[0]
        );
    }

    #[test]
    fn injectivity_within_stwig() {
        // Graph: x labeled "p" connected to y labeled "q"; query STwig has a
        // root "p" with two children both labeled "q": only one data vertex
        // matches, so no injective assignment exists.
        let mut gb = GraphBuilder::new_undirected();
        gb.add_vertex(v(1), "p");
        gb.add_vertex(v(2), "q");
        gb.add_edge(v(1), v(2));
        let cloud = gb.build(1, CostModel::free());
        let mut qb = QueryGraph::builder();
        let r = qb.vertex_by_name(&cloud, "p").unwrap();
        let c1 = qb.vertex_by_name(&cloud, "q").unwrap();
        let c2 = qb.vertex_by_name(&cloud, "q").unwrap();
        qb.edge(r, c1).edge(r, c2).edge(c1, c2);
        let query = qb.build().unwrap();
        let stwig = STwig::new(r, vec![c1, c2]);
        let bindings = Bindings::new(query.num_vertices());
        let mut counters = ExploreCounters::default();
        let table = match_stwig(
            &cloud,
            MachineId(0),
            &query,
            &stwig,
            &[v(1)],
            &bindings,
            &MatchConfig::default(),
            None,
            &mut counters,
        );
        assert!(table.is_empty());
    }
}
