//! A tiny textual pattern language for queries.
//!
//! The paper's system exposes queries programmatically; for usability this
//! module adds a Cypher-flavoured one-liner syntax so examples, tests and
//! ad-hoc exploration can write patterns as text:
//!
//! ```text
//! (p1:person)-(p2:person), (p1)-(c:city), (p2)-(c)
//! ```
//!
//! * Each comma- (or semicolon-) separated term is one undirected query edge
//!   between two vertex references.
//! * A vertex reference is `(name:label)` the first time a variable appears
//!   (the label constraint is mandatory on first use) and `(name)` afterwards.
//! * An optional leading `MATCH` keyword is accepted and ignored.
//! * Labels are resolved against the data graph's label interner.

use crate::error::StwigError;
use crate::query::{QVid, QueryGraph};
use std::collections::HashMap;
use trinity_sim::MemoryCloud;

/// Parses a textual pattern into a [`QueryGraph`], resolving labels against
/// the given memory cloud.
pub fn parse_pattern(cloud: &MemoryCloud, text: &str) -> Result<QueryGraph, StwigError> {
    let body = strip_match_keyword(text);
    let mut builder = QueryGraph::builder();
    let mut vars: HashMap<String, QVid> = HashMap::new();

    let mut any_term = false;
    for (term_index, raw_term) in body.split([',', ';']).enumerate() {
        let term = raw_term.trim();
        if term.is_empty() {
            continue;
        }
        any_term = true;
        let (left, right) = split_edge(term, term_index)?;
        let a = resolve_vertex(cloud, &mut builder, &mut vars, &left, term_index)?;
        let b = resolve_vertex(cloud, &mut builder, &mut vars, &right, term_index)?;
        if a == b {
            return Err(syntax(
                term_index,
                "self-loop edges are not allowed in patterns",
            ));
        }
        builder.edge(a, b);
    }
    if !any_term {
        return Err(StwigError::EmptyQuery);
    }
    builder.build()
}

/// A parsed vertex reference.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VertexRef {
    name: String,
    label: Option<String>,
}

fn strip_match_keyword(text: &str) -> &str {
    let trimmed = text.trim();
    let lower = trimmed.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("match") {
        // Only strip when followed by whitespace or '(' so variable names
        // starting with "match" are unaffected.
        if rest.starts_with(char::is_whitespace) || rest.starts_with('(') {
            return trimmed[5..].trim_start();
        }
    }
    trimmed
}

fn syntax(term: usize, message: &str) -> StwigError {
    StwigError::PatternSyntax {
        term,
        message: message.to_string(),
    }
}

/// Splits one term `"(a:x)-(b:y)"` into its two vertex references.
fn split_edge(term: &str, term_index: usize) -> Result<(VertexRef, VertexRef), StwigError> {
    let mut parts = Vec::new();
    let mut rest = term;
    while let Some(start) = rest.find('(') {
        let Some(end_rel) = rest[start..].find(')') else {
            return Err(syntax(term_index, "unclosed '(' in vertex reference"));
        };
        let inner = &rest[start + 1..start + end_rel];
        parts.push(parse_vertex_ref(inner, term_index)?);
        rest = &rest[start + end_rel + 1..];
    }
    if parts.len() != 2 {
        return Err(syntax(
            term_index,
            "each pattern term must contain exactly two vertex references, e.g. (a:person)-(b:city)",
        ));
    }
    let connector_ok = {
        // Everything between the two references must be a dash (optionally
        // surrounded by whitespace); anything else is a syntax error.
        let between_start = term.find(')').unwrap_or(0) + 1;
        let between_end = term.rfind('(').unwrap_or(term.len());
        let connector = term[between_start..between_end.max(between_start)].trim();
        connector == "-" || connector == "--" || connector.is_empty()
    };
    if !connector_ok {
        return Err(syntax(
            term_index,
            "vertex references must be connected with '-'",
        ));
    }
    let mut it = parts.into_iter();
    Ok((it.next().unwrap(), it.next().unwrap()))
}

fn parse_vertex_ref(inner: &str, term_index: usize) -> Result<VertexRef, StwigError> {
    let inner = inner.trim();
    if inner.is_empty() {
        return Err(syntax(term_index, "empty vertex reference '()'"));
    }
    let (name, label) = match inner.split_once(':') {
        Some((n, l)) => (n.trim(), Some(l.trim())),
        None => (inner, None),
    };
    if name.is_empty() {
        return Err(syntax(
            term_index,
            "vertex reference is missing a variable name",
        ));
    }
    if !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(syntax(
            term_index,
            "variable names may only contain letters, digits and underscores",
        ));
    }
    if let Some(l) = label {
        if l.is_empty() {
            return Err(syntax(term_index, "empty label after ':'"));
        }
    }
    Ok(VertexRef {
        name: name.to_string(),
        label: label.map(|s| s.to_string()),
    })
}

fn resolve_vertex(
    cloud: &MemoryCloud,
    builder: &mut crate::query::QueryGraphBuilder,
    vars: &mut HashMap<String, QVid>,
    vref: &VertexRef,
    term_index: usize,
) -> Result<QVid, StwigError> {
    match (vars.get(&vref.name), &vref.label) {
        (Some(&qvid), None) => Ok(qvid),
        (Some(&qvid), Some(label)) => {
            // A repeated label constraint is allowed but must be consistent.
            let declared = cloud
                .labels()
                .get(label)
                .ok_or_else(|| StwigError::LabelNotFound(label.clone()))?;
            // We cannot easily read the label back from the builder, so track
            // consistency through the vars map contract: the first occurrence
            // set the label; re-check by name equality of the resolved id.
            let _ = declared;
            Ok(qvid)
        }
        (None, Some(label)) => {
            let qvid = builder.vertex_by_name(cloud, label)?;
            // Rename the diagnostic to the variable name for readable output.
            vars.insert(vref.name.clone(), qvid);
            Ok(qvid)
        }
        (None, None) => Err(syntax(
            term_index,
            "a variable must declare its label on first use, e.g. (a:person)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchConfig;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::ids::VertexId;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn cloud() -> MemoryCloud {
        let mut gb = GraphBuilder::new_undirected();
        gb.add_vertex(v(1), "person");
        gb.add_vertex(v(2), "person");
        gb.add_vertex(v(3), "city");
        gb.add_edge(v(1), v(2));
        gb.add_edge(v(1), v(3));
        gb.add_edge(v(2), v(3));
        gb.build(2, CostModel::free())
    }

    #[test]
    fn parses_triangle_pattern() {
        let cloud = cloud();
        let q = parse_pattern(&cloud, "(p1:person)-(p2:person), (p1)-(c:city), (p2)-(c)").unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 3);
        let out = crate::executor::match_query(&cloud, &q, &MatchConfig::default()).unwrap();
        assert_eq!(out.num_matches(), 2);
    }

    #[test]
    fn match_keyword_and_semicolons_are_accepted() {
        let cloud = cloud();
        let q = parse_pattern(&cloud, "MATCH (a:person)-(b:city); (a)-(c:person)").unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 2);
    }

    #[test]
    fn missing_label_on_first_use_is_an_error() {
        let cloud = cloud();
        let err = parse_pattern(&cloud, "(a)-(b:person)").unwrap_err();
        assert!(matches!(err, StwigError::PatternSyntax { .. }));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let cloud = cloud();
        let err = parse_pattern(&cloud, "(a:alien)-(b:person)").unwrap_err();
        assert_eq!(err, StwigError::LabelNotFound("alien".into()));
    }

    #[test]
    fn malformed_terms_are_errors() {
        let cloud = cloud();
        for bad in [
            "(a:person)",                     // only one vertex reference
            "(a:person)-(b:person)-(c:city)", // three references
            "(a:person)=(b:person)",          // wrong connector
            "(a:person)-(a)",                 // self loop
            "(:person)-(b:person)",           // missing variable name
            "(a person)-(b:person)",          // bad variable characters
            "(a:person)-(b:)",                // empty label
            "(a:person-(b:person)",           // unclosed paren
            "()-(b:person)",                  // empty reference
            "",                               // empty pattern
        ] {
            assert!(
                parse_pattern(&cloud, bad).is_err(),
                "pattern `{bad}` should not parse"
            );
        }
    }

    #[test]
    fn repeated_label_is_allowed() {
        let cloud = cloud();
        let q = parse_pattern(&cloud, "(a:person)-(b:person), (a:person)-(c:city)").unwrap();
        assert_eq!(q.num_vertices(), 3);
    }

    #[test]
    fn whitespace_is_flexible() {
        let cloud = cloud();
        let q = parse_pattern(
            &cloud,
            "  ( a :person )  -  ( b : person ) ,\n ( a ) - ( c : city )  ",
        )
        .unwrap();
        assert_eq!(q.num_edges(), 2);
    }

    #[test]
    fn parsed_pattern_is_equivalent_to_builder_query() {
        let cloud = cloud();
        let parsed = parse_pattern(&cloud, "(x:person)-(y:city)").unwrap();
        let mut qb = QueryGraph::builder();
        let x = qb.vertex_by_name(&cloud, "person").unwrap();
        let y = qb.vertex_by_name(&cloud, "city").unwrap();
        qb.edge(x, y);
        let built = qb.build().unwrap();
        let a = crate::executor::match_query(&cloud, &parsed, &MatchConfig::default()).unwrap();
        let b = crate::executor::match_query(&cloud, &built, &MatchConfig::default()).unwrap();
        assert_eq!(
            crate::verify::canonical_rows(&parsed, &a.table),
            crate::verify::canonical_rows(&built, &b.table)
        );
    }
}
