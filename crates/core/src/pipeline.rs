//! Block-based pipelined join (§4.2 step 3, last paragraph).
//!
//! Even after exploration-time pruning and join-order selection, the
//! intermediate results of a multi-way join can exceed the memory budget of a
//! memory-cloud node. The paper therefore splits the join into rounds: in
//! each round only a block of the driver table participates, so partial
//! results stream out before the full join completes and the query can stop
//! as soon as the requested number of matches (1024 in the paper's
//! experiments) has been produced.

use crate::config::MatchConfig;
use crate::join::{hash_join, multiway_join, select_join_order};
use crate::metrics::JoinCounters;
use crate::table::ResultTable;

/// Joins the STwig result tables into final embeddings using the block-based
/// pipeline strategy.
///
/// * The join order is chosen by [`select_join_order`] (unless disabled in
///   the config, in which case the given table order is used).
/// * The first table in the join order becomes the *driver*; it is processed
///   in blocks of `config.block_rows` rows.
/// * Each round joins one driver block against the remaining tables and
///   appends the surviving rows to the output, stopping as soon as
///   `config.max_results` rows have been produced.
pub fn pipelined_join(
    tables: &[ResultTable],
    config: &MatchConfig,
    counters: &mut JoinCounters,
) -> ResultTable {
    assert!(!tables.is_empty(), "cannot join zero tables");
    let order: Vec<usize> = if config.optimize_join_order {
        select_join_order(tables, config.join_sample_size)
    } else {
        (0..tables.len()).collect()
    };

    if tables.len() == 1 {
        let mut out = tables[0].clone();
        counters.pipeline_rounds += 1;
        if let Some(limit) = config.max_results {
            out.truncate(limit);
        }
        return out;
    }

    let driver = &tables[order[0]];
    let rest: Vec<&ResultTable> = order[1..].iter().map(|&i| &tables[i]).collect();

    // Pre-compute the output schema by a zero-row join so that an empty
    // driver still yields a table with the right columns.
    let mut output = {
        let empty_driver = driver.take_block(0, 0);
        let mut schema = empty_driver;
        let mut scratch = JoinCounters::default();
        for t in &rest {
            schema = hash_join(&schema, &t.take_block(0, 0), None, &mut scratch);
        }
        schema
    };

    let block_rows = config.block_rows.max(1);
    let mut start = 0usize;
    while start < driver.num_rows() {
        counters.pipeline_rounds += 1;
        let block = driver.take_block(start, block_rows);
        start += block_rows;

        let remaining_limit = config
            .max_results
            .map(|limit| limit.saturating_sub(output.num_rows()));
        if remaining_limit == Some(0) {
            break;
        }

        // Join this block against all remaining tables (in order).
        let mut round_tables: Vec<ResultTable> = Vec::with_capacity(1 + rest.len());
        round_tables.push(block);
        for t in &rest {
            round_tables.push((*t).clone());
        }
        let round_order: Vec<usize> = (0..round_tables.len()).collect();
        let round_result = multiway_join(&round_tables, &round_order, remaining_limit, counters);
        if !round_result.is_empty() {
            // Columns can come out in a different order than the schema if the
            // driver block was empty; they are identical otherwise.
            if round_result.columns() == output.columns() {
                output.append(&round_result);
            } else {
                // Re-project to the schema order.
                let mut row_buf = Vec::with_capacity(output.width());
                for r in 0..round_result.num_rows() {
                    row_buf.clear();
                    for &c in output.columns() {
                        row_buf.push(round_result.value(r, c));
                    }
                    output.push_row(&row_buf);
                }
            }
        }
        if let Some(limit) = config.max_results {
            if output.num_rows() >= limit {
                output.truncate(limit);
                break;
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;
    use trinity_sim::ids::VertexId;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn table(cols: &[u16], rows: &[&[u64]]) -> ResultTable {
        let mut t = ResultTable::new(cols.iter().map(|&c| q(c)).collect());
        for r in rows {
            let row: Vec<VertexId> = r.iter().map(|&x| v(x)).collect();
            t.push_row(&row);
        }
        t
    }

    fn chain_tables(pairs: usize) -> Vec<ResultTable> {
        // q0-q1 and q1-q2 tables with `pairs` matching chains.
        let rows_a: Vec<Vec<u64>> = (0..pairs as u64).map(|i| vec![i, 1000 + i]).collect();
        let rows_b: Vec<Vec<u64>> = (0..pairs as u64)
            .map(|i| vec![1000 + i, 2000 + i])
            .collect();
        let a = {
            let refs: Vec<&[u64]> = rows_a.iter().map(|r| r.as_slice()).collect();
            table(&[0, 1], &refs)
        };
        let b = {
            let refs: Vec<&[u64]> = rows_b.iter().map(|r| r.as_slice()).collect();
            table(&[1, 2], &refs)
        };
        vec![a, b]
    }

    #[test]
    fn pipeline_equals_full_join() {
        let tables = chain_tables(100);
        let mut c1 = JoinCounters::default();
        let full = multiway_join(&tables, &[0, 1], None, &mut c1);
        let mut c2 = JoinCounters::default();
        let cfg = MatchConfig {
            block_rows: 7,
            ..MatchConfig::default()
        };
        let mut piped = pipelined_join(&tables, &cfg, &mut c2);
        assert_eq!(piped.num_rows(), full.num_rows());
        assert!(c2.pipeline_rounds > 1);
        // Same set of rows.
        piped.dedup_rows();
        let mut full_sorted = full.clone();
        full_sorted.dedup_rows();
        assert_eq!(piped, full_sorted);
    }

    #[test]
    fn pipeline_stops_at_limit() {
        let tables = chain_tables(1000);
        let cfg = MatchConfig {
            block_rows: 10,
            max_results: Some(25),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 25);
        // Only a few rounds should have run (25 results at ≥10 per round).
        assert!(c.pipeline_rounds <= 4, "rounds = {}", c.pipeline_rounds);
    }

    #[test]
    fn pipeline_single_table() {
        let t = table(&[0, 1], &[&[1, 2], &[3, 4]]);
        let cfg = MatchConfig {
            max_results: Some(1),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&[t], &cfg, &mut c);
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn pipeline_empty_driver_yields_empty_with_schema() {
        let a = table(&[0, 1], &[]);
        let b = table(&[1, 2], &[&[1, 2]]);
        let cfg = MatchConfig::default();
        let mut c = JoinCounters::default();
        let out = pipelined_join(&[a, b], &cfg, &mut c);
        assert!(out.is_empty());
        assert_eq!(out.width(), 3);
    }

    #[test]
    fn pipeline_without_order_optimization() {
        let tables = chain_tables(10);
        let cfg = MatchConfig::default().with_join_order_optimization(false);
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 10);
    }
}
