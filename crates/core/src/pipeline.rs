//! Block-based pipelined join (§4.2 step 3, last paragraph).
//!
//! Even after exploration-time pruning and join-order selection, the
//! intermediate results of a multi-way join can exceed the memory budget of a
//! memory-cloud node. The paper therefore splits the join into rounds: in
//! each round only a block of the driver table participates, so partial
//! results stream out before the full join completes and the query can stop
//! as soon as the requested number of matches (1024 in the paper's
//! experiments) has been produced.

use crate::config::MatchConfig;
use crate::join::{select_join_order, PreparedJoin};
use crate::metrics::JoinCounters;
use crate::query::QVid;
use crate::table::ResultTable;

/// Joins the STwig result tables into final embeddings using the block-based
/// pipeline strategy.
///
/// * The join order is chosen by [`select_join_order`] (unless disabled in
///   the config, in which case the given table order is used).
/// * The first table in the join order becomes the *driver*; it is processed
///   in blocks of `config.block_rows` rows.
/// * The non-driver tables are indexed **once**, before the block loop
///   ([`PreparedJoin`]); each round probes those prepared indexes with one
///   driver block, so per-round memory stays bounded by the block and its
///   join output, as §4.2 intends — the rest tables are never copied or
///   re-indexed.
/// * Each round appends the surviving rows to the output, stopping as soon
///   as `config.max_results` rows have been produced.
pub fn pipelined_join(
    tables: &[ResultTable],
    config: &MatchConfig,
    counters: &mut JoinCounters,
) -> ResultTable {
    assert!(!tables.is_empty(), "cannot join zero tables");
    let order: Vec<usize> = if config.optimize_join_order {
        select_join_order(tables, config.join_sample_size)
    } else {
        (0..tables.len()).collect()
    };

    if tables.len() == 1 {
        let mut out = tables[0].clone();
        counters.pipeline_rounds += 1;
        if let Some(limit) = config.max_results {
            out.truncate(limit);
        }
        return out;
    }

    let driver = &tables[order[0]];
    let rest: Vec<&ResultTable> = order[1..].iter().map(|&i| &tables[i]).collect();

    // Index every rest table once against the schema the accumulated join
    // has when it reaches that table. The schemas are data-independent, so
    // this also yields the output schema (an empty driver then still
    // produces a table with the right columns).
    let mut schema: Vec<QVid> = driver.columns().to_vec();
    let mut prepared: Vec<PreparedJoin<'_>> = Vec::with_capacity(rest.len());
    for t in &rest {
        let join = PreparedJoin::new(&schema, t);
        schema = join.output_columns(&schema);
        prepared.push(join);
    }
    let mut output = ResultTable::new(schema);

    let block_rows = config.block_rows.max(1);
    let mut start = 0usize;
    while start < driver.num_rows() {
        counters.pipeline_rounds += 1;
        let block = driver.take_block(start, block_rows);
        start += block_rows;

        let remaining_limit = config
            .max_results
            .map(|limit| limit.saturating_sub(output.num_rows()));
        if remaining_limit == Some(0) {
            break;
        }

        // Probe the prepared rest-table indexes with this block (in order).
        // A limit is only safe on the last join: earlier truncation could
        // drop rows that would survive the remaining joins.
        let mut acc = block;
        for (i, join) in prepared.iter().enumerate() {
            let step_limit = if i + 1 == prepared.len() {
                remaining_limit
            } else {
                None
            };
            acc = join.join(&acc, step_limit, counters);
            if acc.is_empty() {
                break;
            }
        }
        if !acc.is_empty() {
            // Column orders are identical by construction; append_projected
            // re-projects defensively if they ever diverge.
            output.append_projected(&acc);
        }
        if let Some(limit) = config.max_results {
            if output.num_rows() >= limit {
                output.truncate(limit);
                break;
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::multiway_join;
    use trinity_sim::ids::VertexId;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn table(cols: &[u16], rows: &[&[u64]]) -> ResultTable {
        let mut t = ResultTable::new(cols.iter().map(|&c| q(c)).collect());
        for r in rows {
            let row: Vec<VertexId> = r.iter().map(|&x| v(x)).collect();
            t.push_row(&row);
        }
        t
    }

    fn chain_tables(pairs: usize) -> Vec<ResultTable> {
        // q0-q1 and q1-q2 tables with `pairs` matching chains.
        let rows_a: Vec<Vec<u64>> = (0..pairs as u64).map(|i| vec![i, 1000 + i]).collect();
        let rows_b: Vec<Vec<u64>> = (0..pairs as u64)
            .map(|i| vec![1000 + i, 2000 + i])
            .collect();
        let a = {
            let refs: Vec<&[u64]> = rows_a.iter().map(|r| r.as_slice()).collect();
            table(&[0, 1], &refs)
        };
        let b = {
            let refs: Vec<&[u64]> = rows_b.iter().map(|r| r.as_slice()).collect();
            table(&[1, 2], &refs)
        };
        vec![a, b]
    }

    #[test]
    fn pipeline_equals_full_join() {
        let tables = chain_tables(100);
        let mut c1 = JoinCounters::default();
        let full = multiway_join(&tables, &[0, 1], None, &mut c1);
        let mut c2 = JoinCounters::default();
        let cfg = MatchConfig {
            block_rows: 7,
            ..MatchConfig::default()
        };
        let mut piped = pipelined_join(&tables, &cfg, &mut c2);
        assert_eq!(piped.num_rows(), full.num_rows());
        assert!(c2.pipeline_rounds > 1);
        // Same set of rows.
        piped.dedup_rows();
        let mut full_sorted = full.clone();
        full_sorted.dedup_rows();
        assert_eq!(piped, full_sorted);
    }

    #[test]
    fn pipeline_stops_at_limit() {
        let tables = chain_tables(1000);
        let cfg = MatchConfig {
            block_rows: 10,
            max_results: Some(25),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 25);
        // Only a few rounds should have run (25 results at ≥10 per round).
        assert!(c.pipeline_rounds <= 4, "rounds = {}", c.pipeline_rounds);
    }

    #[test]
    fn pipeline_single_table() {
        let t = table(&[0, 1], &[&[1, 2], &[3, 4]]);
        let cfg = MatchConfig {
            max_results: Some(1),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&[t], &cfg, &mut c);
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn pipeline_empty_driver_yields_empty_with_schema() {
        let a = table(&[0, 1], &[]);
        let b = table(&[1, 2], &[&[1, 2]]);
        let cfg = MatchConfig::default();
        let mut c = JoinCounters::default();
        let out = pipelined_join(&[a, b], &cfg, &mut c);
        assert!(out.is_empty());
        assert_eq!(out.width(), 3);
    }

    #[test]
    fn pipeline_without_order_optimization() {
        let tables = chain_tables(10);
        let cfg = MatchConfig::default().with_join_order_optimization(false);
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 10);
    }

    #[test]
    fn round_result_reprojection_matches_schema_order() {
        // The re-projection branch of the round append: per-round results and
        // the output schema are produced by the same data-independent chain,
        // so their column orders only diverge if that invariant is ever
        // broken — the append is routed through `append_projected`, which
        // re-projects instead of corrupting rows. Exercise exactly the
        // mismatch the pipeline would hit: a round result carrying the same
        // column set in a different order.
        let mut output = ResultTable::new(vec![q(0), q(1), q(2)]);
        output.push_row(&[v(1), v(1001), v(2001)]);
        let mut round_result = ResultTable::new(vec![q(1), q(2), q(0)]);
        round_result.push_row(&[v(1002), v(2002), v(2)]);
        round_result.push_row(&[v(1003), v(2003), v(3)]);
        assert_ne!(round_result.columns(), output.columns());
        output.append_projected(&round_result);
        assert_eq!(output.num_rows(), 3);
        assert_eq!(output.row(1), &[v(2), v(1002), v(2002)]);
        assert_eq!(output.row(2), &[v(3), v(1003), v(2003)]);
        // The re-projected rows agree with a value() lookup by column name.
        for r in 0..output.num_rows() {
            for &c in output.columns() {
                assert_eq!(
                    output.value(r, c),
                    output.row(r)[output.column_index(c).unwrap()]
                );
            }
        }
    }

    #[test]
    fn pipeline_join_counters_stay_proportional_to_rounds() {
        // Each round performs exactly `rest.len()` binary joins against the
        // prepared indexes — no extra joins (or table copies) per round.
        let tables = chain_tables(100);
        let cfg = MatchConfig {
            block_rows: 10,
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 100);
        assert_eq!(c.pipeline_rounds, 10);
        assert_eq!(c.joins_performed, 10, "one rest table joined per round");
    }
}
