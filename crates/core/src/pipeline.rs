//! Block-based pipelined join (§4.2 step 3, last paragraph).
//!
//! Even after exploration-time pruning and join-order selection, the
//! intermediate results of a multi-way join can exceed the memory budget of a
//! memory-cloud node. The paper therefore splits the join into rounds: in
//! each round only a block of the driver table participates, so partial
//! results stream out before the full join completes and the query can stop
//! as soon as the requested number of matches (1024 in the paper's
//! experiments) has been produced.

use crate::config::MatchConfig;
use crate::join::{select_join_order_with_priors, PreparedJoin};
use crate::metrics::JoinCounters;
use crate::query::QVid;
use crate::stream::QueryControl;
use crate::table::ResultTable;

/// Receives the pipeline's output incrementally: the schema once, then each
/// round's surviving rows as the round completes. This is what lets the
/// streaming executor deliver first-k rows while later rounds (or later
/// machines) are still pending.
pub(crate) trait RoundSink {
    /// The column order of every subsequent `on_rows` table.
    fn on_schema(&mut self, columns: &[QVid]);
    /// One round's surviving rows (already limit-capped).
    fn on_rows(&mut self, rows: &ResultTable);
}

/// Report of one (possibly streamed) pipelined join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JoinRun {
    /// Rows handed to the sink.
    pub rows_emitted: usize,
    /// Whether the driver table was fully consumed with no limit cut — i.e.
    /// the emitted rows are *all* the embeddings these tables contain.
    /// Conservative: a limit reached on the final block reports `false`.
    pub exhausted: bool,
    /// Whether a cooperative deadline/cancel check stopped the join.
    pub interrupted: bool,
}

/// Joins the STwig result tables into final embeddings using the block-based
/// pipeline strategy.
///
/// * The join order is chosen by [`crate::join::select_join_order`] (unless
///   disabled in the config, in which case the given table order is used).
/// * The first table in the join order becomes the *driver*; it is processed
///   in blocks of `config.block_rows` rows.
/// * The non-driver tables are indexed **once**, before the block loop
///   ([`PreparedJoin`]); each round probes those prepared indexes with one
///   driver block, so per-round memory stays bounded by the block and its
///   join output, as §4.2 intends — the rest tables are never copied or
///   re-indexed.
/// * Each round appends the surviving rows to the output, stopping as soon
///   as the configured result limit (`MatchConfig::result_limit`) has been
///   produced. The limit is checked *before* a round starts, so a satisfied
///   limit costs neither a phantom `pipeline_rounds` increment nor a wasted
///   driver-block copy.
pub fn pipelined_join(
    tables: &[ResultTable],
    config: &MatchConfig,
    counters: &mut JoinCounters,
) -> ResultTable {
    pipelined_join_with_priors(tables, config, None, counters)
}

/// [`pipelined_join`] with per-table selectivity priors forwarded to
/// [`select_join_order_with_priors`] — the label-pair-aware cost-model entry
/// point used when `MatchConfig::pruning` is on. `None` priors make this
/// identical to [`pipelined_join`].
pub fn pipelined_join_with_priors(
    tables: &[ResultTable],
    config: &MatchConfig,
    priors: Option<&[f64]>,
    counters: &mut JoinCounters,
) -> ResultTable {
    struct Collect {
        output: Option<ResultTable>,
    }
    impl RoundSink for Collect {
        fn on_schema(&mut self, columns: &[QVid]) {
            self.output = Some(ResultTable::new(columns.to_vec()));
        }
        fn on_rows(&mut self, rows: &ResultTable) {
            // Column orders are identical by construction; append_projected
            // re-projects defensively if they ever diverge.
            self.output
                .as_mut()
                .expect("schema precedes rows")
                .append_projected(rows);
        }
    }
    let mut collect = Collect { output: None };
    pipelined_join_streaming(
        tables,
        config,
        priors,
        config.result_limit(),
        None,
        counters,
        &mut collect,
    );
    collect.output.expect("join always announces a schema")
}

/// The streaming core behind [`pipelined_join`]: identical join semantics,
/// but rows flow to `sink` round by round, the row budget is an explicit
/// `limit` (the caller's *remaining* first-k budget rather than the config's
/// own), an optional [`QueryControl`] is checked at every round boundary
/// so a deadline or cancellation stops the join between blocks, and optional
/// per-table selectivity `priors` bias the join-order choice.
pub(crate) fn pipelined_join_streaming(
    tables: &[ResultTable],
    config: &MatchConfig,
    priors: Option<&[f64]>,
    limit: Option<usize>,
    control: Option<&QueryControl>,
    counters: &mut JoinCounters,
    sink: &mut dyn RoundSink,
) -> JoinRun {
    assert!(!tables.is_empty(), "cannot join zero tables");
    let order: Vec<usize> = if config.optimize_join_order {
        select_join_order_with_priors(tables, config.join_sample_size, priors)
    } else {
        (0..tables.len()).collect()
    };

    if tables.len() == 1 {
        // Single-table fast path: copy at most `limit` rows — cloning a
        // 1M-row table to then truncate it to one row would allocate the
        // whole buffer for nothing.
        sink.on_schema(tables[0].columns());
        counters.pipeline_rounds += 1;
        let out = match limit {
            Some(l) if l < tables[0].num_rows() => tables[0].take_block(0, l),
            _ => tables[0].clone(),
        };
        let rows_emitted = out.num_rows();
        let exhausted = limit.is_none_or(|l| tables[0].num_rows() <= l);
        sink.on_rows(&out);
        return JoinRun {
            rows_emitted,
            exhausted,
            interrupted: false,
        };
    }

    let driver = &tables[order[0]];
    let rest: Vec<&ResultTable> = order[1..].iter().map(|&i| &tables[i]).collect();

    // Index every rest table once against the schema the accumulated join
    // has when it reaches that table. The schemas are data-independent, so
    // this also yields the output schema (an empty driver then still
    // produces a table with the right columns).
    let mut schema: Vec<QVid> = driver.columns().to_vec();
    let mut prepared: Vec<PreparedJoin<'_>> = Vec::with_capacity(rest.len());
    for t in &rest {
        let join = PreparedJoin::new(&schema, t);
        schema = join.output_columns(&schema);
        prepared.push(join);
    }
    sink.on_schema(&schema);

    let block_rows = config.block_rows.max(1);
    let mut start = 0usize;
    let mut emitted = 0usize;
    let mut interrupted = false;
    while start < driver.num_rows() {
        // Both stop conditions come *before* the round is counted and the
        // driver block copied.
        let remaining_limit = limit.map(|l| l.saturating_sub(emitted));
        if remaining_limit == Some(0) {
            break;
        }
        if control.is_some_and(QueryControl::interrupted) {
            interrupted = true;
            break;
        }
        counters.pipeline_rounds += 1;
        let block = driver.take_block(start, block_rows);
        start += block_rows;

        // Probe the prepared rest-table indexes with this block (in order).
        // A limit is only safe on the last join: earlier truncation could
        // drop rows that would survive the remaining joins. The control
        // handle reaches into each probe pass so even one fat block cannot
        // blow through a deadline.
        let mut acc = block;
        for (i, join) in prepared.iter().enumerate() {
            let step_limit = if i + 1 == prepared.len() {
                remaining_limit
            } else {
                None
            };
            acc = join.join_with_control(&acc, step_limit, control, counters);
            if acc.is_empty() {
                break;
            }
        }
        if !acc.is_empty() {
            if let Some(l) = remaining_limit {
                // Defensive: the last join's step limit already caps this.
                acc.truncate(l);
            }
            emitted += acc.num_rows();
            sink.on_rows(&acc);
        }
    }
    JoinRun {
        rows_emitted: emitted,
        exhausted: start >= driver.num_rows() && !interrupted && limit.is_none_or(|l| emitted < l),
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResultMode;
    use crate::join::multiway_join;
    use trinity_sim::ids::VertexId;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn table(cols: &[u16], rows: &[&[u64]]) -> ResultTable {
        let mut t = ResultTable::new(cols.iter().map(|&c| q(c)).collect());
        for r in rows {
            let row: Vec<VertexId> = r.iter().map(|&x| v(x)).collect();
            t.push_row(&row);
        }
        t
    }

    fn chain_tables(pairs: usize) -> Vec<ResultTable> {
        // q0-q1 and q1-q2 tables with `pairs` matching chains.
        let rows_a: Vec<Vec<u64>> = (0..pairs as u64).map(|i| vec![i, 1000 + i]).collect();
        let rows_b: Vec<Vec<u64>> = (0..pairs as u64)
            .map(|i| vec![1000 + i, 2000 + i])
            .collect();
        let a = {
            let refs: Vec<&[u64]> = rows_a.iter().map(|r| r.as_slice()).collect();
            table(&[0, 1], &refs)
        };
        let b = {
            let refs: Vec<&[u64]> = rows_b.iter().map(|r| r.as_slice()).collect();
            table(&[1, 2], &refs)
        };
        vec![a, b]
    }

    #[test]
    fn pipeline_equals_full_join() {
        let tables = chain_tables(100);
        let mut c1 = JoinCounters::default();
        let full = multiway_join(&tables, &[0, 1], None, &mut c1);
        let mut c2 = JoinCounters::default();
        let cfg = MatchConfig {
            block_rows: 7,
            ..MatchConfig::default()
        };
        let mut piped = pipelined_join(&tables, &cfg, &mut c2);
        assert_eq!(piped.num_rows(), full.num_rows());
        assert!(c2.pipeline_rounds > 1);
        // Same set of rows.
        piped.dedup_rows();
        let mut full_sorted = full.clone();
        full_sorted.dedup_rows();
        assert_eq!(piped, full_sorted);
    }

    #[test]
    fn pipeline_stops_at_limit() {
        let tables = chain_tables(1000);
        let cfg = MatchConfig {
            block_rows: 10,
            result_mode: ResultMode::FirstK(25),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 25);
        // Only a few rounds should have run (25 results at ≥10 per round).
        assert!(c.pipeline_rounds <= 4, "rounds = {}", c.pipeline_rounds);
    }

    #[test]
    fn pipeline_single_table() {
        let t = table(&[0, 1], &[&[1, 2], &[3, 4]]);
        let cfg = MatchConfig {
            result_mode: ResultMode::FirstK(1),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&[t], &cfg, &mut c);
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn pipeline_empty_driver_yields_empty_with_schema() {
        let a = table(&[0, 1], &[]);
        let b = table(&[1, 2], &[&[1, 2]]);
        let cfg = MatchConfig::default();
        let mut c = JoinCounters::default();
        let out = pipelined_join(&[a, b], &cfg, &mut c);
        assert!(out.is_empty());
        assert_eq!(out.width(), 3);
    }

    #[test]
    fn pipeline_without_order_optimization() {
        let tables = chain_tables(10);
        let cfg = MatchConfig::default().with_join_order_optimization(false);
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 10);
    }

    #[test]
    fn round_result_reprojection_matches_schema_order() {
        // The re-projection branch of the round append: per-round results and
        // the output schema are produced by the same data-independent chain,
        // so their column orders only diverge if that invariant is ever
        // broken — the append is routed through `append_projected`, which
        // re-projects instead of corrupting rows. Exercise exactly the
        // mismatch the pipeline would hit: a round result carrying the same
        // column set in a different order.
        let mut output = ResultTable::new(vec![q(0), q(1), q(2)]);
        output.push_row(&[v(1), v(1001), v(2001)]);
        let mut round_result = ResultTable::new(vec![q(1), q(2), q(0)]);
        round_result.push_row(&[v(1002), v(2002), v(2)]);
        round_result.push_row(&[v(1003), v(2003), v(3)]);
        assert_ne!(round_result.columns(), output.columns());
        output.append_projected(&round_result);
        assert_eq!(output.num_rows(), 3);
        assert_eq!(output.row(1), &[v(2), v(1002), v(2002)]);
        assert_eq!(output.row(2), &[v(3), v(1003), v(2003)]);
        // The re-projected rows agree with a value() lookup by column name.
        for r in 0..output.num_rows() {
            for &c in output.columns() {
                assert_eq!(
                    output.value(r, c),
                    output.row(r)[output.column_index(c).unwrap()]
                );
            }
        }
    }

    #[test]
    fn satisfied_limit_costs_no_phantom_round() {
        // Regression: the block loop used to count a round (and copy a
        // driver block) *before* noticing the limit was already satisfied.
        // With the check hoisted, a zero budget runs zero rounds, and a
        // limit satisfied mid-driver never adds a round that produces
        // nothing.
        let tables = chain_tables(100);
        let cfg = MatchConfig {
            block_rows: 10,
            result_mode: ResultMode::FirstK(0),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert!(out.is_empty());
        assert_eq!(c.pipeline_rounds, 0, "zero budget must run zero rounds");

        // Limit an exact multiple of the per-round yield: the round that
        // fills the budget is the last one counted.
        let cfg = MatchConfig {
            block_rows: 10,
            result_mode: ResultMode::FirstK(20),
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 20);
        assert_eq!(c.pipeline_rounds, 2, "no phantom third round");
    }

    #[test]
    fn streaming_join_reports_rows_and_exhaustion() {
        let tables = chain_tables(50);
        let cfg = MatchConfig {
            block_rows: 10,
            ..MatchConfig::default()
        };
        struct Count {
            rows: usize,
            rounds_seen: usize,
        }
        impl RoundSink for Count {
            fn on_schema(&mut self, columns: &[QVid]) {
                assert_eq!(columns.len(), 3);
            }
            fn on_rows(&mut self, rows: &ResultTable) {
                self.rows += rows.num_rows();
                self.rounds_seen += 1;
            }
        }
        // Unlimited: everything flows through, driver exhausted.
        let mut sink = Count {
            rows: 0,
            rounds_seen: 0,
        };
        let mut c = JoinCounters::default();
        let run = pipelined_join_streaming(&tables, &cfg, None, None, None, &mut c, &mut sink);
        assert_eq!(run.rows_emitted, 50);
        assert_eq!(sink.rows, 50);
        assert_eq!(sink.rounds_seen, 5);
        assert!(run.exhausted);
        assert!(!run.interrupted);

        // Limited: stops early, reports non-exhaustion.
        let mut sink = Count {
            rows: 0,
            rounds_seen: 0,
        };
        let mut c = JoinCounters::default();
        let run = pipelined_join_streaming(&tables, &cfg, None, Some(25), None, &mut c, &mut sink);
        assert_eq!(run.rows_emitted, 25);
        assert!(!run.exhausted);
        assert_eq!(c.pipeline_rounds, 3);

        // Single-table path streams the limited copy.
        let single = vec![tables[0].clone()];
        struct CountAny {
            rows: usize,
        }
        impl RoundSink for CountAny {
            fn on_schema(&mut self, _c: &[QVid]) {}
            fn on_rows(&mut self, rows: &ResultTable) {
                self.rows += rows.num_rows();
            }
        }
        let mut any = CountAny { rows: 0 };
        let mut c = JoinCounters::default();
        let run = pipelined_join_streaming(&single, &cfg, None, Some(3), None, &mut c, &mut any);
        assert_eq!(run.rows_emitted, 3);
        assert_eq!(any.rows, 3);
        assert!(!run.exhausted);
    }

    #[test]
    fn streaming_join_stops_at_an_interrupt() {
        use crate::stream::{CancelToken, QueryOptions};
        use std::time::Instant;
        let tables = chain_tables(100);
        let cfg = MatchConfig {
            block_rows: 10,
            ..MatchConfig::default()
        };
        let token = CancelToken::new();
        let control = QueryControl::new(
            &QueryOptions::none().with_cancel(token.clone()),
            Instant::now(),
        );
        struct CancelAfter {
            rows: usize,
            token: CancelToken,
        }
        impl RoundSink for CancelAfter {
            fn on_schema(&mut self, _c: &[QVid]) {}
            fn on_rows(&mut self, rows: &ResultTable) {
                self.rows += rows.num_rows();
                // Cancel after the first round lands: the next round
                // boundary must observe it.
                self.token.cancel();
            }
        }
        let mut sink = CancelAfter { rows: 0, token };
        let mut c = JoinCounters::default();
        let run =
            pipelined_join_streaming(&tables, &cfg, None, None, Some(&control), &mut c, &mut sink);
        assert!(run.interrupted);
        assert!(!run.exhausted);
        assert_eq!(run.rows_emitted, 10, "exactly the pre-cancel round");
        assert_eq!(c.pipeline_rounds, 1);
    }

    #[test]
    fn pipeline_join_counters_stay_proportional_to_rounds() {
        // Each round performs exactly `rest.len()` binary joins against the
        // prepared indexes — no extra joins (or table copies) per round.
        let tables = chain_tables(100);
        let cfg = MatchConfig {
            block_rows: 10,
            ..MatchConfig::default()
        };
        let mut c = JoinCounters::default();
        let out = pipelined_join(&tables, &cfg, &mut c);
        assert_eq!(out.num_rows(), 100);
        assert_eq!(c.pipeline_rounds, 10);
        assert_eq!(c.joins_performed, 10, "one rest table joined per round");
    }
}
