//! Tuning knobs of the matcher.

use serde::{Deserialize, Serialize};

/// How the distributed executor moves data between logical machines.
///
/// Result tables and `matches_found` are **bit-identical** across modes (the
/// differential and parallel-equality suites sweep both); the modes differ
/// only in how remote data travels and therefore in what the simulated
/// network is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportMode {
    /// Legacy simulation shortcut: machines dereference remote partitions in
    /// place (`Cloud.Load` / `Index.hasLabel` on foreign vertices) and the
    /// network matrix is charged a per-access estimate. Every such access is
    /// tallied by `MemoryCloud::direct_remote_reads`.
    DirectRead,
    /// Partition-local execution over an explicit batched transport
    /// (`trinity_sim::transport`): exploration runs frontier/superstep style
    /// — collect remote vertex ids per owner, flush one batched `Load`
    /// request per destination per round, continue on owned `CellBuf`
    /// replies — and binding sync + load-set shipping are actual messages.
    /// The cost model charges the envelopes really sent. Performs **zero**
    /// direct cross-partition reads.
    Messages,
}

impl TransportMode {
    /// Parses a mode name (`"direct"`/`"direct-read"` or `"messages"`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<TransportMode> {
        match s.to_ascii_lowercase().as_str() {
            "direct" | "direct-read" | "direct_read" | "directread" => {
                Some(TransportMode::DirectRead)
            }
            "messages" | "message" | "msg" => Some(TransportMode::Messages),
            _ => None,
        }
    }

    /// The process-wide default mode: `DirectRead`, overridable by setting
    /// the `STWIG_TRANSPORT` environment variable (read once) — this is how
    /// CI runs the whole test suite with `Messages` as the default without
    /// touching every call site.
    pub fn from_env() -> TransportMode {
        static MODE: std::sync::OnceLock<TransportMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            std::env::var("STWIG_TRANSPORT")
                .ok()
                .and_then(|s| TransportMode::parse(&s))
                .unwrap_or(TransportMode::DirectRead)
        })
    }
}

impl Default for TransportMode {
    /// [`TransportMode::from_env`]: `DirectRead` unless `STWIG_TRANSPORT`
    /// says otherwise.
    fn default() -> Self {
        TransportMode::from_env()
    }
}

/// What the caller wants back from a query — and therefore how much work the
/// executor is allowed to skip.
///
/// The paper's serving experiments (§7) deliver the *first 1024 matches* per
/// query: a client-facing system is judged on time-to-first-k, not on
/// exhaustive enumeration. `FirstK`/`Exists` let the distributed executor
/// interleave exploration and join incrementally and stop as soon as enough
/// *valid* embeddings exist — the delivered rows are genuine matches, but
/// **not** a prefix of the canonical full-enumeration table (see DESIGN.md,
/// "First-k early stop").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultMode {
    /// Enumerate every match. This is the default and keeps every execution
    /// path bit-identical to the non-streaming executor.
    #[default]
    All,
    /// Stop after `k` valid embeddings; exploration is bounded to slabs
    /// sized for `k` and resumed only when the join undershoots.
    FirstK(usize),
    /// Only answer whether at least one embedding exists (equivalent to
    /// `FirstK(1)` with a boolean read-out).
    Exists,
}

/// Configuration of a subgraph-matching run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// What to produce: everything, the first k valid embeddings, or a bare
    /// existence check (see [`ResultMode`]). `All` reproduces the legacy
    /// behavior exactly; `FirstK`/`Exists` additionally let the streaming
    /// executor bound exploration. This is the **only** result-limit knob —
    /// the historical `max_results` cap is expressed as
    /// `ResultMode::FirstK(n)` — and [`MatchConfig::result_limit`] is its
    /// single interpreter.
    pub result_mode: ResultMode,
    /// Number of rows of the driver table joined per pipeline round
    /// (derived from available memory in the paper; a fixed row budget here).
    pub block_rows: usize,
    /// Whether to use binding information from previously-processed STwigs to
    /// prune candidates during exploration (§4.2). Disabling this reproduces
    /// the naive "match every STwig independently, then join" strategy that
    /// §3 argues against; it is exposed for the ablation experiment.
    pub use_bindings: bool,
    /// Rows sampled from each table for join-cardinality estimation.
    pub join_sample_size: usize,
    /// Whether join-order selection is enabled; when disabled tables are
    /// joined in STwig processing order (ablation knob).
    pub optimize_join_order: bool,
    /// Maximum rows MatchSTwig may emit per machine per STwig (guard against
    /// pathological cross products). `None` is unbounded.
    pub max_stwig_rows: Option<usize>,
    /// Worker threads the distributed executor fans logical machines out
    /// over (each machine's exploration step and load-set join step run as
    /// work items; see DESIGN.md). `None` uses the host's available
    /// parallelism; `Some(1)` reproduces the serial execution bit-for-bit.
    /// Result tables and algorithmic counters are identical for every
    /// setting; only measured times (wall-clock, and the compute component
    /// of the simulated makespan) change.
    pub num_threads: Option<usize>,
    /// How the distributed executor moves data between machines (see
    /// [`TransportMode`]). Results are identical across modes.
    pub transport_mode: TransportMode,
    /// Maximum vertex ids per batched `Load` request envelope in
    /// [`TransportMode::Messages`] (a destination's frontier larger than
    /// this is split into several envelopes). Affects message counts and
    /// therefore simulated time, never results.
    pub transport_batch_ids: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            result_mode: ResultMode::All,
            block_rows: 4096,
            use_bindings: true,
            join_sample_size: 64,
            optimize_join_order: true,
            max_stwig_rows: None,
            num_threads: None,
            transport_mode: TransportMode::default(),
            transport_batch_ids: 4096,
        }
    }
}

impl MatchConfig {
    /// The configuration used in the paper's timing experiments: pipeline join
    /// terminating after 1024 matches ([`ResultMode::FirstK`]). Exploration is
    /// additionally capped at 64k rows per STwig per machine — the paper's
    /// runs are similarly bounded in practice because they stop once 1024
    /// matches are produced.
    pub fn paper_default() -> Self {
        MatchConfig {
            result_mode: ResultMode::FirstK(1024),
            max_stwig_rows: Some(65_536),
            ..Default::default()
        }
    }

    /// Enumerate every match (no early termination).
    pub fn exhaustive() -> Self {
        MatchConfig {
            result_mode: ResultMode::All,
            ..Default::default()
        }
    }

    /// Sets the result mode (see [`ResultMode`]).
    pub fn with_result_mode(mut self, mode: ResultMode) -> Self {
        self.result_mode = mode;
        self
    }

    /// The effective row limit this configuration imposes on the final
    /// result — the **single interpreter** of [`ResultMode`]: unlimited
    /// under [`ResultMode::All`], `k` under [`ResultMode::FirstK`], and `1`
    /// under [`ResultMode::Exists`].
    pub fn result_limit(&self) -> Option<usize> {
        match self.result_mode {
            ResultMode::All => None,
            ResultMode::FirstK(k) => Some(k),
            ResultMode::Exists => Some(1),
        }
    }

    /// Enables or disables binding-based pruning.
    pub fn with_bindings(mut self, on: bool) -> Self {
        self.use_bindings = on;
        self
    }

    /// Enables or disables join-order optimization.
    pub fn with_join_order_optimization(mut self, on: bool) -> Self {
        self.optimize_join_order = on;
        self
    }

    /// Sets the per-machine, per-STwig exploration row cap.
    ///
    /// The cap interacts cleanly with the STwig-result cache: bound
    /// exploration truncated at `n` rows equals the binding-filtered unbound
    /// table truncated at `n` rows, so cached entries (stored unbound and
    /// untruncated) reproduce capped runs exactly (see `crate::cache`).
    pub fn with_max_stwig_rows(mut self, rows: Option<usize>) -> Self {
        self.max_stwig_rows = rows;
        self
    }

    /// Sets the distributed executor's worker-thread count (`None` =
    /// available parallelism, `Some(1)` = serial).
    pub fn with_num_threads(mut self, threads: Option<usize>) -> Self {
        self.num_threads = threads;
        self
    }

    /// Sets the transport mode of the distributed executor.
    pub fn with_transport_mode(mut self, mode: TransportMode) -> Self {
        self.transport_mode = mode;
        self
    }

    /// Sets the per-envelope id cap for batched `Load` requests
    /// (floored at 1).
    pub fn with_transport_batch_ids(mut self, ids: usize) -> Self {
        self.transport_batch_ids = ids.max(1);
        self
    }

    /// The worker-thread count this configuration resolves to on the current
    /// host.
    pub fn resolved_num_threads(&self) -> usize {
        self.num_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_exhaustive() {
        let c = MatchConfig::default();
        assert_eq!(c.result_mode, ResultMode::All);
        assert!(c.use_bindings);
        assert!(c.optimize_join_order);
    }

    #[test]
    fn paper_default_limits_results() {
        assert_eq!(
            MatchConfig::paper_default().result_mode,
            ResultMode::FirstK(1024)
        );
    }

    #[test]
    fn builder_style_setters() {
        let c = MatchConfig::default()
            .with_result_mode(ResultMode::FirstK(7))
            .with_bindings(false)
            .with_join_order_optimization(false)
            .with_max_stwig_rows(Some(99))
            .with_num_threads(Some(3));
        assert_eq!(c.result_mode, ResultMode::FirstK(7));
        assert!(!c.use_bindings);
        assert!(!c.optimize_join_order);
        assert_eq!(c.max_stwig_rows, Some(99));
        assert_eq!(c.num_threads, Some(3));
        assert_eq!(c.resolved_num_threads(), 3);
    }

    #[test]
    fn transport_mode_parsing_and_setters() {
        assert_eq!(
            TransportMode::parse("messages"),
            Some(TransportMode::Messages)
        );
        assert_eq!(TransportMode::parse("MSG"), Some(TransportMode::Messages));
        assert_eq!(
            TransportMode::parse("direct-read"),
            Some(TransportMode::DirectRead)
        );
        assert_eq!(TransportMode::parse("carrier-pigeon"), None);
        let c = MatchConfig::default()
            .with_transport_mode(TransportMode::Messages)
            .with_transport_batch_ids(0);
        assert_eq!(c.transport_mode, TransportMode::Messages);
        assert_eq!(c.transport_batch_ids, 1, "batch cap is floored at 1");
    }

    #[test]
    fn result_mode_limits() {
        assert_eq!(MatchConfig::default().result_limit(), None);
        assert_eq!(MatchConfig::paper_default().result_limit(), Some(1024));
        let first_k = MatchConfig::default().with_result_mode(ResultMode::FirstK(7));
        assert_eq!(first_k.result_limit(), Some(7));
        assert_eq!(MatchConfig::exhaustive().result_limit(), None);
        assert_eq!(
            MatchConfig::default()
                .with_result_mode(ResultMode::Exists)
                .result_limit(),
            Some(1)
        );
    }

    #[test]
    fn num_threads_resolution() {
        // Explicit settings resolve verbatim (floored at 1); the default
        // resolves to the host's available parallelism, which is ≥ 1.
        assert_eq!(
            MatchConfig::default()
                .with_num_threads(Some(8))
                .resolved_num_threads(),
            8
        );
        assert!(MatchConfig::default().resolved_num_threads() >= 1);
    }
}
