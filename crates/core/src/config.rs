//! Tuning knobs of the matcher.

use serde::{Deserialize, Serialize};
use std::time::Duration;
use trinity_sim::fault::FaultPlan;

/// How the distributed executor moves data between logical machines.
///
/// Result tables and `matches_found` are **bit-identical** across modes (the
/// differential and parallel-equality suites sweep both); the modes differ
/// only in how remote data travels and therefore in what the simulated
/// network is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportMode {
    /// Legacy simulation shortcut: machines dereference remote partitions in
    /// place (`Cloud.Load` / `Index.hasLabel` on foreign vertices) and the
    /// network matrix is charged a per-access estimate. Every such access is
    /// tallied by `MemoryCloud::direct_remote_reads`.
    DirectRead,
    /// Partition-local execution over an explicit batched transport
    /// (`trinity_sim::transport`): exploration runs frontier/superstep style
    /// — collect remote vertex ids per owner, flush one batched `Load`
    /// request per destination per round, continue on owned `CellBuf`
    /// replies — and binding sync + load-set shipping are actual messages.
    /// The cost model charges the envelopes really sent. Performs **zero**
    /// direct cross-partition reads.
    Messages,
}

impl TransportMode {
    /// Parses a mode name (`"direct"`/`"direct-read"` or `"messages"`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<TransportMode> {
        match s.to_ascii_lowercase().as_str() {
            "direct" | "direct-read" | "direct_read" | "directread" => {
                Some(TransportMode::DirectRead)
            }
            "messages" | "message" | "msg" => Some(TransportMode::Messages),
            _ => None,
        }
    }

    /// The process-wide default mode: `DirectRead`, overridable by setting
    /// the `STWIG_TRANSPORT` environment variable (read once) — this is how
    /// CI runs the whole test suite with `Messages` as the default without
    /// touching every call site.
    pub fn from_env() -> TransportMode {
        static MODE: std::sync::OnceLock<TransportMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            std::env::var("STWIG_TRANSPORT")
                .ok()
                .and_then(|s| TransportMode::parse(&s))
                .unwrap_or(TransportMode::DirectRead)
        })
    }
}

impl Default for TransportMode {
    /// [`TransportMode::from_env`]: `DirectRead` unless `STWIG_TRANSPORT`
    /// says otherwise.
    fn default() -> Self {
        TransportMode::from_env()
    }
}

/// What the caller wants back from a query — and therefore how much work the
/// executor is allowed to skip.
///
/// The paper's serving experiments (§7) deliver the *first 1024 matches* per
/// query: a client-facing system is judged on time-to-first-k, not on
/// exhaustive enumeration. `FirstK`/`Exists` let the distributed executor
/// interleave exploration and join incrementally and stop as soon as enough
/// *valid* embeddings exist — the delivered rows are genuine matches, but
/// **not** a prefix of the canonical full-enumeration table (see DESIGN.md,
/// "First-k early stop").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultMode {
    /// Enumerate every match. This is the default and keeps every execution
    /// path bit-identical to the non-streaming executor.
    #[default]
    All,
    /// Stop after `k` valid embeddings; exploration is bounded to slabs
    /// sized for `k` and resumed only when the join undershoots.
    FirstK(usize),
    /// Only answer whether at least one embedding exists (equivalent to
    /// `FirstK(1)` with a boolean read-out).
    Exists,
}

/// Retry behavior for transport exchanges.
///
/// Exchanges are **pure reads** against an immutable partition (batched
/// `Cloud.Load`, `Index.getID`), so retrying one is always safe: a repeated
/// request returns the same cells. Backoff between attempts is exponential
/// with **deterministic jitter** — the jitter is a hash of `(src, dst,
/// attempt)`, not a random draw, so two runs of the same query back off
/// identically and results stay reproducible.
///
/// Durations are stored in microseconds (plain integers serialize portably;
/// the vendored serde has no `Duration` support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per exchange, including the first (floored at 1).
    /// Keep this above `trinity_sim::fault::MAX_TRANSIENT_FAILURES` (2) so
    /// chaos plans with bounded transient faults always get through.
    pub max_attempts: u32,
    /// Backoff before the second attempt, µs; doubles per further attempt.
    pub base_backoff_us: u64,
    /// Ceiling on a single backoff, µs.
    pub max_backoff_us: u64,
    /// Per-exchange timeout, µs (`None` = wait forever). Threaded into the
    /// transport so a wedged peer surfaces as
    /// `TransportError::Timeout { dst, phase }` instead of blocking the
    /// query thread indefinitely.
    pub timeout_us: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 50,
            max_backoff_us: 5_000,
            timeout_us: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out (PR-6 behavior).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_us: 0,
            max_backoff_us: 0,
            timeout_us: None,
        }
    }

    /// Sets the total attempt budget (floored at 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the per-exchange timeout.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout_us = timeout.map(|t| t.as_micros() as u64);
        self
    }

    /// The per-exchange timeout as a `Duration`, if configured.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout_us.map(Duration::from_micros)
    }

    /// The backoff before attempt `attempt + 1` (1-based failed attempt):
    /// exponential from `base_backoff_us`, capped at `max_backoff_us`, plus
    /// up to 50% deterministic jitter derived from `salt` (callers pass a
    /// hash of the link) so synchronized retry storms de-correlate without
    /// sacrificing reproducibility.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        if self.base_backoff_us == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let base = self
            .base_backoff_us
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_us.max(self.base_backoff_us));
        let jitter = if base == 0 {
            0
        } else {
            splitmix(salt ^ attempt as u64) % (base / 2 + 1)
        };
        Duration::from_micros(base + jitter)
    }
}

/// SplitMix64 finalizer for deterministic backoff jitter.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What a query does when a machine stays unreachable after the whole retry
/// budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Fail the query with `StwigError::MachineUnavailable` (default): the
    /// caller gets a typed error instead of a silently incomplete answer.
    #[default]
    Fail,
    /// Keep going without the lost machine: every delivered row is still a
    /// verified match, rows needing the dead machine are absent, and the
    /// query resolves as `QueryOutcome::Partial` with the lost machines
    /// recorded in its metrics.
    Degrade,
}

/// Configuration of a subgraph-matching run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// What to produce: everything, the first k valid embeddings, or a bare
    /// existence check (see [`ResultMode`]). `All` reproduces the legacy
    /// behavior exactly; `FirstK`/`Exists` additionally let the streaming
    /// executor bound exploration. This is the **only** result-limit knob —
    /// the historical `max_results` cap is expressed as
    /// `ResultMode::FirstK(n)` — and [`MatchConfig::result_limit`] is its
    /// single interpreter.
    pub result_mode: ResultMode,
    /// Number of rows of the driver table joined per pipeline round
    /// (derived from available memory in the paper; a fixed row budget here).
    pub block_rows: usize,
    /// Whether to use binding information from previously-processed STwigs to
    /// prune candidates during exploration (§4.2). Disabling this reproduces
    /// the naive "match every STwig independently, then join" strategy that
    /// §3 argues against; it is exposed for the ablation experiment.
    pub use_bindings: bool,
    /// Rows sampled from each table for join-cardinality estimation.
    pub join_sample_size: usize,
    /// Whether join-order selection is enabled; when disabled tables are
    /// joined in STwig processing order (ablation knob).
    pub optimize_join_order: bool,
    /// Maximum rows MatchSTwig may emit per machine per STwig (guard against
    /// pathological cross products). `None` is unbounded.
    pub max_stwig_rows: Option<usize>,
    /// Worker threads the distributed executor fans logical machines out
    /// over (each machine's exploration step and load-set join step run as
    /// work items; see DESIGN.md). `None` uses the host's available
    /// parallelism; `Some(1)` reproduces the serial execution bit-for-bit.
    /// Result tables and algorithmic counters are identical for every
    /// setting; only measured times (wall-clock, and the compute component
    /// of the simulated makespan) change.
    pub num_threads: Option<usize>,
    /// How the distributed executor moves data between machines (see
    /// [`TransportMode`]). Results are identical across modes.
    pub transport_mode: TransportMode,
    /// Maximum vertex ids per batched `Load` request envelope in
    /// [`TransportMode::Messages`] (a destination's frontier larger than
    /// this is split into several envelopes). Affects message counts and
    /// therefore simulated time, never results.
    pub transport_batch_ids: usize,
    /// Retry/timeout/backoff behavior for transport exchanges (see
    /// [`RetryPolicy`]). Exchanges are pure reads, so retries never change
    /// results — they only absorb transient faults.
    pub retry: RetryPolicy,
    /// What to do when a machine stays unreachable after retries (see
    /// [`FailurePolicy`]).
    pub failure_policy: FailurePolicy,
    /// Fault-injection plan executed by wrapping the query's transport in a
    /// `trinity_sim::fault::FaultyTransport`. Defaults to
    /// [`FaultPlan::from_env`] (`STWIG_FAULT_PLAN`), which is how CI runs
    /// the whole suite under seeded chaos; `None` when the variable is
    /// unset. Only effective in [`TransportMode::Messages`].
    pub fault_plan: Option<FaultPlan>,
    /// Whether exploration prunes root candidates on the neighborhood-label
    /// signatures (`trinity_sim::neighbor_index`) before collecting their
    /// neighbors, and the cost models consume label-pair selectivities.
    /// Sound — signatures over-approximate, so pruning never drops a true
    /// match — and defaults to the `STWIG_PRUNING` environment variable
    /// (read once; unset = off), which is how CI runs the whole suite
    /// pruned without touching every call site.
    pub pruning: bool,
}

/// The process-wide pruning default: off, overridable by setting
/// `STWIG_PRUNING` to `1`/`true`/`on` (read once).
pub fn pruning_from_env() -> bool {
    static PRUNING: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PRUNING.get_or_init(|| {
        std::env::var("STWIG_PRUNING")
            .map(|s| matches!(s.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"))
            .unwrap_or(false)
    })
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            result_mode: ResultMode::All,
            block_rows: 4096,
            use_bindings: true,
            join_sample_size: 64,
            optimize_join_order: true,
            max_stwig_rows: None,
            num_threads: None,
            transport_mode: TransportMode::default(),
            transport_batch_ids: 4096,
            retry: RetryPolicy::default(),
            failure_policy: FailurePolicy::default(),
            fault_plan: FaultPlan::from_env(),
            pruning: pruning_from_env(),
        }
    }
}

impl MatchConfig {
    /// The configuration used in the paper's timing experiments: pipeline join
    /// terminating after 1024 matches ([`ResultMode::FirstK`]). Exploration is
    /// additionally capped at 64k rows per STwig per machine — the paper's
    /// runs are similarly bounded in practice because they stop once 1024
    /// matches are produced.
    pub fn paper_default() -> Self {
        MatchConfig {
            result_mode: ResultMode::FirstK(1024),
            max_stwig_rows: Some(65_536),
            ..Default::default()
        }
    }

    /// Enumerate every match (no early termination).
    pub fn exhaustive() -> Self {
        MatchConfig {
            result_mode: ResultMode::All,
            ..Default::default()
        }
    }

    /// Sets the result mode (see [`ResultMode`]).
    pub fn with_result_mode(mut self, mode: ResultMode) -> Self {
        self.result_mode = mode;
        self
    }

    /// The effective row limit this configuration imposes on the final
    /// result — the **single interpreter** of [`ResultMode`]: unlimited
    /// under [`ResultMode::All`], `k` under [`ResultMode::FirstK`], and `1`
    /// under [`ResultMode::Exists`].
    pub fn result_limit(&self) -> Option<usize> {
        match self.result_mode {
            ResultMode::All => None,
            ResultMode::FirstK(k) => Some(k),
            ResultMode::Exists => Some(1),
        }
    }

    /// Enables or disables binding-based pruning.
    pub fn with_bindings(mut self, on: bool) -> Self {
        self.use_bindings = on;
        self
    }

    /// Enables or disables join-order optimization.
    pub fn with_join_order_optimization(mut self, on: bool) -> Self {
        self.optimize_join_order = on;
        self
    }

    /// Sets the per-machine, per-STwig exploration row cap.
    ///
    /// The cap interacts cleanly with the STwig-result cache: bound
    /// exploration truncated at `n` rows equals the binding-filtered unbound
    /// table truncated at `n` rows, so cached entries (stored unbound and
    /// untruncated) reproduce capped runs exactly (see `crate::cache`).
    pub fn with_max_stwig_rows(mut self, rows: Option<usize>) -> Self {
        self.max_stwig_rows = rows;
        self
    }

    /// Sets the distributed executor's worker-thread count (`None` =
    /// available parallelism, `Some(1)` = serial).
    pub fn with_num_threads(mut self, threads: Option<usize>) -> Self {
        self.num_threads = threads;
        self
    }

    /// Sets the transport mode of the distributed executor.
    pub fn with_transport_mode(mut self, mode: TransportMode) -> Self {
        self.transport_mode = mode;
        self
    }

    /// Sets the per-envelope id cap for batched `Load` requests
    /// (floored at 1).
    pub fn with_transport_batch_ids(mut self, ids: usize) -> Self {
        self.transport_batch_ids = ids.max(1);
        self
    }

    /// Sets the exchange retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the machine-loss policy.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Sets (or clears) the fault-injection plan.
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables or disables signature-based candidate pruning (and the
    /// label-pair-aware cost models).
    pub fn with_pruning(mut self, on: bool) -> Self {
        self.pruning = on;
        self
    }

    /// The worker-thread count this configuration resolves to on the current
    /// host.
    pub fn resolved_num_threads(&self) -> usize {
        self.num_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_exhaustive() {
        let c = MatchConfig::default();
        assert_eq!(c.result_mode, ResultMode::All);
        assert!(c.use_bindings);
        assert!(c.optimize_join_order);
    }

    #[test]
    fn paper_default_limits_results() {
        assert_eq!(
            MatchConfig::paper_default().result_mode,
            ResultMode::FirstK(1024)
        );
    }

    #[test]
    fn builder_style_setters() {
        let c = MatchConfig::default()
            .with_result_mode(ResultMode::FirstK(7))
            .with_bindings(false)
            .with_join_order_optimization(false)
            .with_max_stwig_rows(Some(99))
            .with_num_threads(Some(3));
        assert_eq!(c.result_mode, ResultMode::FirstK(7));
        assert!(!c.use_bindings);
        assert!(!c.optimize_join_order);
        assert_eq!(c.max_stwig_rows, Some(99));
        assert_eq!(c.num_threads, Some(3));
        assert_eq!(c.resolved_num_threads(), 3);
    }

    #[test]
    fn transport_mode_parsing_and_setters() {
        assert_eq!(
            TransportMode::parse("messages"),
            Some(TransportMode::Messages)
        );
        assert_eq!(TransportMode::parse("MSG"), Some(TransportMode::Messages));
        assert_eq!(
            TransportMode::parse("direct-read"),
            Some(TransportMode::DirectRead)
        );
        assert_eq!(TransportMode::parse("carrier-pigeon"), None);
        let c = MatchConfig::default()
            .with_transport_mode(TransportMode::Messages)
            .with_transport_batch_ids(0);
        assert_eq!(c.transport_mode, TransportMode::Messages);
        assert_eq!(c.transport_batch_ids, 1, "batch cap is floored at 1");
    }

    #[test]
    fn result_mode_limits() {
        assert_eq!(MatchConfig::default().result_limit(), None);
        assert_eq!(MatchConfig::paper_default().result_limit(), Some(1024));
        let first_k = MatchConfig::default().with_result_mode(ResultMode::FirstK(7));
        assert_eq!(first_k.result_limit(), Some(7));
        assert_eq!(MatchConfig::exhaustive().result_limit(), None);
        assert_eq!(
            MatchConfig::default()
                .with_result_mode(ResultMode::Exists)
                .result_limit(),
            Some(1)
        );
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1, 42), p.backoff(1, 42), "same inputs, same wait");
        assert_ne!(p.backoff(1, 42), p.backoff(1, 43), "salt moves the jitter");
        // Exponential up to the cap, jitter at most 50% on top.
        assert!(p.backoff(1, 7) <= Duration::from_micros(75));
        assert!(p.backoff(30, 7) <= Duration::from_micros(7_500));
        assert_eq!(RetryPolicy::none().backoff(5, 9), Duration::ZERO);
        assert_eq!(RetryPolicy::none().with_max_attempts(0).max_attempts, 1);
        let timed = RetryPolicy::default().with_timeout(Some(Duration::from_millis(2)));
        assert_eq!(timed.timeout(), Some(Duration::from_millis(2)));
        assert_eq!(RetryPolicy::default().timeout(), None);
    }

    #[test]
    fn failure_policy_and_fault_plan_knobs() {
        let c = MatchConfig::default()
            .with_failure_policy(FailurePolicy::Degrade)
            .with_fault_plan(Some(FaultPlan::lossy(3)))
            .with_retry(RetryPolicy::none());
        assert_eq!(c.failure_policy, FailurePolicy::Degrade);
        assert_eq!(c.fault_plan, Some(FaultPlan::lossy(3)));
        assert_eq!(c.retry.max_attempts, 1);
        assert_eq!(FailurePolicy::default(), FailurePolicy::Fail);
    }

    #[test]
    fn pruning_knob() {
        // The default follows STWIG_PRUNING (off in a plain test run);
        // the setter overrides it either way.
        let on = MatchConfig::default().with_pruning(true);
        assert!(on.pruning);
        assert!(!on.with_pruning(false).pruning);
    }

    #[test]
    fn num_threads_resolution() {
        // Explicit settings resolve verbatim (floored at 1); the default
        // resolves to the host's available parallelism, which is ≥ 1.
        assert_eq!(
            MatchConfig::default()
                .with_num_threads(Some(8))
                .resolved_num_threads(),
            8
        );
        assert!(MatchConfig::default().resolved_num_threads() >= 1);
    }
}
