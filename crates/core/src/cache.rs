//! Cross-query STwig-result caching.
//!
//! The paper's setting is a *static* billion-node graph answering a heavy
//! stream of queries. STwigs are tiny two-level trees, so distinct queries
//! constantly share them: every query containing an `a → {b, c}` STwig
//! explores exactly the same per-machine candidate tables. This module
//! caches those tables across queries — the same insight that makes
//! label-pair neighborhood indexes pay off in CNI (Nabti & Seba 2017) and
//! l2Match (Cheng et al. 2023), applied to the exploration output instead of
//! a precomputed index.
//!
//! ## Key canonicalization
//!
//! An STwig's *unbound* exploration output is fully determined by
//! `(root label, multiset of child labels)` and the (static) graph
//! partitioning:
//!
//! * root candidates come from the per-machine label postings, which are
//!   sorted by vertex id;
//! * child candidates are the root's neighbors with the child label, also
//!   sorted by vertex id;
//! * the emitted cross product is therefore in ascending lexicographic row
//!   order, and the *data* is invariant under renaming the query vertices.
//!
//! The cache key is the canonical shape — root label plus **sorted** child
//! labels — and the stored value is the per-machine table in canonical
//! column order. A query whose STwig lists the same child labels in a
//! different order recovers its exact exploration table by permuting the
//! columns and re-sorting the rows ([`decanonicalize_table`]): because the
//! exploration output is lexicographically sorted, the permuted rows sorted
//! lexicographically *are* the exploration order.
//!
//! Binding-based pruning (§4.2) and the per-STwig row cap are pure
//! order-preserving row filters of the unbound output, so
//! [`apply_bindings_and_cap`] derives, from a cached table, a table
//! bit-identical to what bound exploration would have produced. A
//! fingerprint of the cloud guards against a cache being reused across
//! clouds.
//!
//! ## Epochs
//!
//! Against a dynamic cloud (one managed by
//! [`trinity_sim::epoch::GraphEpochs`]) every entry is tagged with the epoch
//! it was explored under, and probes carry the probing snapshot. An entry
//! whose epoch differs from the snapshot's is *never served as-is*:
//!
//! * entry epoch **older** than the snapshot — the entry is revalidated in
//!   place when the lineage's touched-label log proves no intervening epoch
//!   touched any of the shape's labels (root postings and child neighbor
//!   scans read only those labels' vertices, so the canonical tables are
//!   bit-identical and the tag simply advances); otherwise it is lazily
//!   evicted (`stale_evictions`) and the probe misses.
//! * entry epoch **newer** than the snapshot — a reader still pinned to an
//!   old epoch; the probe misses but the entry stays resident for
//!   current-epoch queries.
//!
//! Static clouds sit permanently at epoch 0, so every entry tags 0, every
//! probe compares 0 == 0, and none of this costs anything.
//!
//! ## Concurrency and eviction
//!
//! The cache is sharded by key hash; each shard is an LRU map under its own
//! mutex with a per-shard slice of the byte budget. Entries hand out
//! `Arc<Vec<ResultTable>>`, so eviction never invalidates a table a
//! concurrent query is still reading — the reader's `Arc` keeps the data
//! alive and the shard simply drops its reference.

use crate::bindings::Bindings;
use crate::config::MatchConfig;
use crate::hash::{FxHashMap, FxHasher};
use crate::metrics::CacheStats;
use crate::query::{QVid, QueryGraph};
use crate::stwig::STwig;
use crate::table::ResultTable;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use trinity_sim::ids::LabelId;
use trinity_sim::MemoryCloud;

/// Tuning knobs of the [`StwigCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total byte budget across all shards (table payloads). When an insert
    /// pushes a shard over its slice of the budget, least-recently-used
    /// entries are evicted.
    pub budget_bytes: usize,
    /// Number of independently-locked shards.
    pub shards: usize,
    /// Row cap per machine when populating an entry: an unbound exploration
    /// that reaches this many rows is considered pathological, is *not*
    /// cached, and the query falls back to plain (bound) exploration for
    /// that STwig. `None` removes the guard.
    pub populate_row_cap: Option<usize>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            budget_bytes: 64 << 20,
            shards: 8,
            // Matches the paper config's per-STwig exploration cap: shapes
            // whose *unbound* table exceeds it (hub-rooted cross products on
            // skewed graphs) are marked uncacheable instead of churning the
            // budget with multi-MB entries.
            populate_row_cap: Some(1 << 16),
        }
    }
}

impl CacheConfig {
    /// Sets the byte budget.
    pub fn with_budget_bytes(mut self, bytes: usize) -> Self {
        self.budget_bytes = bytes;
        self
    }
}

/// The canonical shape of an STwig: root label plus sorted child labels,
/// tagged with the pruning setting it was explored under. Two STwigs with
/// the same shape have identical unbound exploration output up to a column
/// permutation (see the module docs).
///
/// Pruned and unpruned explorations produce identical *rows* (pruning is
/// sound), but their `ExploreCounters` and traffic differ — and the
/// population side-channel (the uncacheable tombstone threshold is reached
/// at different probe costs) must stay deterministic per configuration, so
/// the key keeps the two configurations from ever aliasing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StwigShape {
    root_label: LabelId,
    /// Child labels, sorted ascending.
    child_labels: Vec<LabelId>,
    /// Whether signature pruning was enabled for the exploration.
    pruned: bool,
}

impl StwigShape {
    /// The canonical shape of `stwig` within `query`, under the given
    /// pruning setting (`MatchConfig::pruning`).
    pub fn of(query: &QueryGraph, stwig: &STwig, pruned: bool) -> StwigShape {
        let (root_label, mut child_labels) = stwig.labels(query);
        child_labels.sort_unstable();
        StwigShape {
            root_label,
            child_labels,
            pruned,
        }
    }

    /// Payload bytes attributed to the key itself.
    fn key_bytes(&self) -> usize {
        std::mem::size_of::<LabelId>() * (1 + self.child_labels.len()) + 1
    }

    /// Every label the shape's exploration reads — root, then the sorted
    /// child labels — for the touched-label revalidation probe.
    fn labels(&self) -> Vec<LabelId> {
        let mut labels = Vec::with_capacity(1 + self.child_labels.len());
        labels.push(self.root_label);
        labels.extend_from_slice(&self.child_labels);
        labels
    }
}

/// The three outcomes of a cache probe.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// The canonical per-machine tables are resident.
    Hit(Arc<Vec<ResultTable>>),
    /// Nothing is known about this shape; the caller should populate.
    Miss,
    /// The shape is marked uncacheable (its unbound exploration exceeded the
    /// populate row cap); the caller should run plain bound exploration and
    /// not attempt to populate again.
    Bypass,
}

/// One cached entry: the canonical per-machine tables — or an uncacheable
/// tombstone — plus bookkeeping.
struct Entry {
    /// `None` marks an uncacheable shape (negative entry). Tombstones are
    /// tiny but participate in LRU so a budget squeeze can reclaim them.
    tables: Option<Arc<Vec<ResultTable>>>,
    bytes: usize,
    last_used: u64,
    /// The cloud epoch the entry was explored under. Always 0 against a
    /// static cloud; against a dynamic lineage, a probe from a different
    /// epoch either revalidates, misses, or lazily evicts — it never serves
    /// the tables across an epoch boundary unproven (see the module docs).
    epoch: u64,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<StwigShape, Entry>,
    /// LRU side index: `last_used` stamp → key. Stamps are globally unique
    /// (one `tick` per lookup/insert), so eviction pops the smallest stamp
    /// in O(log n) instead of scanning the map.
    lru: std::collections::BTreeMap<u64, StwigShape>,
    bytes: usize,
}

/// A sharded, byte-budgeted LRU cache of per-machine STwig result tables,
/// shared read-mostly across the concurrent queries of a
/// [`crate::engine::QueryEngine`].
///
/// The cache borrows the cloud it was built for, so the cloud provably
/// outlives it — which is what makes the pointer fast path in
/// [`StwigCache::matches_cloud`] sound.
pub struct StwigCache<'c> {
    cloud: &'c MemoryCloud,
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    populate_row_cap: Option<usize>,
    /// Fingerprint of the cloud this cache serves (graph + partitioning).
    fingerprint: u64,
    /// Lineage of the cloud this cache serves: nonzero when the cloud is a
    /// [`trinity_sim::epoch::GraphEpochs`] snapshot, in which case every
    /// same-lineage snapshot (any epoch) is accepted without refingerprinting
    /// — the per-entry epoch tags carry the version discipline.
    lineage: u64,
    num_machines: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    stale_evictions: AtomicU64,
}

impl std::fmt::Debug for StwigCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StwigCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'c> StwigCache<'c> {
    /// Creates a cache bound to `cloud` (borrowed for the cache's lifetime)
    /// and its fingerprint.
    pub fn new(cloud: &'c MemoryCloud, config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let mut shard_vec = Vec::with_capacity(shards);
        shard_vec.resize_with(shards, || Mutex::new(Shard::default()));
        StwigCache {
            cloud,
            shards: shard_vec,
            shard_budget: (config.budget_bytes / shards).max(1),
            populate_row_cap: config.populate_row_cap,
            fingerprint: graph_fingerprint(cloud),
            lineage: cloud.lineage(),
            num_machines: cloud.num_machines(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
        }
    }

    /// Whether this cache serves `cloud`. The cloud the cache was built from
    /// is recognized by pointer identity (sound: the borrow keeps it alive,
    /// so no other cloud can occupy its address); a snapshot of the same
    /// dynamic lineage — any epoch — is recognized by lineage id (sound:
    /// per-entry epoch tags keep versions from ever aliasing, see `lookup`);
    /// any other instance pays the full O(V + E) fingerprint comparison —
    /// build the cache from the cloud you intend to query.
    pub fn matches_cloud(&self, cloud: &MemoryCloud) -> bool {
        if std::ptr::eq(self.cloud, cloud) {
            return true;
        }
        if self.lineage != 0 && cloud.lineage() == self.lineage {
            return true;
        }
        self.num_machines == cloud.num_machines() && graph_fingerprint(cloud) == self.fingerprint
    }

    /// The populate-time row cap per machine (see [`CacheConfig`]).
    pub fn populate_row_cap(&self) -> Option<usize> {
        self.populate_row_cap
    }

    /// Probes the cache for `shape` on behalf of a query pinned to `cloud`,
    /// counting a hit, miss or bypass. The entry's epoch tag is compared to
    /// the snapshot's epoch; see the module docs for the revalidate /
    /// lazy-evict / leave-resident trichotomy.
    pub fn lookup(&self, shape: &StwigShape, cloud: &MemoryCloud) -> CacheLookup {
        let epoch = cloud.epoch();
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(shape).lock().expect("cache shard poisoned");
        let shard = &mut *shard;
        let Some(entry) = shard.map.get_mut(shape) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss;
        };
        if entry.epoch > epoch {
            // The probing query is pinned to an epoch older than the entry.
            // Serving would leak the future into the snapshot; evicting
            // would punish current-epoch queries. Miss, leave it resident.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss;
        }
        if entry.epoch < epoch {
            // Stale tag. Serve only on *proof* that no epoch in
            // (entry.epoch, epoch] touched any of the shape's labels — then
            // the canonical tables are bit-identical at both epochs and the
            // tag simply advances. Anything short of proof (a label was
            // touched, no log, or the log doesn't cover the range) lazily
            // evicts the entry and reports a miss so the caller repopulates
            // against the pinned snapshot.
            let untouched = cloud
                .epoch_label_log()
                .and_then(|log| log.touched_in_range(entry.epoch, epoch, &shape.labels()))
                == Some(false);
            if !untouched {
                let previous = entry.last_used;
                let bytes = entry.bytes;
                shard.lru.remove(&previous).expect("LRU index out of sync");
                shard.map.remove(shape);
                shard.bytes -= bytes;
                self.stale_evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return CacheLookup::Miss;
            }
            entry.epoch = epoch;
        }
        let previous = std::mem::replace(&mut entry.last_used, stamp);
        let result = match &entry.tables {
            Some(tables) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Hit(Arc::clone(tables))
            }
            None => {
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Bypass
            }
        };
        let key = shard.lru.remove(&previous).expect("LRU index out of sync");
        shard.lru.insert(stamp, key);
        result
    }

    /// Inserts the canonical per-machine tables for `shape`, explored
    /// against `cloud`, evicting least-recently-used entries if the shard
    /// exceeds its byte budget. If another query populated the same shape
    /// first at the same (or a newer) epoch, the resident entry wins (at
    /// equal epochs both were derived from identical exploration); a
    /// resident entry from an older epoch is replaced.
    ///
    /// An entry that could never fit its shard's budget is recorded as an
    /// uncacheable tombstone instead: re-populating it on every occurrence
    /// (unbound exploration + canonicalization, instantly evicted) would be
    /// strictly slower than running without the cache.
    pub fn insert(
        &self,
        shape: StwigShape,
        tables: Vec<ResultTable>,
        cloud: &MemoryCloud,
    ) -> Arc<Vec<ResultTable>> {
        assert_eq!(
            tables.len(),
            self.num_machines,
            "cache entries hold one table per machine"
        );
        let bytes = tables.iter().map(ResultTable::memory_bytes).sum::<usize>() + shape.key_bytes();
        let tables = Arc::new(tables);
        if bytes > self.shard_budget {
            self.mark_uncacheable(shape, cloud);
            return tables;
        }
        self.insert_entry(shape, Some(Arc::clone(&tables)), bytes, cloud.epoch());
        tables
    }

    /// Marks `shape` uncacheable: its unbound exploration exceeded the
    /// populate row cap, so future queries skip straight to plain bound
    /// exploration instead of re-attempting (and re-paying) the populate.
    pub fn mark_uncacheable(&self, shape: StwigShape, cloud: &MemoryCloud) {
        let bytes = shape.key_bytes() + std::mem::size_of::<Entry>();
        self.insert_entry(shape, None, bytes, cloud.epoch());
    }

    fn insert_entry(
        &self,
        shape: StwigShape,
        tables: Option<Arc<Vec<ResultTable>>>,
        bytes: usize,
        epoch: u64,
    ) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&shape).lock().expect("cache shard poisoned");
        let shard = &mut *shard;
        if let Some(resident) = shard.map.get(&shape) {
            if resident.epoch >= epoch {
                // Same or newer version already resident: it wins (at equal
                // epochs both entries were derived from identical
                // exploration; a newer one must not be clobbered by a
                // pinned straggler).
                return;
            }
            // The resident entry is from an older epoch than the incoming
            // one — replace it, counting the stale eviction.
            let previous = resident.last_used;
            let old_bytes = resident.bytes;
            shard.lru.remove(&previous).expect("LRU index out of sync");
            shard.map.remove(&shape);
            shard.bytes -= old_bytes;
            self.stale_evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.bytes += bytes;
        shard.lru.insert(stamp, shape.clone());
        shard.map.insert(
            shape,
            Entry {
                tables,
                bytes,
                last_used: stamp,
                epoch,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        // Evict LRU-first (smallest stamp) until the shard fits its budget.
        // `insert` tombstones data entries larger than the whole shard
        // budget up front, so the entry just inserted is only its own victim
        // in the degenerate case of a budget smaller than a tombstone.
        while shard.bytes > self.shard_budget {
            let Some((&oldest, _)) = shard.lru.iter().next() else {
                break;
            };
            let victim = shard.lru.remove(&oldest).expect("just observed");
            let evicted = shard.map.remove(&victim).expect("LRU index out of sync");
            shard.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes_resident = 0u64;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries += shard.map.len() as u64;
            bytes_resident += shard.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
            entries,
            bytes_resident,
        }
    }

    fn shard_for(&self, shape: &StwigShape) -> &Mutex<Shard> {
        let mut hasher = FxHasher::default();
        shape.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }
}

/// A deterministic fingerprint of a cloud's graph content and partitioning,
/// used to reject a cache built for a different cloud.
///
/// Beyond the global counts and label statistics, every partition's cell
/// data — vertex id, label, degree and the full neighbor run — is folded
/// in. Two clouds with identical sizes and label frequencies but different
/// edges (e.g. two `gnm` draws with different seeds) therefore fingerprint
/// differently. Construction is O(V + E), the same order as building the
/// cloud itself, and runs once per cache.
pub fn graph_fingerprint(cloud: &MemoryCloud) -> u64 {
    let mut hasher = FxHasher::default();
    cloud.num_machines().hash(&mut hasher);
    cloud.num_vertices().hash(&mut hasher);
    cloud.num_edges().hash(&mut hasher);
    // A dynamic cloud's identity includes *which version* it is: the
    // lineage it belongs to and the epoch of this snapshot. Two snapshots
    // of one lineage at different epochs must never fingerprint alike (an
    // epoch-N cache entry must not be mistaken for epoch N+1), and a
    // dynamic snapshot never aliases a static rebuild of the same content.
    // Static clouds all contribute the constant (0, 0), so fingerprint
    // equality between static clouds is unaffected.
    cloud.epoch().hash(&mut hasher);
    cloud.lineage().hash(&mut hasher);
    for (label, name) in cloud.labels().iter() {
        name.hash(&mut hasher);
        cloud.label_frequency(label).hash(&mut hasher);
    }
    // The candidate-pruning index configuration is part of the cloud's
    // identity: tables cached against a cloud with signatures must not be
    // served for an index-less rebuild of the same graph (and vice versa) —
    // their exploration configurations, and thus their population
    // side-channels, differ.
    cloud.signature_configuration().hash(&mut hasher);
    // So is the storage-tier configuration. Compact and plain tiers are
    // observationally equivalent *by contract*, but the fingerprint must
    // not presume the contract holds: a representation bug on one tier must
    // never be able to serve its tables to the other through the cache.
    for tier in cloud.storage_configuration() {
        tier.fingerprint_tag().hash(&mut hasher);
    }
    for m in cloud.machines() {
        let partition = cloud.partition(m);
        partition.num_vertices().hash(&mut hasher);
        partition.num_edge_entries().hash(&mut hasher);
        for cell in partition.iter_cells() {
            cell.id.hash(&mut hasher);
            cell.label.hash(&mut hasher);
            cell.neighbors.len().hash(&mut hasher);
            for n in cell.neighbors {
                n.hash(&mut hasher);
            }
        }
    }
    hasher.finish()
}

/// The permutation taking the STwig's children (in their query-vertex order)
/// to canonical (label-sorted) positions: `perm[j]` is the index within
/// `stwig.children` of the child occupying canonical child position `j`.
/// Ties between equal labels keep query-vertex order; same-label columns are
/// content-symmetric, so any stable choice yields the same canonical data.
fn canonical_child_order(query: &QueryGraph, stwig: &STwig) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..stwig.children.len()).collect();
    perm.sort_by_key(|&i| (query.label(stwig.children[i]), i));
    perm
}

/// Converts one machine's *unbound, untruncated* exploration table for
/// `stwig` into canonical form: columns permuted to (root, label-sorted
/// children) with placeholder names, rows re-sorted lexicographically.
pub fn canonicalize_table(table: &ResultTable, query: &QueryGraph, stwig: &STwig) -> ResultTable {
    debug_assert!(
        table.rows_are_sorted(),
        "unbound exploration must emit lexicographically sorted rows"
    );
    let placeholder: Vec<QVid> = (0..table.width() as u16).map(QVid).collect();
    let perm = canonical_child_order(query, stwig);
    if perm.iter().enumerate().all(|(j, &i)| j == i) {
        // Identity permutation: one bulk buffer clone under new names.
        return table.cloned_with_columns(placeholder);
    }
    let mut out = ResultTable::with_capacity(placeholder, table.num_rows());
    let mut row_buf = Vec::with_capacity(table.width());
    for row in table.rows() {
        row_buf.clear();
        row_buf.push(row[0]);
        row_buf.extend(perm.iter().map(|&i| row[1 + i]));
        out.push_row(&row_buf);
    }
    out.sort_rows();
    out
}

/// Reconstructs the exact unbound exploration table of `stwig` from a
/// canonical cached table: columns are renamed to the STwig's query
/// vertices, permuted back from label-sorted to query-vertex order, and rows
/// re-sorted into the lexicographic order exploration emits.
pub fn decanonicalize_table(
    canonical: &ResultTable,
    query: &QueryGraph,
    stwig: &STwig,
) -> ResultTable {
    let mut columns = Vec::with_capacity(1 + stwig.children.len());
    columns.push(stwig.root);
    columns.extend(stwig.children.iter().copied());
    debug_assert_eq!(columns.len(), canonical.width());
    let perm = canonical_child_order(query, stwig);
    if perm.iter().enumerate().all(|(j, &i)| j == i) {
        // Identity permutation: one bulk buffer clone under new names.
        return canonical.cloned_with_columns(columns);
    }
    let mut out = ResultTable::with_capacity(columns, canonical.num_rows());
    let mut row_buf = vec![trinity_sim::ids::VertexId(0); canonical.width()];
    for row in canonical.rows() {
        row_buf[0] = row[0];
        for (j, &i) in perm.iter().enumerate() {
            row_buf[1 + i] = row[1 + j];
        }
        out.push_row(&row_buf);
    }
    out.sort_rows();
    out
}

/// The cache-hit derivation, fused into the minimum number of passes:
/// produces, directly from a canonical cached table, the table that bound
/// exploration of `stwig` under `bindings` and `config` would emit —
/// equivalent to [`decanonicalize_table`] followed by
/// [`apply_bindings_and_cap`], without materializing the intermediate full
/// table. (Binding filtering is per-row, so it commutes with the column
/// permutation and the row re-sort; the row cap is applied last — after the
/// sort when one is needed — because it must keep a prefix of the
/// exploration order.)
pub fn derive_bound_table(
    canonical: &ResultTable,
    query: &QueryGraph,
    stwig: &STwig,
    bindings: &Bindings,
    config: &MatchConfig,
) -> ResultTable {
    let mut columns = Vec::with_capacity(1 + stwig.children.len());
    columns.push(stwig.root);
    columns.extend(stwig.children.iter().copied());
    debug_assert_eq!(columns.len(), canonical.width());
    let perm = canonical_child_order(query, stwig);
    let identity = perm.iter().enumerate().all(|(j, &i)| j == i);

    // In canonical-column space, `col_sets[j]` is the binding set (if any)
    // of the query vertex occupying canonical position `j` — resolved once,
    // so the per-row filter is a plain set probe per bound column.
    let col_sets: Vec<Option<&crate::hash::VertexSet>> = if config.use_bindings {
        std::iter::once(bindings.get(stwig.root))
            .chain(perm.iter().map(|&i| bindings.get(stwig.children[i])))
            .collect()
    } else {
        vec![None; canonical.width()]
    };
    let filtering = col_sets.iter().any(Option::is_some);
    let admits = |row: &[trinity_sim::ids::VertexId]| -> bool {
        col_sets
            .iter()
            .zip(row.iter())
            .all(|(set, v)| set.is_none_or(|s| s.contains(v)))
    };

    if identity && !filtering {
        // Pure copy (plus cap): the canonical data is the exploration
        // output verbatim.
        let mut out = canonical.cloned_with_columns(columns);
        if let Some(cap) = config.max_stwig_rows {
            out.truncate(cap);
        }
        return out;
    }
    let mut out = ResultTable::with_capacity(columns, canonical.num_rows());
    if identity {
        // Already in exploration order: one filtered pass with the cap.
        let cap = config.max_stwig_rows.unwrap_or(usize::MAX);
        for row in canonical.rows() {
            if out.num_rows() >= cap {
                break;
            }
            if admits(row) {
                out.push_row(row);
            }
        }
        return out;
    }
    // Permute (and filter) every row, re-sort into exploration order, then
    // cap — the cap must keep a prefix of the *sorted* order.
    let mut row_buf = vec![trinity_sim::ids::VertexId(0); canonical.width()];
    for row in canonical.rows() {
        if !admits(row) {
            continue;
        }
        row_buf[0] = row[0];
        for (j, &i) in perm.iter().enumerate() {
            row_buf[1 + i] = row[1 + j];
        }
        out.push_row(&row_buf);
    }
    out.sort_rows();
    if let Some(cap) = config.max_stwig_rows {
        out.truncate(cap);
    }
    out
}

/// Derives, from the full unbound exploration table, the table that *bound*
/// exploration under `bindings` and `config` would have produced: binding
/// pruning is an order-preserving per-row filter and the per-STwig row cap
/// stops after that many surviving rows, so filter-then-cap reproduces the
/// exploration output bit for bit.
pub fn apply_bindings_and_cap(
    mut table: ResultTable,
    bindings: &Bindings,
    config: &MatchConfig,
) -> ResultTable {
    let columns = table.columns().to_vec();
    if config.use_bindings {
        table.retain_rows_with_limit(config.max_stwig_rows, |row| {
            columns
                .iter()
                .zip(row.iter())
                .all(|(&q, &v)| bindings.admits(q, v))
        });
    } else if let Some(cap) = config.max_stwig_rows {
        table.truncate(cap);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QVid;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::ids::VertexId;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }
    fn q(x: u16) -> QVid {
        QVid(x)
    }

    fn table(cols: &[u16], rows: &[&[u64]]) -> ResultTable {
        let mut t = ResultTable::new(cols.iter().map(|&c| q(c)).collect());
        for r in rows {
            let row: Vec<VertexId> = r.iter().map(|&x| v(x)).collect();
            t.push_row(&row);
        }
        t
    }

    fn small_cloud() -> MemoryCloud {
        let mut gb = GraphBuilder::new_undirected();
        gb.add_vertex(v(0), "a");
        gb.add_vertex(v(1), "b");
        gb.add_vertex(v(2), "c");
        gb.add_edge(v(0), v(1));
        gb.add_edge(v(0), v(2));
        gb.build(2, CostModel::free())
    }

    /// A query whose STwig children are *not* in label-sorted order: q0
    /// labeled "a" with children q1 ("c") and q2 ("b").
    fn unsorted_query() -> (QueryGraph, STwig) {
        let cloud = small_cloud();
        let mut qb = QueryGraph::builder();
        let r = qb.vertex_by_name(&cloud, "a").unwrap();
        let c1 = qb.vertex_by_name(&cloud, "c").unwrap();
        let c2 = qb.vertex_by_name(&cloud, "b").unwrap();
        qb.edge(r, c1).edge(r, c2);
        let query = qb.build().unwrap();
        let stwig = STwig::new(r, vec![c1, c2]);
        (query, stwig)
    }

    #[test]
    fn shape_sorts_child_labels() {
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        let mut sorted = shape.child_labels.clone();
        sorted.sort_unstable();
        assert_eq!(shape.child_labels, sorted);
        assert_eq!(shape.root_label, query.label(stwig.root));
    }

    #[test]
    fn pruned_and_unpruned_shapes_never_alias() {
        let (query, stwig) = unsorted_query();
        let unpruned = StwigShape::of(&query, &stwig, false);
        let pruned = StwigShape::of(&query, &stwig, true);
        assert_ne!(unpruned, pruned);
        let cloud = small_cloud();
        let cache = StwigCache::new(&cloud, CacheConfig::default());
        let t = table(&[0, 1, 2], &[&[1, 2, 3]]);
        cache.insert(unpruned, vec![t.clone(), t], &cloud);
        assert!(
            matches!(cache.lookup(&pruned, &cloud), CacheLookup::Miss),
            "a table populated without pruning must not serve the pruned configuration"
        );
    }

    #[test]
    fn canonicalize_roundtrips_through_decanonicalize() {
        let (query, stwig) = unsorted_query();
        // Exploration table for (root=a, children=[c, b]) with rows in the
        // lexicographic order exploration emits.
        let exploration = table(&[0, 1, 2], &[&[10, 31, 20], &[10, 31, 21], &[11, 30, 22]]);
        let canonical = canonicalize_table(&exploration, &query, &stwig);
        assert!(canonical.rows_are_sorted());
        // Canonical column 1 holds the "b" child values (label-sorted).
        assert_eq!(canonical.row(0), &[v(10), v(20), v(31)]);
        let back = decanonicalize_table(&canonical, &query, &stwig);
        assert_eq!(back, exploration, "round trip must be bit-identical");
    }

    #[test]
    fn canonicalize_identity_when_labels_already_sorted() {
        let cloud = small_cloud();
        let mut qb = QueryGraph::builder();
        let r = qb.vertex_by_name(&cloud, "a").unwrap();
        let c1 = qb.vertex_by_name(&cloud, "b").unwrap();
        let c2 = qb.vertex_by_name(&cloud, "c").unwrap();
        qb.edge(r, c1).edge(r, c2);
        let query = qb.build().unwrap();
        let stwig = STwig::new(r, vec![c1, c2]);
        let exploration = table(&[0, 1, 2], &[&[1, 2, 3], &[1, 2, 4]]);
        let canonical = canonicalize_table(&exploration, &query, &stwig);
        assert_eq!(canonical.row(0), exploration.row(0));
        let back = decanonicalize_table(&canonical, &query, &stwig);
        assert_eq!(back, exploration);
    }

    #[test]
    fn apply_bindings_filters_and_caps_in_order() {
        let full = table(&[0, 1], &[&[1, 10], &[2, 11], &[3, 12], &[4, 13]]);
        let mut bindings = Bindings::new(2);
        bindings.bind(q(0), [v(1), v(3), v(4)].into_iter().collect());
        let cfg = MatchConfig {
            max_stwig_rows: Some(2),
            ..MatchConfig::default()
        };
        let derived = apply_bindings_and_cap(full.clone(), &bindings, &cfg);
        assert_eq!(derived.num_rows(), 2);
        assert_eq!(derived.row(0), &[v(1), v(10)]);
        assert_eq!(derived.row(1), &[v(3), v(12)]);
        // With bindings disabled the cap is a plain prefix truncation.
        let cfg_nb = MatchConfig {
            max_stwig_rows: Some(3),
            use_bindings: false,
            ..MatchConfig::default()
        };
        let derived_nb = apply_bindings_and_cap(full, &bindings, &cfg_nb);
        assert_eq!(derived_nb.num_rows(), 3);
        assert_eq!(derived_nb.row(2), &[v(3), v(12)]);
    }

    #[test]
    fn lookup_insert_and_stats() {
        let cloud = small_cloud();
        let cache = StwigCache::new(&cloud, CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        assert!(matches!(cache.lookup(&shape, &cloud), CacheLookup::Miss));
        let tables = vec![table(&[0, 1, 2], &[&[1, 2, 3]]), table(&[0, 1, 2], &[])];
        let arc = cache.insert(shape.clone(), tables, &cloud);
        assert_eq!(arc.len(), 2);
        let CacheLookup::Hit(hit) = cache.lookup(&shape, &cloud) else {
            panic!("entry must be resident after insert");
        };
        assert!(Arc::ptr_eq(&arc, &hit));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes_resident > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn double_insert_keeps_the_resident_entry() {
        let cloud = small_cloud();
        let cache = StwigCache::new(&cloud, CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[1]]), table(&[0], &[&[2]])],
            &cloud,
        );
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[1]]), table(&[0], &[&[2]])],
            &cloud,
        );
        assert_eq!(cache.stats().insertions, 1, "resident entry wins the race");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn uncacheable_shapes_bypass() {
        let cloud = small_cloud();
        let cache = StwigCache::new(&cloud, CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        assert!(matches!(cache.lookup(&shape, &cloud), CacheLookup::Miss));
        cache.mark_uncacheable(shape.clone(), &cloud);
        assert!(matches!(cache.lookup(&shape, &cloud), CacheLookup::Bypass));
        let stats = cache.stats();
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn derive_bound_table_equals_decanonicalize_then_filter() {
        let (query, stwig) = unsorted_query();
        // Full unbound exploration table in exploration (lexicographic) order
        // for children [c ("c"), b ("b")]; canonical order swaps the columns.
        let exploration = table(
            &[0, 1, 2],
            &[
                &[10, 30, 20],
                &[10, 30, 21],
                &[10, 31, 20],
                &[11, 30, 22],
                &[11, 32, 20],
            ],
        );
        let canonical = canonicalize_table(&exploration, &query, &stwig);
        let mut bindings = Bindings::new(3);
        bindings.bind(q(2), [v(20), v(22)].into_iter().collect());
        for config in [
            MatchConfig::default(),
            MatchConfig::default().with_max_stwig_rows(Some(2)),
            MatchConfig::default().with_bindings(false),
            MatchConfig::default()
                .with_bindings(false)
                .with_max_stwig_rows(Some(3)),
        ] {
            let fused = derive_bound_table(&canonical, &query, &stwig, &bindings, &config);
            let two_pass = apply_bindings_and_cap(
                decanonicalize_table(&canonical, &query, &stwig),
                &bindings,
                &config,
            );
            assert_eq!(fused, two_pass, "config = {config:?}");
        }
        // Identity-permutation shape: root "a" with sorted-label children.
        let cloud = small_cloud();
        let mut qb = QueryGraph::builder();
        let r = qb.vertex_by_name(&cloud, "a").unwrap();
        let c1 = qb.vertex_by_name(&cloud, "b").unwrap();
        let c2 = qb.vertex_by_name(&cloud, "c").unwrap();
        qb.edge(r, c1).edge(r, c2);
        let query2 = qb.build().unwrap();
        let stwig2 = STwig::new(r, vec![c1, c2]);
        let canonical2 = canonicalize_table(&exploration, &query2, &stwig2);
        let cfg = MatchConfig::default().with_max_stwig_rows(Some(2));
        let fused = derive_bound_table(&canonical2, &query2, &stwig2, &bindings, &cfg);
        let two_pass = apply_bindings_and_cap(
            decanonicalize_table(&canonical2, &query2, &stwig2),
            &bindings,
            &cfg,
        );
        assert_eq!(fused, two_pass);
    }

    #[test]
    fn eviction_respects_budget_and_readers_keep_their_tables() {
        let cloud = small_cloud();
        // A budget small enough that a handful of entries forces eviction.
        let config = CacheConfig {
            budget_bytes: 600,
            shards: 1,
            populate_row_cap: None,
        };
        let cache = StwigCache::new(&cloud, config);
        let mut held = Vec::new();
        for i in 0..8u32 {
            let shape = StwigShape {
                root_label: LabelId(i),
                child_labels: vec![LabelId(i + 100)],
                pruned: false,
            };
            let rows: Vec<Vec<u64>> = (0..10u64).map(|r| vec![r, r + 1]).collect();
            let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
            let t = table(&[0, 1], &refs);
            held.push(cache.insert(shape, vec![t.clone(), t], &cloud));
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "tiny budget must evict");
        assert!(
            stats.bytes_resident <= 600,
            "resident bytes {} exceed the budget",
            stats.bytes_resident
        );
        // Evicted or not, every Arc handed out remains fully readable.
        for tables in &held {
            assert_eq!(tables[0].num_rows(), 10);
            assert_eq!(tables[0].row(9), &[v(9), v(10)]);
        }
    }

    #[test]
    fn fingerprint_detects_same_sized_graph_with_different_edges() {
        // Identical machine count, vertex count, edge count and label
        // frequencies — only the edge set differs. The structural part of
        // the fingerprint must tell them apart, or a foreign cache would
        // silently serve wrong exploration tables.
        let build = |edges: [(u64, u64); 2]| {
            let mut gb = GraphBuilder::new_undirected();
            gb.add_vertex(v(0), "a");
            gb.add_vertex(v(1), "b");
            gb.add_vertex(v(2), "b");
            gb.add_vertex(v(3), "c");
            for (a, b) in edges {
                gb.add_edge(v(a), v(b));
            }
            gb.build(2, CostModel::free())
        };
        let cloud_a = build([(0, 1), (2, 3)]);
        let cloud_b = build([(0, 2), (1, 3)]);
        assert_ne!(graph_fingerprint(&cloud_a), graph_fingerprint(&cloud_b));
        let cache = StwigCache::new(&cloud_a, CacheConfig::default());
        assert!(cache.matches_cloud(&cloud_a));
        assert!(!cache.matches_cloud(&cloud_b));
        // Re-validation is memoized per instance but stays exact: the same
        // cache accepts cloud A again after probing cloud B.
        assert!(cache.matches_cloud(&cloud_a));
    }

    #[test]
    fn stale_entry_with_touched_labels_is_evicted_not_served() {
        use trinity_sim::epoch::{GraphEpochs, UpdateBatch};
        let epochs = GraphEpochs::new(small_cloud());
        let cache = StwigCache::new(epochs.base_cloud(), CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        let snap0 = epochs.pin();
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[1]]), table(&[0], &[&[2]])],
            &snap0,
        );
        // Touch label "b": add a b-vertex and wire it to the a-root.
        let batch = UpdateBatch::new()
            .add_vertex(v(10), "b")
            .add_edge(v(0), v(10));
        epochs.apply(&batch).unwrap();
        let snap1 = epochs.pin();
        assert!(cache.matches_cloud(&snap1), "same lineage must match");
        assert_ne!(
            graph_fingerprint(&snap0),
            graph_fingerprint(&snap1),
            "epoch advance must change the fingerprint"
        );
        assert!(
            matches!(cache.lookup(&shape, &snap1), CacheLookup::Miss),
            "an epoch-0 entry whose labels were touched must not serve epoch 1"
        );
        let stats = cache.stats();
        assert_eq!(stats.stale_evictions, 1);
        assert_eq!(stats.entries, 0, "the stale entry is gone");
    }

    #[test]
    fn label_disjoint_update_revalidates_entry_in_place() {
        use trinity_sim::epoch::{GraphEpochs, UpdateBatch};
        let epochs = GraphEpochs::new(small_cloud());
        let cache = StwigCache::new(epochs.base_cloud(), CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        let snap0 = epochs.pin();
        let arc = cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[1]]), table(&[0], &[&[2]])],
            &snap0,
        );
        // An isolated "d" vertex touches no label the shape reads.
        epochs
            .apply(&UpdateBatch::new().add_vertex(v(10), "d"))
            .unwrap();
        let snap1 = epochs.pin();
        let CacheLookup::Hit(hit) = cache.lookup(&shape, &snap1) else {
            panic!("label-disjoint epoch advance must keep the entry servable");
        };
        assert!(Arc::ptr_eq(&arc, &hit));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.stale_evictions, 0);
        // The tag advanced: a second probe is a plain same-epoch hit.
        assert!(matches!(cache.lookup(&shape, &snap1), CacheLookup::Hit(_)));
    }

    #[test]
    fn older_pinned_snapshot_misses_newer_entry_without_evicting() {
        use trinity_sim::epoch::{GraphEpochs, UpdateBatch};
        let epochs = GraphEpochs::new(small_cloud());
        let cache = StwigCache::new(epochs.base_cloud(), CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        let snap0 = epochs.pin();
        epochs
            .apply(&UpdateBatch::new().add_vertex(v(10), "d"))
            .unwrap();
        let snap1 = epochs.pin();
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[7]]), table(&[0], &[&[8]])],
            &snap1,
        );
        assert!(
            matches!(cache.lookup(&shape, &snap0), CacheLookup::Miss),
            "a query pinned to epoch 0 must never be served an epoch-1 entry"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "the newer entry stays resident");
        assert_eq!(stats.stale_evictions, 0);
        assert!(matches!(cache.lookup(&shape, &snap1), CacheLookup::Hit(_)));
    }

    #[test]
    fn insert_replaces_older_epoch_resident_and_keeps_newer() {
        use trinity_sim::epoch::{GraphEpochs, UpdateBatch};
        let epochs = GraphEpochs::new(small_cloud());
        let cache = StwigCache::new(epochs.base_cloud(), CacheConfig::default());
        let (query, stwig) = unsorted_query();
        let shape = StwigShape::of(&query, &stwig, false);
        let snap0 = epochs.pin();
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[1]]), table(&[0], &[&[2]])],
            &snap0,
        );
        epochs
            .apply(&UpdateBatch::new().add_vertex(v(10), "d"))
            .unwrap();
        let snap1 = epochs.pin();
        // The epoch-1 populate replaces the epoch-0 resident …
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[7]]), table(&[0], &[&[8]])],
            &snap1,
        );
        let CacheLookup::Hit(hit) = cache.lookup(&shape, &snap1) else {
            panic!("replacement entry must be resident");
        };
        assert_eq!(hit[0].row(0), &[v(7)]);
        assert_eq!(cache.stats().stale_evictions, 1);
        // … and an epoch-0 straggler does not clobber it back.
        cache.insert(
            shape.clone(),
            vec![table(&[0], &[&[1]]), table(&[0], &[&[2]])],
            &snap0,
        );
        let CacheLookup::Hit(hit) = cache.lookup(&shape, &snap1) else {
            panic!("newer entry must survive the straggler insert");
        };
        assert_eq!(hit[0].row(0), &[v(7)]);
    }

    #[test]
    fn fingerprint_distinguishes_clouds() {
        let cloud = small_cloud();
        let cache = StwigCache::new(&cloud, CacheConfig::default());
        assert!(cache.matches_cloud(&cloud));
        let mut gb = GraphBuilder::new_undirected();
        gb.add_vertex(v(0), "a");
        gb.add_vertex(v(1), "b");
        gb.add_edge(v(0), v(1));
        let other = gb.build(2, CostModel::free());
        assert!(!cache.matches_cloud(&other));
    }
}
