//! Fast non-cryptographic hashing for the join hot path.
//!
//! The join step (§4.2 step 3) probes a hash index once per intermediate row,
//! so hasher throughput directly bounds join throughput. SipHash — the
//! DoS-resistant default of `std::collections::HashMap` — costs tens of
//! cycles per key; the keys here are vertex ids produced by graph
//! exploration, not attacker-controlled input, so we use an Fx-style
//! multiplicative hash (the scheme used by rustc's `FxHasher`): one rotate,
//! one xor and one multiply per 8-byte word.
//!
//! The module also provides [`InlineKey`], a fixed-width stack-allocated join
//! key for the 2–4 shared-column case, so neither side of a hash join has to
//! heap-allocate a `Vec` per row (see [`crate::join`]).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use trinity_sim::ids::VertexId;

/// Multiplier of the Fx hash: the 64-bit golden-ratio constant, which spreads
/// consecutive integers (the common shape of vertex ids) across buckets.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An Fx-style multiplicative hasher: fast, deterministic and *not*
/// DoS-resistant. Use only for keys that are not attacker-controlled.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A set of data vertices, as stored in binding sets and used to filter
/// candidates on the exploration hot path.
pub type VertexSet = FxHashSet<VertexId>;

/// Maximum number of shared columns an [`InlineKey`] can hold before the join
/// falls back to a heap-allocated key.
pub const INLINE_KEY_COLUMNS: usize = 4;

/// A fixed-width, stack-allocated join key for up to [`INLINE_KEY_COLUMNS`]
/// shared columns.
///
/// Unused slots are padded with a fixed filler value; within one join every
/// key has the same number of live slots, so padded positions always compare
/// equal and never affect the join result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InlineKey([u64; INLINE_KEY_COLUMNS]);

impl InlineKey {
    /// Padding for unused slots. The value is irrelevant for correctness (all
    /// keys of one join pad the same positions); an improbable vertex id
    /// keeps padded and live slots visually distinct when debugging.
    const FILLER: u64 = u64::MAX;

    /// Builds a key from the values of `row` at `columns.len()` (≤ 4) column
    /// positions.
    #[inline]
    pub fn from_row(row: &[VertexId], columns: &[usize]) -> Self {
        debug_assert!(columns.len() <= INLINE_KEY_COLUMNS);
        let mut slots = [Self::FILLER; INLINE_KEY_COLUMNS];
        for (slot, &c) in slots.iter_mut().zip(columns.iter()) {
            *slot = row[c].0;
        }
        InlineKey(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_eq!(fx_hash_of(&"stwig"), fx_hash_of(&"stwig"));
    }

    #[test]
    fn nearby_keys_spread() {
        // Consecutive ids (the common case for generated graphs) must not
        // collapse into the same bucket pattern.
        let hashes: FxHashSet<u64> = (0u64..1000).map(|i| fx_hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Streams differing only in a sub-word tail must hash differently.
        assert_ne!(fx_hash_of(&[1u8, 2, 3]), fx_hash_of(&[1u8, 2, 4]));
        assert_ne!(fx_hash_of(&[0u8; 9]), fx_hash_of(&[0u8; 10]));
    }

    #[test]
    fn fx_map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let s: VertexSet = [VertexId(1), VertexId(2)].into_iter().collect();
        assert!(s.contains(&VertexId(1)));
        assert!(!s.contains(&VertexId(3)));
    }

    #[test]
    fn inline_key_compares_on_selected_columns() {
        let v = |x: u64| VertexId(x);
        let row_a = [v(1), v(2), v(3)];
        let row_b = [v(9), v(2), v(3)];
        // Keyed on columns 1 and 2 the rows agree; keyed on 0 they differ.
        assert_eq!(
            InlineKey::from_row(&row_a, &[1, 2]),
            InlineKey::from_row(&row_b, &[1, 2])
        );
        assert_ne!(
            InlineKey::from_row(&row_a, &[0]),
            InlineKey::from_row(&row_b, &[0])
        );
    }
}
