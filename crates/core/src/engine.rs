//! Concurrent multi-query execution over one shared memory cloud.
//!
//! The paper's deployment target is a shared-memory cloud serving *many*
//! subgraph queries over one static graph ("heavy traffic" in the ROADMAP's
//! words). The executor in [`crate::distributed`] answers one query at a
//! time; this module adds the serving layer:
//!
//! * a [`QueryEngine`] admits a batch of queries and fans them out over a
//!   bounded worker pool (the same atomic-cursor work-stealing used for
//!   machine fan-out, applied at query granularity);
//! * all workers share one read-only [`MemoryCloud`] (`&MemoryCloud` is
//!   `Sync`; trinity-sim pins that with compile-time assertions) and one
//!   [`StwigCache`], so STwig tables explored for one query are reused by
//!   every later query with the same STwig shape;
//! * per-query [`crate::metrics::QueryMetrics`] are returned in input order,
//!   and engine-level counters ([`EngineStats`]) aggregate throughput and
//!   cache behavior.
//!
//! ## Determinism
//!
//! Batched execution is deterministic in its *results*: the cache is
//! transparent (hit, miss and cache-free paths produce bit-identical STwig
//! tables — see [`crate::cache`]), so each query's result table is a pure
//! function of the cloud, the query and the `MatchConfig`, regardless of
//! scheduling, interleaving or eviction. Timing-derived metrics and the
//! shared simulated-traffic counters are best-effort under concurrency:
//! queries running in parallel reset and read the cloud's global traffic
//! accounting concurrently, so per-query `network_*`/`comm_us` numbers are
//! only meaningful for serial batches (`workers == 1`).

use crate::cache::{CacheConfig, StwigCache};
use crate::config::{MatchConfig, ResultMode};
use crate::distributed::{
    match_query_distributed_with_cache, match_query_streaming_with_cache, run_work_stealing,
};
use crate::error::StwigError;
use crate::executor::MatchOutput;
use crate::metrics::{CacheStats, EngineStats, QueryMetrics, QueryOutcome};
use crate::query::QueryGraph;
use crate::stream::{CollectSink, QueryOptions, ResultSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use trinity_sim::MemoryCloud;

/// Configuration of a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads queries are fanned out over. `None` uses the host's
    /// available parallelism; `Some(1)` executes batches serially (in input
    /// order).
    pub workers: Option<usize>,
    /// STwig-result cache configuration; `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// Per-query matching configuration. The default pins
    /// `num_threads = Some(1)` so parallelism comes from query fan-out
    /// rather than nested machine fan-out; override it for latency-oriented
    /// single-query workloads.
    pub match_config: MatchConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: None,
            cache: Some(CacheConfig::default()),
            match_config: MatchConfig::default().with_num_threads(Some(1)),
        }
    }
}

impl EngineConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: Option<usize>) -> Self {
        self.workers = workers;
        self
    }

    /// Sets (or disables) the cache configuration.
    pub fn with_cache(mut self, cache: Option<CacheConfig>) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the per-query matching configuration.
    pub fn with_match_config(mut self, config: MatchConfig) -> Self {
        self.match_config = config;
        self
    }

    fn resolved_workers(&self) -> usize {
        self.workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// A multi-query execution engine over one shared, read-only memory cloud.
///
/// ```
/// use trinity_sim::prelude::*;
/// use stwig::prelude::*;
///
/// let mut gb = GraphBuilder::new_undirected();
/// gb.add_vertex(VertexId(1), "person");
/// gb.add_vertex(VertexId(2), "person");
/// gb.add_vertex(VertexId(3), "city");
/// gb.add_edge(VertexId(1), VertexId(2));
/// gb.add_edge(VertexId(1), VertexId(3));
/// gb.add_edge(VertexId(2), VertexId(3));
/// let cloud = gb.build(2, CostModel::default());
///
/// let mut qb = QueryGraph::builder();
/// let p1 = qb.vertex_by_name(&cloud, "person").unwrap();
/// let p2 = qb.vertex_by_name(&cloud, "person").unwrap();
/// let c = qb.vertex_by_name(&cloud, "city").unwrap();
/// qb.edge(p1, p2).edge(p1, c).edge(p2, c);
/// let query = qb.build().unwrap();
///
/// let engine = QueryEngine::new(&cloud, EngineConfig::default());
/// let batch = vec![query.clone(), query];
/// let outputs = engine.run_batch(&batch);
/// assert!(outputs.iter().all(|o| o.as_ref().unwrap().num_matches() == 2));
/// let stats = engine.stats();
/// assert_eq!(stats.queries_executed, 2);
/// ```
pub struct QueryEngine<'c> {
    cloud: &'c MemoryCloud,
    config: EngineConfig,
    cache: Option<StwigCache<'c>>,
    queries_run: AtomicU64,
    batches_run: AtomicU64,
    /// Accumulated batch wall-clock, in integer µs.
    busy_us: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
}

impl std::fmt::Debug for QueryEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("workers", &self.config.resolved_workers())
            .field("cache", &self.cache.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'c> QueryEngine<'c> {
    /// Creates an engine serving queries over `cloud`.
    pub fn new(cloud: &'c MemoryCloud, config: EngineConfig) -> Self {
        let cache = config
            .cache
            .clone()
            .map(|cache_config| StwigCache::new(cloud, cache_config));
        QueryEngine {
            cloud,
            config,
            cache,
            queries_run: AtomicU64::new(0),
            batches_run: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
        }
    }

    /// The cloud this engine serves.
    pub fn cloud(&self) -> &MemoryCloud {
        self.cloud
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs one query through the engine (cache-aware, counted in the
    /// engine stats as a batch of one).
    pub fn run_one(&self, query: &QueryGraph) -> Result<MatchOutput, StwigError> {
        let mut outputs = self.run_batch(std::slice::from_ref(query));
        outputs.pop().expect("batch of one yields one output")
    }

    /// Runs a batch of queries concurrently over the shared cloud, returning
    /// one output per query **in input order**. Worker threads pull queries
    /// off an atomic cursor (work-stealing), so long-running queries don't
    /// starve the rest of the batch. A per-query error (e.g. an empty query)
    /// fails that slot only.
    pub fn run_batch(&self, queries: &[QueryGraph]) -> Vec<Result<MatchOutput, StwigError>> {
        let started = Instant::now();
        let workers = self.config.resolved_workers().min(queries.len().max(1));
        let outputs = run_work_stealing(queries.len(), workers, |i| {
            match_query_distributed_with_cache(
                self.cloud,
                &queries[i],
                &self.config.match_config,
                self.cache.as_ref(),
            )
        });
        self.queries_run
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        self.busy_us.fetch_add(
            (started.elapsed().as_secs_f64() * 1e6) as u64,
            Ordering::Relaxed,
        );
        outputs
    }

    /// Runs one query in **streaming mode**: rows flow to `sink` (canonical
    /// column order) as they are produced, under the deadline/cancellation
    /// in `options`, honoring the engine config's
    /// [`crate::config::ResultMode`]. Cache-aware like `run_one`; counted in
    /// the engine stats as a batch of one, with interrupted outcomes tallied
    /// in [`EngineStats::queries_cancelled`] /
    /// [`EngineStats::queries_deadline_exceeded`].
    pub fn run_streaming(
        &self,
        query: &QueryGraph,
        options: &QueryOptions,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryMetrics, StwigError> {
        self.run_streaming_with_config(query, &self.config.match_config, options, sink)
    }

    fn run_streaming_with_config(
        &self,
        query: &QueryGraph,
        config: &MatchConfig,
        options: &QueryOptions,
        sink: &mut dyn ResultSink,
    ) -> Result<QueryMetrics, StwigError> {
        let started = Instant::now();
        let result = match_query_streaming_with_cache(
            self.cloud,
            query,
            config,
            options,
            self.cache.as_ref(),
            sink,
        );
        self.queries_run.fetch_add(1, Ordering::Relaxed);
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        self.busy_us.fetch_add(
            (started.elapsed().as_secs_f64() * 1e6) as u64,
            Ordering::Relaxed,
        );
        if let Ok(metrics) = &result {
            match metrics.outcome {
                QueryOutcome::Cancelled => {
                    self.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                QueryOutcome::DeadlineExceeded => {
                    self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                }
                QueryOutcome::Complete => {}
            }
        }
        result
    }

    /// Serves the first `k` valid embeddings of `query` as a materialized
    /// table (a [`CollectSink`] over [`QueryEngine::run_streaming`] with
    /// [`ResultMode::FirstK`]). The rows are genuine matches but not a
    /// prefix of the full enumeration; an interrupted query returns the
    /// rows produced before the interrupt (check `metrics.outcome`).
    pub fn run_first_k(
        &self,
        query: &QueryGraph,
        k: usize,
        options: &QueryOptions,
    ) -> Result<MatchOutput, StwigError> {
        let config = self
            .config
            .match_config
            .clone()
            .with_result_mode(ResultMode::FirstK(k));
        let mut sink = CollectSink::new();
        let metrics = self.run_streaming_with_config(query, &config, options, &mut sink)?;
        Ok(MatchOutput {
            table: sink
                .into_table()
                .expect("streaming always announces a schema"),
            metrics,
        })
    }

    /// Answers whether `query` has at least one embedding
    /// ([`ResultMode::Exists`]): the executor stops at the first valid row.
    /// An interrupted existence check that produced no row reports `false`
    /// with the interrupt recorded in the returned metrics — inspect
    /// `metrics.outcome` before trusting a negative.
    pub fn run_exists(
        &self,
        query: &QueryGraph,
        options: &QueryOptions,
    ) -> Result<(bool, QueryMetrics), StwigError> {
        let config = self
            .config
            .match_config
            .clone()
            .with_result_mode(ResultMode::Exists);
        let mut found = false;
        let mut sink = |_row: &[trinity_sim::ids::VertexId]| found = true;
        let metrics = self.run_streaming_with_config(query, &config, options, &mut sink)?;
        Ok((found, metrics))
    }

    /// Snapshot of the cache counters, when caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(StwigCache::stats)
    }

    /// Snapshot of the engine-level counters.
    pub fn stats(&self) -> EngineStats {
        let queries = self.queries_run.load(Ordering::Relaxed);
        let busy_us = self.busy_us.load(Ordering::Relaxed) as f64;
        EngineStats {
            queries_executed: queries,
            batches_executed: self.batches_run.load(Ordering::Relaxed),
            queries_cancelled: self.cancelled.load(Ordering::Relaxed),
            queries_deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            busy_us,
            queries_per_sec: if busy_us > 0.0 {
                queries as f64 / (busy_us / 1e6)
            } else {
                0.0
            },
            cache: self.cache_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::match_query_distributed;
    use trinity_sim::builder::GraphBuilder;
    use trinity_sim::ids::VertexId;
    use trinity_sim::network::CostModel;

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn sample_cloud(machines: usize) -> MemoryCloud {
        let mut gb = GraphBuilder::new_undirected();
        for i in 0..12u64 {
            gb.add_vertex(v(i), "a");
        }
        for i in 12..36u64 {
            gb.add_vertex(v(i), "b");
        }
        for i in 36..60u64 {
            gb.add_vertex(v(i), "c");
        }
        for i in 0..12u64 {
            gb.add_edge(v(i), v(12 + 2 * i));
            gb.add_edge(v(12 + 2 * i), v(36 + 2 * i));
            gb.add_edge(v(36 + 2 * i), v(i));
        }
        gb.build(machines, CostModel::default())
    }

    fn triangle_query(cloud: &MemoryCloud) -> QueryGraph {
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(cloud, "a").unwrap();
        let b = qb.vertex_by_name(cloud, "b").unwrap();
        let c = qb.vertex_by_name(cloud, "c").unwrap();
        qb.edge(a, b).edge(b, c).edge(c, a);
        qb.build().unwrap()
    }

    fn chain_query(cloud: &MemoryCloud) -> QueryGraph {
        let mut qb = QueryGraph::builder();
        let a = qb.vertex_by_name(cloud, "a").unwrap();
        let b = qb.vertex_by_name(cloud, "b").unwrap();
        let c = qb.vertex_by_name(cloud, "c").unwrap();
        qb.edge(a, b).edge(b, c);
        qb.build().unwrap()
    }

    #[test]
    fn batch_outputs_match_the_serial_executor_in_input_order() {
        let cloud = sample_cloud(4);
        let queries = vec![
            triangle_query(&cloud),
            chain_query(&cloud),
            triangle_query(&cloud),
            chain_query(&cloud),
        ];
        let engine = QueryEngine::new(&cloud, EngineConfig::default().with_workers(Some(4)));
        let outputs = engine.run_batch(&queries);
        assert_eq!(outputs.len(), queries.len());
        for (q, out) in queries.iter().zip(&outputs) {
            let expected = match_query_distributed(
                &cloud,
                q,
                &MatchConfig::default().with_num_threads(Some(1)),
            )
            .unwrap();
            let out = out.as_ref().expect("query succeeds");
            assert_eq!(out.table, expected.table, "engine result diverged");
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let cloud = sample_cloud(3);
        let queries: Vec<QueryGraph> = (0..6).map(|_| triangle_query(&cloud)).collect();
        let engine = QueryEngine::new(&cloud, EngineConfig::default().with_workers(Some(2)));
        let outputs = engine.run_batch(&queries);
        assert!(outputs.iter().all(|o| o.is_ok()));
        let cache = engine.cache_stats().expect("cache enabled by default");
        assert!(cache.insertions > 0);
        assert!(
            cache.hits > 0,
            "identical queries must share cached STwig tables: {cache:?}"
        );
    }

    #[test]
    fn engine_without_cache_still_answers() {
        let cloud = sample_cloud(2);
        let engine = QueryEngine::new(
            &cloud,
            EngineConfig::default()
                .with_cache(None)
                .with_workers(Some(2)),
        );
        let out = engine.run_one(&triangle_query(&cloud)).unwrap();
        assert_eq!(out.num_matches(), 12);
        assert!(engine.stats().cache.is_none());
    }

    #[test]
    fn stats_track_queries_batches_and_throughput() {
        let cloud = sample_cloud(2);
        let engine = QueryEngine::new(&cloud, EngineConfig::default().with_workers(Some(1)));
        let queries = vec![triangle_query(&cloud), chain_query(&cloud)];
        engine.run_batch(&queries);
        engine.run_one(&triangle_query(&cloud)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.queries_executed, 3);
        assert_eq!(stats.batches_executed, 2);
        assert!(stats.busy_us > 0.0);
        assert!(stats.queries_per_sec > 0.0);
    }

    #[test]
    fn engine_first_k_and_exists_serve_streamed_queries() {
        use crate::stream::QueryOptions;
        let cloud = sample_cloud(3);
        let engine = QueryEngine::new(&cloud, EngineConfig::default());
        let full = engine.run_one(&triangle_query(&cloud)).unwrap();
        assert_eq!(full.num_matches(), 12);
        let first = engine
            .run_first_k(&triangle_query(&cloud), 5, &QueryOptions::none())
            .unwrap();
        assert_eq!(first.num_matches(), 5);
        assert_eq!(first.metrics.rows_streamed, 5);
        // Every first-k row is one of the full enumeration's embeddings.
        let full_rows: std::collections::HashSet<Vec<_>> =
            crate::verify::canonical_rows(&triangle_query(&cloud), &full.table)
                .into_iter()
                .collect();
        for row in crate::verify::canonical_rows(&triangle_query(&cloud), &first.table) {
            assert!(full_rows.contains(&row));
        }
        let (exists, metrics) = engine
            .run_exists(&triangle_query(&cloud), &QueryOptions::none())
            .unwrap();
        assert!(exists);
        assert_eq!(metrics.rows_streamed, 1);
    }

    #[test]
    fn engine_streaming_outcomes_are_tallied() {
        use crate::stream::{CancelToken, QueryOptions};
        let cloud = sample_cloud(2);
        let engine = QueryEngine::new(&cloud, EngineConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let mut rows = 0u64;
        let mut sink = |_row: &[trinity_sim::ids::VertexId]| rows += 1;
        let metrics = engine
            .run_streaming(
                &triangle_query(&cloud),
                &QueryOptions::none().with_cancel(token),
                &mut sink,
            )
            .unwrap();
        assert_eq!(metrics.outcome, crate::metrics::QueryOutcome::Cancelled);
        assert_eq!(rows, 0);
        let mut sink = |_row: &[trinity_sim::ids::VertexId]| {};
        engine
            .run_streaming(
                &triangle_query(&cloud),
                &QueryOptions::none().with_deadline(std::time::Duration::ZERO),
                &mut sink,
            )
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.queries_cancelled, 1);
        assert_eq!(stats.queries_deadline_exceeded, 1);
        assert_eq!(stats.queries_executed, 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cloud = sample_cloud(1);
        let engine = QueryEngine::new(&cloud, EngineConfig::default());
        let outputs = engine.run_batch(&[]);
        assert!(outputs.is_empty());
        assert_eq!(engine.stats().queries_executed, 0);
    }
}
